"""Parser tests over the supported SQL subset."""

import datetime

import pytest

from repro.errors import SqlSyntaxError
from repro.expr import (
    AggCall,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
)
from repro.sql import (
    Cube,
    DerivedTableRef,
    GroupingSets,
    Rollup,
    SimpleGrouping,
    SubqueryExpr,
    TableRef,
    parse,
    parse_expression,
)


class TestSelectCore:
    def test_simple_select(self):
        stmt = parse("select faid, qty from Trans")
        assert [i.alias for i in stmt.items] == [None, None]
        assert stmt.from_items == (TableRef("Trans", None),)

    def test_aliases(self):
        stmt = parse("select faid as f, qty q from Trans t")
        assert stmt.items[0].alias == "f"
        assert stmt.items[1].alias == "q"
        assert stmt.from_items[0].alias == "t"

    def test_select_star(self):
        stmt = parse("select * from Trans")
        assert stmt.select_star and not stmt.items

    def test_distinct(self):
        assert parse("select distinct faid from Trans").distinct

    def test_where_group_having_order(self):
        stmt = parse(
            "select faid, count(*) as cnt from Trans where qty > 1 "
            "group by faid having count(*) > 2 order by cnt desc, faid"
        )
        assert stmt.where is not None
        assert stmt.having is not None
        assert len(stmt.group_by) == 1
        assert [o.ascending for o in stmt.order_by] == [False, True]

    def test_trailing_semicolon(self):
        parse("select faid from Trans;")

    def test_comma_join_and_explicit_join(self):
        by_comma = parse("select faid from Trans, Loc where flid = lid")
        by_join = parse("select faid from Trans join Loc on flid = lid")
        assert by_comma.from_items == by_join.from_items
        assert by_comma.where == by_join.where

    def test_inner_join_keyword(self):
        stmt = parse("select faid from Trans inner join Loc on flid = lid")
        assert len(stmt.from_items) == 2

    def test_cross_join(self):
        stmt = parse("select faid from Trans cross join Loc")
        assert len(stmt.from_items) == 2
        assert stmt.where is None

    def test_derived_table_with_and_without_alias(self):
        with_alias = parse("select x from (select faid as x from Trans) as d")
        assert isinstance(with_alias.from_items[0], DerivedTableRef)
        assert with_alias.from_items[0].alias == "d"
        without = parse("select x from (select faid as x from Trans)")
        assert without.from_items[0].alias is None


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == NaryOp(
            "+", (Literal(1), NaryOp("*", (Literal(2), Literal(3))))
        )

    def test_left_assoc_subtraction(self):
        expr = parse_expression("10 - 3 - 2")
        assert expr == BinaryOp("-", BinaryOp("-", Literal(10), Literal(3)), Literal(2))

    def test_nary_flattening_in_parser(self):
        expr = parse_expression("a + b + c")
        assert isinstance(expr, NaryOp) and len(expr.operands) == 3

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, NaryOp) and expr.op == "*"

    def test_comparison_chain_and_logic(self):
        expr = parse_expression("a > 1 and b < 2 or not c = 3")
        assert isinstance(expr, NaryOp) and expr.op == "or"

    def test_between_desugars(self):
        expr = parse_expression("x between 1 and 5")
        assert expr == NaryOp(
            "and",
            (
                BinaryOp(">=", ColumnRef(None, "x"), Literal(1)),
                BinaryOp("<=", ColumnRef(None, "x"), Literal(5)),
            ),
        )

    def test_not_between(self):
        expr = parse_expression("x not between 1 and 5")
        assert isinstance(expr, UnaryOp) and expr.op == "not"

    def test_in_list(self):
        expr = parse_expression("x in (1, 2, 3)")
        assert isinstance(expr, InList) and not expr.negated

    def test_not_in(self):
        expr = parse_expression("x not in (1)")
        assert isinstance(expr, InList) and expr.negated

    def test_is_null_variants(self):
        assert parse_expression("x is null") == IsNull(ColumnRef(None, "x"))
        assert parse_expression("x is not null") == IsNull(
            ColumnRef(None, "x"), negated=True
        )

    def test_qualified_columns(self):
        assert parse_expression("Trans.faid") == ColumnRef("Trans", "faid")
        assert parse_expression("t.date") == ColumnRef("t", "date")

    def test_date_keyword_as_column_and_literal(self):
        assert parse_expression("year(date)") == FuncCall(
            "year", (ColumnRef(None, "date"),)
        )
        assert parse_expression("date '1990-01-02'") == Literal(
            datetime.date(1990, 1, 2)
        )

    def test_unary_minus_and_plus(self):
        assert parse_expression("-x") == UnaryOp("-", ColumnRef(None, "x"))
        assert parse_expression("+x") == ColumnRef(None, "x")

    def test_case_when(self):
        expr = parse_expression("case when x > 0 then 'p' else 'n' end")
        assert expr.pairs()[0][1] == Literal("p")

    def test_string_escaping(self):
        assert parse_expression("'it''s'") == Literal("it's")

    def test_booleans_and_null(self):
        assert parse_expression("true") == Literal(True)
        assert parse_expression("null") == Literal(None)


class TestAggregates:
    def test_count_star(self):
        assert parse_expression("count(*)") == AggCall("count")

    def test_count_distinct(self):
        expr = parse_expression("count(distinct faid)")
        assert expr == AggCall("count", ColumnRef(None, "faid"), distinct=True)

    def test_sum_of_expression(self):
        expr = parse_expression("sum(qty * price)")
        assert expr.func == "sum"
        assert isinstance(expr.arg, NaryOp)

    def test_all_aggregate_names(self):
        for func in ("count", "sum", "avg", "min", "max"):
            expr = parse_expression(f"{func}(x)")
            assert isinstance(expr, AggCall) and expr.func == func


class TestSupergroups:
    def test_plain_group_by(self):
        stmt = parse("select faid, count(*) from Trans group by faid")
        assert isinstance(stmt.group_by[0], SimpleGrouping)

    def test_rollup(self):
        stmt = parse("select a, b, count(*) from T group by rollup(a, b)")
        assert stmt.group_by[0] == Rollup(
            (ColumnRef(None, "a"), ColumnRef(None, "b"))
        )

    def test_cube(self):
        stmt = parse("select a, b, count(*) from T group by cube(a, b)")
        assert isinstance(stmt.group_by[0], Cube)

    def test_grouping_sets_with_empty(self):
        stmt = parse(
            "select a, b, count(*) from T "
            "group by grouping sets ((a, b), (a), ())"
        )
        element = stmt.group_by[0]
        assert isinstance(element, GroupingSets)
        assert element.sets[2] == ()

    def test_grouping_sets_bare_member(self):
        stmt = parse("select a, count(*) from T group by grouping sets (a, (a))")
        assert stmt.group_by[0].sets == (
            (ColumnRef(None, "a"),),
            (ColumnRef(None, "a"),),
        )

    def test_mixed_elements(self):
        stmt = parse("select a, b, count(*) from T group by a, rollup(b)")
        assert isinstance(stmt.group_by[0], SimpleGrouping)
        assert isinstance(stmt.group_by[1], Rollup)


class TestSubqueries:
    def test_scalar_subquery(self):
        stmt = parse("select (select count(*) from Trans) as n from Loc")
        assert isinstance(stmt.items[0].expr, SubqueryExpr)

    def test_subquery_in_where(self):
        stmt = parse("select lid from Loc where lid > (select count(*) from Trans)")
        comparisons = [n for n in stmt.where.walk() if isinstance(n, SubqueryExpr)]
        assert len(comparisons) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "select",
            "select from Trans",
            "select x from",
            "select x from Trans where",
            "select x from Trans group by",
            "select x from Trans trailing junk (",
            "select count(* from Trans",
            "select x from (select y from T",
            "select case when 1 end from T",
            "select x from T order by x ascending nonsense",
        ],
    )
    def test_syntax_errors(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse(sql)

    def test_error_carries_position(self):
        try:
            parse("select x\nfrom")
        except SqlSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected a syntax error")
