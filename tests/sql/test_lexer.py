"""Tokenizer tests."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import tokenize
from repro.sql.lexer import parse_date_literal


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql) if t.kind != "eof"]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SeLeCt FROM") == [("keyword", "select"), ("keyword", "from")]

    def test_identifiers_keep_case(self):
        assert kinds("Trans") == [("ident", "Trans")]

    def test_numbers(self):
        assert kinds("1 2.5 0.1 1e3 2E-2") == [
            ("number", 1),
            ("number", 2.5),
            ("number", 0.1),
            ("number", 1000.0),
            ("number", 0.02),
        ]

    def test_leading_dot_number(self):
        assert kinds(".5") == [("number", 0.5)]

    def test_strings_with_escapes(self):
        assert kinds("'USA' 'it''s'") == [("string", "USA"), ("string", "it's")]

    def test_punctuation(self):
        values = [v for _, v in kinds("<= >= <> != = ( ) , . ;")]
        assert values == ["<=", ">=", "<>", "<>", "=", "(", ")", ",", ".", ";"]

    def test_comments_skipped(self):
        assert kinds("select -- comment here\n 1") == [
            ("keyword", "select"),
            ("number", 1),
        ]

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "eof"


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("select\n  faid")
        ident = [t for t in tokens if t.kind == "ident"][0]
        assert (ident.line, ident.column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select #")

    def test_bad_date_literal(self):
        with pytest.raises(SqlSyntaxError):
            parse_date_literal("1990-13-40")

    def test_good_date_literal(self):
        assert parse_date_literal("1990-07-04").year == 1990
