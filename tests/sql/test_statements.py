"""Statement-level SQL: DDL, DML, EXPLAIN parsing and execution."""

import datetime

import pytest

from repro.catalog.types import DataType
from repro.errors import SqlSyntaxError
from repro.sql.statements import (
    CreateSummaryTable,
    CreateTable,
    DeleteValues,
    DropSummaryTable,
    Explain,
    InsertValues,
    SetSlowQuery,
    parse_statement,
    split_statements,
)
from repro.sql.ast import SelectStatement


class TestParseCreateTable:
    def test_columns_and_keys(self):
        statement = parse_statement(
            "create table T (a integer not null, b varchar(10), c date, "
            "primary key (a), unique (b), "
            "foreign key (c) references D (d))"
        )
        assert isinstance(statement, CreateTable)
        assert [c.name for c in statement.columns] == ["a", "b", "c"]
        assert statement.columns[0].nullable is False
        assert statement.columns[1].nullable is True
        assert statement.columns[1].dtype is DataType.STRING
        assert statement.keys[0].is_primary
        assert statement.foreign_keys[0].parent_table == "D"

    def test_type_aliases(self):
        statement = parse_statement(
            "create table T (a int, b bigint, c double, d decimal(10, 2), "
            "e text, f boolean)"
        )
        types = [c.dtype for c in statement.columns]
        assert types == [
            DataType.INTEGER,
            DataType.INTEGER,
            DataType.FLOAT,
            DataType.FLOAT,
            DataType.STRING,
            DataType.BOOLEAN,
        ]

    def test_date_column_name_allowed(self):
        statement = parse_statement("create table T (date date not null)")
        assert statement.columns[0].name == "date"

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("create table T (a blob)")


class TestParseOtherStatements:
    def test_create_summary_table(self):
        statement = parse_statement(
            "create summary table S as select faid, count(*) as c "
            "from Trans group by faid"
        )
        assert isinstance(statement, CreateSummaryTable)
        assert statement.name == "S"
        assert statement.sql.lower().startswith("select")

    def test_drop_summary_table(self):
        statement = parse_statement("drop summary table S")
        assert statement == DropSummaryTable("S")

    def test_insert_values(self):
        statement = parse_statement(
            "insert into T values (1, 'x', date '1990-01-02', null), (2, 'y', date '1991-03-04', 5.5)"
        )
        assert isinstance(statement, InsertValues)
        assert statement.rows[0] == (1, "x", datetime.date(1990, 1, 2), None)
        assert len(statement.rows) == 2

    def test_insert_constant_expressions(self):
        statement = parse_statement("insert into T values (1 + 2, -3)")
        assert statement.rows == ((3, -3),)

    def test_insert_non_constant_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("insert into T values (a + 1)")

    def test_delete_values(self):
        statement = parse_statement("delete from T values (1, 'x')")
        assert isinstance(statement, DeleteValues)

    def test_explain(self):
        statement = parse_statement("explain select tid from Trans")
        assert isinstance(statement, Explain)
        assert statement.analyze is False

    def test_explain_analyze(self):
        statement = parse_statement("explain analyze select tid from Trans")
        assert isinstance(statement, Explain)
        assert statement.analyze is True
        assert statement.sql.lower().startswith("select")

    def test_set_slow_query_threshold(self):
        statement = parse_statement("set slow query 250")
        assert statement == SetSlowQuery(250.0)
        assert parse_statement("set slow query 12.5") == SetSlowQuery(12.5)

    def test_set_slow_query_off(self):
        assert parse_statement("set slow query off") == SetSlowQuery(None)

    def test_set_slow_query_rejects_negative(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("set slow query -5")
        with pytest.raises(SqlSyntaxError):
            parse_statement("set slow query fast")

    def test_set_refresh_age_still_parses(self):
        statement = parse_statement("set refresh age any")
        assert statement.max_pending is None

    def test_set_executor_parallel(self):
        from repro.sql.statements import SetExecutorParallel

        assert parse_statement("set executor parallel 4") == SetExecutorParallel(4)
        assert parse_statement("SET EXECUTOR PARALLEL 1") == SetExecutorParallel(1)
        assert parse_statement("set executor parallel off") == SetExecutorParallel(
            None
        )

    def test_set_executor_parallel_rejects_bad_counts(self):
        for bad in ("0", "-2", "2.5", "true", "many"):
            with pytest.raises(SqlSyntaxError):
                parse_statement(f"set executor parallel {bad}")

    def test_plain_select(self):
        statement = parse_statement("select 1 as one from Trans")
        assert isinstance(statement, SelectStatement)

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("vacuum full")


class TestSplitStatements:
    def test_split_basic(self):
        assert split_statements("select 1; select 2;") == ["select 1", "select 2"]

    def test_semicolon_inside_string(self):
        pieces = split_statements("select 'a;b' as s from T; select 2")
        assert len(pieces) == 2
        assert "'a;b'" in pieces[0]

    def test_escaped_quote_in_string(self):
        pieces = split_statements("select 'it''s; fine' from T")
        assert len(pieces) == 1

    def test_trailing_without_semicolon(self):
        assert split_statements("select 1") == ["select 1"]

    def test_empty(self):
        assert split_statements(" ;;  ") == []


class TestRunSql:
    def test_full_lifecycle(self, tiny_db):
        status = tiny_db.run_sql(
            "create summary table S as select faid, count(*) as cnt "
            "from Trans group by faid"
        )
        assert "S created" in status
        result = tiny_db.run_sql("select faid, count(*) as n from Trans group by faid")
        assert sorted(result.rows) == [(10, 3), (20, 3)]
        explain = tiny_db.run_sql(
            "explain select faid, count(*) as n from Trans group by faid"
        )
        assert "rewritten SQL" in explain and "S" in explain
        status = tiny_db.run_sql("drop summary table S")
        assert "dropped" in status

    def test_insert_maintains_summaries(self, tiny_db):
        tiny_db.run_sql(
            "create summary table S as select faid, count(*) as cnt "
            "from Trans group by faid"
        )
        status = tiny_db.run_sql(
            "insert into Trans values "
            "(7, 1, 1, 10, date '1993-01-01', 1, 10.0, 0.0)"
        )
        assert "incremental: S" in status
        result = tiny_db.run_sql(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert sorted(result.rows) == [(10, 4), (20, 3)]

    def test_delete_maintains_summaries(self, tiny_db):
        tiny_db.run_sql(
            "create summary table S as select faid, count(*) as cnt "
            "from Trans group by faid"
        )
        victim = tiny_db.table("Trans").rows[0]
        values = ", ".join(
            f"date '{v}'" if hasattr(v, "isoformat") else repr(v) for v in victim
        )
        tiny_db.run_sql(f"delete from Trans values ({values})")
        result = tiny_db.run_sql(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert sorted(result.rows) == [(10, 2), (20, 3)]

    def test_create_table_and_load(self):
        from repro.engine import Database

        db = Database()
        db.run_sql(
            "create table Fact (id integer not null, v float not null, "
            "primary key (id))"
        )
        db.run_sql("insert into Fact values (1, 2.5), (2, 3.5)")
        result = db.run_sql("select sum(v) as s from Fact")
        assert result.rows == [(6.0,)]

    def test_create_table_bad_fk_rolls_back(self):
        from repro.engine import Database
        from repro.errors import CatalogError

        db = Database()
        with pytest.raises(CatalogError):
            db.run_sql(
                "create table Fact (id integer not null, "
                "foreign key (id) references Missing (x))"
            )
        assert not db.catalog.has_table("Fact")

    def test_run_script(self, tiny_db):
        results = tiny_db.run_script(
            "create summary table S as select faid, count(*) as cnt "
            "from Trans group by faid; "
            "select count(*) as n from Trans;"
        )
        assert len(results) == 2
        assert results[1].rows == [(6,)]


class TestParseRefreshStatements:
    def test_create_summary_defaults_immediate(self):
        statement = parse_statement(
            "create summary table S as select faid, count(*) as c "
            "from Trans group by faid"
        )
        assert statement.refresh_mode == "immediate"

    def test_create_summary_refresh_deferred(self):
        statement = parse_statement(
            "create summary table S refresh deferred as "
            "select faid, count(*) as c from Trans group by faid"
        )
        assert isinstance(statement, CreateSummaryTable)
        assert statement.refresh_mode == "deferred"
        assert statement.sql.lower().startswith("select")

    def test_create_summary_refresh_immediate_explicit(self):
        statement = parse_statement(
            "create summary table S refresh immediate as "
            "select faid, count(*) as c from Trans group by faid"
        )
        assert statement.refresh_mode == "immediate"

    def test_create_summary_bad_refresh_mode(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement(
                "create summary table S refresh eventually as "
                "select faid from Trans"
            )

    def test_refresh_summary_table_names(self):
        from repro.sql.statements import RefreshSummaryTables

        statement = parse_statement("refresh summary table S1, S2")
        assert statement == RefreshSummaryTables(("S1", "S2"))

    def test_refresh_summary_tables_all(self):
        from repro.sql.statements import RefreshSummaryTables

        statement = parse_statement("refresh summary tables")
        assert statement == RefreshSummaryTables(())

    def test_refresh_requires_summary_keyword(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("refresh table S1")

    def test_set_refresh_age_any(self):
        from repro.sql.statements import SetRefreshAge

        statement = parse_statement("set refresh age any")
        assert statement == SetRefreshAge(None)

    def test_set_refresh_age_zero(self):
        from repro.sql.statements import SetRefreshAge

        statement = parse_statement("set refresh age 0")
        assert statement == SetRefreshAge(0)

    def test_set_refresh_age_bounded(self):
        from repro.sql.statements import SetRefreshAge

        statement = parse_statement("SET REFRESH AGE 5")
        assert statement == SetRefreshAge(5)

    def test_set_refresh_age_invalid(self):
        for bad in (
            "set refresh age -1",
            "set refresh age 1.5",
            "set refresh age soon",
            "set refresh limit 3",
        ):
            with pytest.raises(SqlSyntaxError):
                parse_statement(bad)


class TestSetExecutorParallel:
    def test_round_trip(self, tiny_db):
        assert tiny_db.executor_parallel is None
        status = tiny_db.run_sql("set executor parallel 2")
        assert "2 worker" in status
        assert tiny_db.executor_parallel == 2
        # Queries keep returning correct results with the session pool.
        result = tiny_db.run_sql(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert result.sorted_rows() == [(10, 3), (20, 3)]
        assert tiny_db.last_executor_stats.workers == 2
        status = tiny_db.run_sql("set executor parallel off")
        assert "disabled" in status
        assert tiny_db.executor_parallel is None

    def test_close_shuts_down_pool(self, tiny_db):
        tiny_db.run_sql("set executor parallel 3")
        tiny_db.close()
        assert tiny_db.executor_parallel is None
