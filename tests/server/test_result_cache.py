"""Semantic result cache unit tests: LSN freshness, precise eviction."""

from __future__ import annotations

from repro.engine.table import Table
from repro.obs.metrics import MetricsRegistry
from repro.refresh.log import DeltaLog
from repro.refresh.policy import RefreshAge
from repro.server.result_cache import ResultCache, cache_key


def _table(n=1):
    return Table(["x"], [(i,) for i in range(n)])


def _store(cache, log, key, tables, tolerance, n=1):
    cache.store(key, _table(n), tables, log.change_counts(tables), tolerance)


class TestFreshness:
    def test_fresh_hit_when_nothing_changed(self):
        log = DeltaLog()
        cache = ResultCache(log)
        key = cache_key(("q1",), RefreshAge.CURRENT, True)
        _store(cache, log, key, ["trans"], RefreshAge.CURRENT)
        table, label = cache.lookup(key)
        assert label == "hit"
        assert list(table.rows) == [(0,)]

    def test_write_turns_current_entry_into_miss_and_evicts(self):
        log = DeltaLog()
        cache = ResultCache(log)
        key = cache_key(("q1",), RefreshAge.CURRENT, True)
        _store(cache, log, key, ["trans"], RefreshAge.CURRENT)
        log.note_write("Trans")
        assert cache.lookup(key) is None
        assert len(cache) == 0  # permanently dead entries evict on sight

    def test_stale_hit_within_tolerance(self):
        log = DeltaLog()
        cache = ResultCache(log)
        tolerance = RefreshAge(2)
        key = cache_key(("q1",), tolerance, True)
        _store(cache, log, key, ["trans"], tolerance)
        log.note_write("Trans")
        _, label = cache.lookup(key)
        assert label == "stale-hit"
        log.note_write("Trans")
        _, label = cache.lookup(key)
        assert label == "stale-hit"  # lag 2 still admitted
        log.note_write("Trans")
        assert cache.lookup(key) is None  # lag 3 exceeds tolerance

    def test_any_tolerance_never_goes_stale(self):
        log = DeltaLog()
        cache = ResultCache(log)
        key = cache_key(("q1",), RefreshAge.ANY, True)
        _store(cache, log, key, ["trans"], RefreshAge.ANY)
        for _ in range(10):
            log.note_write("Trans")
        _, label = cache.lookup(key)
        assert label == "stale-hit"

    def test_lag_measured_per_referenced_table(self):
        log = DeltaLog()
        cache = ResultCache(log)
        key = cache_key(("q1",), RefreshAge.CURRENT, True)
        _store(cache, log, key, ["trans", "loc"], RefreshAge.CURRENT)
        log.note_write("Cust")  # unrelated table
        _, label = cache.lookup(key)
        assert label == "hit"

    def test_snapshot_is_pre_execution(self):
        """A write that landed before the snapshot does not count."""
        log = DeltaLog()
        log.note_write("Trans")
        cache = ResultCache(log)
        key = cache_key(("q1",), RefreshAge.CURRENT, True)
        _store(cache, log, key, ["trans"], RefreshAge.CURRENT)
        _, label = cache.lookup(key)
        assert label == "hit"


class TestEviction:
    def test_invalidate_table_drops_only_dead_dependents(self):
        log = DeltaLog()
        cache = ResultCache(log)
        k_trans = cache_key(("qt",), RefreshAge.CURRENT, True)
        k_loc = cache_key(("ql",), RefreshAge.CURRENT, True)
        k_stale_ok = cache_key(("qs",), RefreshAge.ANY, True)
        _store(cache, log, k_trans, ["trans"], RefreshAge.CURRENT)
        _store(cache, log, k_loc, ["loc"], RefreshAge.CURRENT)
        _store(cache, log, k_stale_ok, ["trans"], RefreshAge.ANY)
        log.note_write("Trans")
        dropped = cache.invalidate_table("Trans")
        assert dropped == 1  # only the tolerance-0 Trans entry dies
        assert cache.lookup(k_loc)[1] == "hit"  # unrelated stays warm
        assert cache.lookup(k_stale_ok)[1] == "stale-hit"

    def test_evict_tables_spares_tolerance_zero_entries(self):
        log = DeltaLog()
        cache = ResultCache(log)
        k_current = cache_key(("qc",), RefreshAge.CURRENT, True)
        k_any = cache_key(("qa",), RefreshAge.ANY, True)
        k_other = cache_key(("qo",), RefreshAge.ANY, True)
        _store(cache, log, k_current, ["trans"], RefreshAge.CURRENT)
        _store(cache, log, k_any, ["trans"], RefreshAge.ANY)
        _store(cache, log, k_other, ["loc"], RefreshAge.ANY)
        dropped = cache.evict_tables(["trans"])
        assert dropped == 1
        # tolerance-0 entries were computed from fully fresh summaries
        assert cache.lookup(k_current)[1] == "hit"
        assert cache.lookup(k_any) is None
        assert cache.lookup(k_other)[1] == "stale-hit" or cache.lookup(
            k_other
        ) is not None

    def test_lru_overflow(self):
        log = DeltaLog()
        cache = ResultCache(log, max_entries=2)
        keys = [cache_key((f"q{i}",), RefreshAge.CURRENT, True) for i in range(3)]
        for key in keys:
            _store(cache, log, key, ["t"], RefreshAge.CURRENT)
        assert len(cache) == 2
        assert cache.lookup(keys[0]) is None  # oldest evicted
        assert cache.lookup(keys[2]) is not None

    def test_oversized_results_not_cached(self):
        log = DeltaLog()
        cache = ResultCache(log, max_cached_rows=5)
        key = cache_key(("big",), RefreshAge.CURRENT, True)
        stored = cache.store(
            key, _table(6), ["t"], log.change_counts(["t"]), RefreshAge.CURRENT
        )
        assert stored is False
        assert len(cache) == 0

    def test_clear(self):
        log = DeltaLog()
        cache = ResultCache(log)
        key = cache_key(("q",), RefreshAge.CURRENT, True)
        _store(cache, log, key, ["t"], RefreshAge.CURRENT)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestMetrics:
    def test_counters_track_hits_misses_evictions(self):
        registry = MetricsRegistry()
        log = DeltaLog()
        cache = ResultCache(log, metrics=registry)
        key = cache_key(("q",), RefreshAge.CURRENT, True)
        assert cache.lookup(key) is None  # miss
        _store(cache, log, key, ["t"], RefreshAge.CURRENT)
        cache.lookup(key)  # hit
        log.note_write("t")
        cache.lookup(key)  # dead -> evict + miss
        assert registry.get("cache.hits").value == 1
        assert registry.get("cache.misses").value == 2
        assert registry.get("cache.evictions").value == 1
        assert registry.get("cache.entries").value == 0

    def test_stale_hits_counted_separately(self):
        registry = MetricsRegistry()
        log = DeltaLog()
        cache = ResultCache(log, metrics=registry)
        key = cache_key(("q",), RefreshAge.ANY, True)
        _store(cache, log, key, ["t"], RefreshAge.ANY)
        log.note_write("t")
        cache.lookup(key)
        assert registry.get("cache.stale_hits").value == 1
        assert registry.get("cache.hits").value == 0
