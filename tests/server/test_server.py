"""End-to-end server tests: differential bit-identity, session
isolation, concurrency, and typed governor errors over the wire."""

from __future__ import annotations

import threading

import pytest

from repro.engine.database import Database
from repro.errors import BudgetExhausted, QueryRejected, QueryTimeout
from repro.server.client import ReproClient
from repro.server.server import QueryServer
from repro.workloads import tpcd, webmetrics
from tests.conftest import fresh_small_db


@pytest.fixture
def served():
    """Factory fixture: serve any database, auto-stop at teardown."""
    servers = []

    def serve(db: Database, **kwargs) -> QueryServer:
        server = QueryServer(db, **kwargs)
        server.start_in_thread()
        servers.append(server)
        return server

    yield serve
    for server in servers:
        server.stop()


def connect(server: QueryServer) -> ReproClient:
    host, port = server.address
    return ReproClient(host, port)


def assert_identical(remote_table, direct_table):
    """Bit-identity: same columns, same rows, same order, same types."""
    assert list(remote_table.columns) == list(direct_table.columns)
    assert list(remote_table.rows) == list(direct_table.rows)
    for left, right in zip(remote_table.rows, direct_table.rows):
        for a, b in zip(left, right):
            assert type(a) is type(b)


# ----------------------------------------------------------------------
class TestDifferential:
    """Every workload query through the server — cold, warm, and
    stale-tolerant — bit-identical to direct in-process execution."""

    @pytest.mark.parametrize(
        "build,install,queries,ingest",
        [
            (
                lambda: tpcd.build_tpcd_db(orders=250),
                tpcd.install_asts,
                tpcd.QUERIES,
                (
                    "INSERT INTO Lineitem VALUES "
                    "(1, 99, 5, 1000.0, 0.05, 0.02, 'R', 'F', "
                    "DATE '1996-06-15')"
                ),
            ),
            (
                lambda: webmetrics.build_web_db(views=2500),
                webmetrics.install_web_asts,
                webmetrics.QUERIES,
                (
                    "INSERT INTO PageView VALUES "
                    "(999999, 1, 1, DATE '2000-06-15', 30, 1024.0)"
                ),
            ),
        ],
        ids=["tpcd", "webmetrics"],
    )
    def test_cold_warm_stale_bit_identical(
        self, served, build, install, queries, ingest
    ):
        db = build()
        install(db)
        server = served(db)
        with connect(server) as client:
            for sql in queries.values():
                direct = db.execute(sql)
                cold = client.query(sql)
                assert cold.cache == "miss"
                assert_identical(cold.table, direct)
                warm = client.query(sql)
                assert warm.cache == "hit"
                assert_identical(warm.table, direct)
            # Stale-tolerant pass: cache under REFRESH AGE ANY, ingest,
            # and re-read — served stale, labeled, and bit-identical to
            # the execution the cache captured.
            client.set("SET REFRESH AGE ANY")
            captured = {}
            for name, sql in queries.items():
                reply = client.query(sql)
                assert reply.cache == "miss"  # new key: tolerance ANY
                captured[name] = reply.table
            client.query(ingest)
            for name, sql in queries.items():
                stale = client.query(sql)
                assert stale.cache == "stale-hit"
                assert_identical(stale.table, captured[name])

    def test_insert_invalidates_exactly_dependents(self, served):
        db = fresh_small_db()
        server = served(db)
        trans_q = "SELECT faid, COUNT(*) AS cnt FROM Trans GROUP BY faid"
        loc_q = "SELECT country, COUNT(*) AS cnt FROM Loc GROUP BY country"
        with connect(server) as client:
            assert client.query(trans_q).cache == "miss"
            assert client.query(loc_q).cache == "miss"
            assert client.query(trans_q).cache == "hit"
            assert client.query(loc_q).cache == "hit"
            client.query(
                "INSERT INTO Trans VALUES "
                "(999991, 1, 1, 1, DATE '1990-06-15', 1, 10.0, 0.1)"
            )
            # the Trans-dependent entry misses; the Loc entry stays warm
            after = client.query(trans_q)
            assert after.cache == "miss"
            assert_identical(after.table, db.execute(trans_q))
            assert client.query(loc_q).cache == "hit"

    def test_cache_disabled_is_bypass(self, served):
        db = fresh_small_db()
        server = served(db, cache_enabled=False)
        with connect(server) as client:
            sql = "SELECT COUNT(*) AS cnt FROM Trans"
            assert client.query(sql).cache == "bypass"
            assert client.query(sql).cache == "bypass"


# ----------------------------------------------------------------------
class TestSessionIsolation:
    def test_set_knobs_do_not_leak_across_connections(self, served):
        db = fresh_small_db()
        server = served(db)
        sql = "SELECT faid, COUNT(*) AS cnt FROM Trans GROUP BY faid"
        with connect(server) as a, connect(server) as b:
            a.set("SET QUERY MAXROWS 1")
            with pytest.raises(BudgetExhausted):
                a.query(sql)
            # b is untouched by a's limit...
            assert len(b.query(sql).table.rows) > 1
            # ...and the shared database's own governor never mutated
            assert db.governor.max_rows is None
            assert a.ping()["session"]["max_rows"] == 1
            assert b.ping()["session"]["max_rows"] == "inherit"

    def test_refresh_age_splits_cache_keys_per_session(self, served):
        db = fresh_small_db()
        server = served(db)
        sql = "SELECT COUNT(*) AS cnt FROM Trans"
        with connect(server) as stale_ok, connect(server) as strict:
            stale_ok.set("SET REFRESH AGE ANY")
            before = stale_ok.query(sql)
            assert before.cache == "miss"
            assert strict.query(sql).cache == "miss"  # different key
            strict.query(
                "INSERT INTO Trans VALUES "
                "(999992, 1, 1, 1, DATE '1990-06-15', 1, 10.0, 0.1)"
            )
            stale = stale_ok.query(sql)
            assert stale.cache == "stale-hit"
            assert_identical(stale.table, before.table)  # pre-insert data
            fresh = strict.query(sql)
            assert fresh.cache == "miss"
            assert fresh.table.rows[0][0] == before.table.rows[0][0] + 1

    def test_timeout_is_per_session(self, served):
        db = fresh_small_db()
        server = served(db)
        with connect(server) as impatient, connect(server) as patient:
            impatient.set("SET QUERY TIMEOUT 0.001")
            with pytest.raises(QueryTimeout):
                impatient.query(
                    "SELECT faid, flid, COUNT(*) AS cnt FROM Trans "
                    "GROUP BY faid, flid"
                )
            reply = patient.query(
                "SELECT faid, flid, COUNT(*) AS cnt FROM Trans "
                "GROUP BY faid, flid"
            )
            assert len(reply.table.rows) > 0

    def test_maxrows_checked_on_cache_hit(self, served):
        db = fresh_small_db()
        server = served(db)
        sql = "SELECT faid, COUNT(*) AS cnt FROM Trans GROUP BY faid"
        with connect(server) as client:
            assert client.query(sql).cache == "miss"  # cached, many rows
            client.set("SET QUERY MAXROWS 1")
            with pytest.raises(BudgetExhausted):
                client.query(sql)  # hit may not bypass the governor


# ----------------------------------------------------------------------
class TestGovernorOverTheWire:
    def test_admission_overflow_returns_typed_rejection(self, served):
        db = fresh_small_db()
        server = served(db)
        db.governor.admission.configure(1, max_queue=0, queue_timeout_ms=50)
        try:
            with connect(server) as client:
                # Hold the only slot in-process; the remote query must be
                # shed with a typed QueryRejected, not an opaque error.
                with db.governor.admission.admit():
                    with pytest.raises(QueryRejected):
                        client.query("SELECT COUNT(*) AS cnt FROM Trans")
                # slot released: the same query now succeeds
                assert client.query(
                    "SELECT COUNT(*) AS cnt FROM Trans"
                ).table.rows[0][0] > 0
        finally:
            db.governor.admission.configure(None)

    def test_metrics_and_governor_ops(self, served):
        db = fresh_small_db()
        server = served(db)
        with connect(server) as client:
            client.query("SELECT COUNT(*) AS cnt FROM Trans")
            client.query("SELECT COUNT(*) AS cnt FROM Trans")
            metrics = client.metrics()
            assert metrics["cache.hits"]["value"] >= 1
            assert metrics["cache.misses"]["value"] >= 1
            assert metrics["server.requests"]["value"] >= 2
            assert metrics["server.connections"]["value"] >= 1
            lines = client.governor()
            assert any("admission" in line for line in lines)

    def test_explain_sees_session_tolerance(self, served):
        db = fresh_small_db()
        db.create_summary_table(
            "SrvAst",
            "select faid, count(*) as cnt from Trans group by faid",
            refresh_mode="deferred",
        )
        server = served(db)
        sql = "SELECT faid, COUNT(*) AS cnt FROM Trans GROUP BY faid"
        with connect(server) as client:
            client.query(
                "INSERT INTO Trans VALUES "
                "(999993, 1, 1, 1, DATE '1990-06-15', 1, 10.0, 0.1)"
            )
            strict = client.explain(sql)
            assert "SrvAst" not in strict.split("-- rewrite --")[-1] or (
                "no summary-table rewrite" in strict
            )
            client.set("SET REFRESH AGE ANY")
            tolerant = client.explain(sql)
            assert "SrvAst" in tolerant


# ----------------------------------------------------------------------
class TestConcurrency:
    def test_sixteen_clients_mixed_read_ingest(self, served):
        db = fresh_small_db()
        server = served(db)
        host, port = server.address
        queries = [
            "SELECT faid, COUNT(*) AS cnt FROM Trans GROUP BY faid",
            "SELECT flid, SUM(price) AS total FROM Trans GROUP BY flid",
            "SELECT COUNT(*) AS cnt FROM Trans",
            "SELECT country, COUNT(*) AS cnt FROM Loc GROUP BY country",
        ]
        errors: list[BaseException] = []
        barrier = threading.Barrier(16, timeout=60)

        def reader(worker: int):
            try:
                with ReproClient(host, port) as client:
                    client.set(f"SET QUERY MAXROWS {100000 + worker}")
                    barrier.wait()
                    for round_no in range(6):
                        sql = queries[(worker + round_no) % len(queries)]
                        reply = client.query(sql)
                        assert len(reply.table.rows) > 0
                    session = client.ping()["session"]
                    assert session["max_rows"] == 100000 + worker
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        def ingester(worker: int):
            try:
                with ReproClient(host, port) as client:
                    client.set(f"SET QUERY MAXROWS {200000 + worker}")
                    barrier.wait()
                    for round_no in range(4):
                        tid = 500000 + worker * 100 + round_no
                        status = client.query(
                            f"INSERT INTO Trans VALUES ({tid}, 1, 1, 1, "
                            "DATE '1991-03-15', 1, 25.0, 0.1)"
                        ).status
                        assert "inserted" in status
                        reply = client.query(queries[round_no % len(queries)])
                        assert len(reply.table.rows) > 0
                    session = client.ping()["session"]
                    assert session["max_rows"] == 200000 + worker
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(8)
        ] + [threading.Thread(target=ingester, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads), "deadlock"
        assert not errors, errors[0]
        # shared knobs never mutated by any session's SETs
        assert db.governor.max_rows is None
        # all 32 ingested rows are visible to a fresh query
        with ReproClient(host, port) as client:
            count = client.query(
                "SELECT COUNT(*) AS cnt FROM Trans WHERE tid >= 500000"
            ).table.rows[0][0]
        assert count == 32
