"""Wire-protocol unit tests: framing, bit-identity, error mapping."""

from __future__ import annotations

import datetime
import math

import pytest

from repro.engine.table import Table
from repro.errors import QueryRejected, QueryTimeout, ReproError
from repro.server import protocol


class TestMessageRoundTrip:
    def test_simple_message(self):
        message = {"op": "query", "id": 7, "sql": "SELECT 1"}
        line = protocol.encode_message(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode_message(line) == message

    def test_dates_survive_tagged(self):
        day = datetime.date(1996, 2, 29)
        line = protocol.encode_message({"value": day})
        assert protocol.decode_message(line) == {"value": day}

    def test_floats_bit_identical(self):
        values = [0.1, 1 / 3, 1e308, 5e-324, -0.0, 123456789.987654321]
        decoded = protocol.decode_message(
            protocol.encode_message({"values": values})
        )["values"]
        for sent, got in zip(values, decoded):
            assert math.copysign(1.0, sent) == math.copysign(1.0, got)
            assert sent == got and sent.hex() == got.hex()

    def test_unicode_and_null(self):
        message = {"s": "naïve — ünïcödé", "n": None, "b": True}
        assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_bad_lines_raise_protocol_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b"[1, 2, 3]\n")


class TestTableRoundTrip:
    def test_values_and_order_preserved(self):
        table = Table(
            ["id", "day", "price", "name"],
            [
                (1, datetime.date(1990, 1, 15), 110.25, "tv"),
                (2, None, -0.0, None),
                (3, datetime.date(2000, 12, 31), 1 / 3, "radio"),
            ],
        )
        restored = protocol.decode_table(protocol.encode_table(table))
        assert list(restored.columns) == list(table.columns)
        assert list(restored.rows) == list(table.rows)
        for left, right in zip(restored.rows, table.rows):
            for a, b in zip(left, right):
                assert type(a) is type(b)

    def test_rows_are_tuples(self):
        restored = protocol.decode_table({"columns": ["a"], "rows": [[1]]})
        assert restored.rows[0] == (1,)
        assert isinstance(restored.rows[0], tuple)

    def test_bad_payload_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_table({"columns": ["a"]})


class TestErrorMapping:
    def test_payload_carries_type_and_message(self):
        payload = protocol.error_payload(QueryRejected("too busy"))
        assert payload == {"type": "QueryRejected", "message": "too busy"}

    def test_known_types_map_back(self):
        assert protocol.error_class("QueryRejected") is QueryRejected
        assert protocol.error_class("QueryTimeout") is QueryTimeout

    def test_unknown_types_fall_back(self):
        assert protocol.error_class("SomethingNew") is ReproError
        assert protocol.error_class("ValueError") is ReproError
        assert protocol.error_class("") is ReproError
