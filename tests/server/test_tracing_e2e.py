"""End-to-end tracing and the cluster health surface.

The acceptance path: one trace_id minted in :class:`ReproClient` spans
the client attempt (and any retry), the server request, parse,
admission, rewrite, execute, the WAL group commit, and the standby's
apply — and with sampling off, the same round trip records nothing.
"""

import time

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.obs import events, spans
from repro.replication import StandbyServer, WriteAheadLog, wait_for_catchup
from repro.server.client import ReproClient
from repro.server.server import QueryServer
from repro.testing import INJECTOR


@pytest.fixture(autouse=True)
def clean_obs():
    spans.uninstall()
    events.LOG.clear()
    yield
    spans.uninstall()
    events.LOG.clear()


def make_primary(tmp_path, **kwargs):
    db = Database(credit_card_catalog())
    wal = WriteAheadLog(tmp_path / "wal-primary", sync="os")
    wal.begin(db)
    server = QueryServer(db, port=0, wal=wal, **kwargs)
    server.start_in_thread()
    return server


def stop_server(server: QueryServer) -> None:
    server.stop()
    if server.wal is not None:
        server.wal.close()


def spans_named(buffer, trace_id: str, name: str) -> list[dict]:
    return [s for s in buffer.for_trace(trace_id) if s["name"] == name]


def wait_for_span(buffer, trace_id: str, name: str, timeout: float = 10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        found = spans_named(buffer, trace_id, name)
        if found:
            return found
        time.sleep(0.01)
    raise AssertionError(
        f"span {name!r} never landed for trace {trace_id}: "
        f"{sorted({s['name'] for s in buffer.for_trace(trace_id)})}"
    )


class TestTraceRoundTrip:
    def test_one_trace_id_spans_client_primary_and_standby(self, tmp_path):
        tracer = spans.install(sample_rate=1.0)
        primary = make_primary(tmp_path)
        host, port = primary.address
        standby = StandbyServer(
            (host, port), wal_dir=str(tmp_path / "wal-standby"),
            sync="os", reconnect_backoff=0.05, reconnect_cap=0.5,
        )
        try:
            standby.start()
            with ReproClient(host, port, retries=2, seed=1) as client:
                client.query("INSERT INTO Acct VALUES (900, 1, 'open')")
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)

            [root] = [
                s for s in tracer.buffer.snapshot()
                if s["name"] == "client.request"
            ]
            trace_id = root["trace_id"]
            assert root["parent_id"] is None
            # the standby's apply span finishes just after applied_lsn
            # advances — poll for it rather than racing the tail thread
            [apply_span] = wait_for_span(
                tracer.buffer, trace_id, "standby.apply"
            )
            names = {s["name"] for s in tracer.buffer.for_trace(trace_id)}
            assert {
                "client.request", "client.attempt", "server.request",
                "server.parse", "wal.stage", "wal.fsync", "standby.apply",
            } <= names

            # parenting: attempt and server.request hang off the root,
            # parse/stage/fsync hang off the server.request span
            by_name = {
                s["name"]: s for s in tracer.buffer.for_trace(trace_id)
            }
            assert by_name["client.attempt"]["parent_id"] == root["span_id"]
            server_span = by_name["server.request"]
            assert server_span["parent_id"] == root["span_id"]
            assert by_name["server.parse"]["parent_id"] == (
                server_span["span_id"]
            )
            # both sides group-commit, so the trace holds two fsync
            # spans: the primary's under its request span, the
            # standby's under its apply span
            fsyncs = spans_named(tracer.buffer, trace_id, "wal.fsync")
            [primary_fsync] = [
                s for s in fsyncs
                if s["parent_id"] == server_span["span_id"]
            ]
            assert primary_fsync["attrs"]["lsn"] == primary.applied_lsn
            # the standby joined the shipped trace as a fresh root; its
            # local journaling nests under the apply span
            assert apply_span["parent_id"] is None
            assert apply_span["attrs"]["lsn"] == primary.applied_lsn
            standby_stages = [
                s for s in spans_named(tracer.buffer, trace_id, "wal.stage")
                if s["parent_id"] == apply_span["span_id"]
            ]
            assert len(standby_stages) == 1
        finally:
            standby.stop()
            stop_server(primary)

    def test_select_trace_covers_admission_rewrite_execute(self, tmp_path):
        tracer = spans.install(sample_rate=1.0)
        primary = make_primary(tmp_path)
        primary.db.set_tracing(True)  # match tracer on: spans link to it
        host, port = primary.address
        try:
            with ReproClient(host, port) as client:
                client.query("INSERT INTO Acct VALUES (901, 1, 'open')")
                client.query(
                    "CREATE SUMMARY TABLE ast_status AS "
                    "SELECT status, COUNT(*) AS n FROM Acct GROUP BY status"
                )
                client.query(
                    "SELECT status, COUNT(*) AS n FROM Acct GROUP BY status"
                )
            select_requests = [
                s for s in tracer.buffer.snapshot()
                if s["name"] == "client.request"
            ]
            trace_id = select_requests[-1]["trace_id"]
            names = {s["name"] for s in tracer.buffer.for_trace(trace_id)}
            assert {
                "server.request", "cache.lookup", "admission.wait",
                "db.bind", "db.rewrite", "db.execute",
            } <= names
            [lookup] = spans_named(tracer.buffer, trace_id, "cache.lookup")
            assert lookup["attrs"]["outcome"] == "miss"
            [rewrite] = spans_named(tracer.buffer, trace_id, "db.rewrite")
            assert rewrite["attrs"]["rewritten"] is True
            # the rewrite span links the match tracer's per-query record
            assert "match_trace" in rewrite["attrs"]
        finally:
            stop_server(primary)

    def test_retry_stays_one_trace(self, tmp_path):
        tracer = spans.install(sample_rate=1.0)
        primary = make_primary(tmp_path)
        host, port = primary.address
        try:
            with ReproClient(host, port, retries=2, seed=3) as client:
                with INJECTOR.injected("client.send", times=1):
                    reply = client.query(
                        "INSERT INTO Acct VALUES (902, 1, 'open')"
                    )
            assert reply.deduped or reply.status is not None
            [root] = [
                s for s in tracer.buffer.snapshot()
                if s["name"] == "client.request"
            ]
            attempts = spans_named(
                tracer.buffer, root["trace_id"], "client.attempt"
            )
            assert len(attempts) == 2  # the lost ACK and the retry
            assert {a["parent_id"] for a in attempts} == {root["span_id"]}
            failed = [a for a in attempts if "error" in a["attrs"]]
            assert len(failed) == 1
            # the failover event carries the same trace id
            failovers = [
                e for e in events.tail()
                if e["event"] == "client.failover"
            ]
            assert len(failovers) == 1
            assert failovers[0]["trace_id"] == root["trace_id"]
        finally:
            stop_server(primary)

    def test_untraced_client_gets_server_minted_root(self, tmp_path):
        """A request with no trace context still traces server-side:
        the server flips its own sampling coin and mints the root."""
        import json
        import socket

        tracer = spans.install(sample_rate=1.0)
        primary = make_primary(tmp_path)
        host, port = primary.address
        try:
            with socket.create_connection((host, port)) as sock:
                stream = sock.makefile("rwb")
                stream.write(json.dumps({
                    "id": 1, "op": "query",
                    "sql": "SELECT COUNT(*) AS n FROM Acct",
                }).encode() + b"\n")
                stream.flush()
                reply = json.loads(stream.readline())
            assert reply["ok"]
            roots = [
                s for s in tracer.buffer.snapshot()
                if s["name"] == "server.request" and s["parent_id"] is None
            ]
            assert roots, "server must mint a root for untraced callers"
            names = {
                s["name"]
                for s in tracer.buffer.for_trace(roots[-1]["trace_id"])
            }
            assert {"server.request", "db.execute"} <= names
        finally:
            stop_server(primary)

    def test_zero_spans_when_sampling_off(self, tmp_path):
        tracer = spans.install(sample_rate=1.0)
        spans.uninstall()  # SET TRACE SAMPLE OFF equivalent
        primary = make_primary(tmp_path)
        host, port = primary.address
        try:
            with ReproClient(host, port, retries=1) as client:
                client.query("INSERT INTO Acct VALUES (903, 1, 'open')")
                client.query("SELECT COUNT(*) AS n FROM Acct")
            assert len(tracer.buffer) == 0
        finally:
            stop_server(primary)


class TestStatusSurface:
    def test_status_aggregates_cluster_health(self, tmp_path):
        spans.install(sample_rate=1.0)
        primary = make_primary(tmp_path)
        host, port = primary.address
        standby = StandbyServer(
            (host, port), wal_dir=str(tmp_path / "wal-standby"),
            sync="os", reconnect_backoff=0.05, reconnect_cap=0.5,
        )
        try:
            standby.start()
            with ReproClient(host, port) as client:
                client.query("INSERT INTO Acct VALUES (910, 1, 'open')")
                client.query("SELECT COUNT(*) AS n FROM Acct")  # miss
                client.query("SELECT COUNT(*) AS n FROM Acct")  # hit
                status = client.status()

            assert status["role"] == "primary"
            assert status["address"] == f"{host}:{port}"
            assert status["requests"] >= 4
            assert status["uptime_s"] >= 0

            replication = status["replication"]
            assert replication["lag"] >= 0
            assert replication["lag_seconds"] >= 0.0
            assert replication["subscribers"] >= 0

            wal = status["wal"]
            assert wal["depth_since_checkpoint"] == (
                wal["last_lsn"] - wal["checkpoint_lsn"]
            )
            assert wal["last_lsn"] >= 1

            cache = status["cache"]
            assert cache["enabled"] is True
            assert cache["hits"] >= 1
            assert cache["misses"] >= 1
            assert 0.0 < cache["hit_rate"] <= 1.0

            governor = status["governor"]
            assert "admission" in governor
            assert "breaker" in governor

            refresh = status["refresh"]
            assert refresh["quarantined"] == []
            assert refresh["queued"] >= 0

            latency = status["latency_ms"]
            assert latency, "live histograms must surface"
            for entry in latency.values():
                assert entry["count"] >= 1
                assert entry["p99"] is not None
                assert entry["p50"] <= entry["p99"]

            tracing = status["tracing"]
            assert tracing["enabled"] is True
            assert tracing["sample_rate"] == 1.0
            assert tracing["spans"] >= 1

            # the standby reports its own role and the primary address
            with ReproClient(*standby.address) as standby_client:
                standby_status = standby_client.status()
            assert standby_status["role"] == "standby"
            assert standby_status["replication"]["primary"] == (
                f"{host}:{port}"
            )
        finally:
            standby.stop()
            stop_server(primary)

    def test_status_without_wal_or_tracer(self):
        db = Database(credit_card_catalog())
        server = QueryServer(db, port=0)
        server.start_in_thread()
        try:
            host, port = server.address
            with ReproClient(host, port) as client:
                status = client.status()
            assert "wal" not in status
            assert status["tracing"] == {"enabled": False}
        finally:
            server.stop()
