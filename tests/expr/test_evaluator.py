"""Three-valued-logic evaluation."""

import datetime

import pytest

from repro.errors import ExecutionError
from repro.expr import (
    AggCall,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
    evaluate,
    evaluate_constant,
    is_constant,
)
from repro.expr.nodes import CaseWhen


def ev(expr, row=None):
    row = row or {}
    return evaluate(expr, lambda ref: row[ref.name])


X = ColumnRef(None, "x")
Y = ColumnRef(None, "y")


class TestScalars:
    def test_arithmetic(self):
        assert ev(NaryOp("+", (Literal(1), Literal(2), Literal(3)))) == 6
        assert ev(NaryOp("*", (Literal(2), Literal(3)))) == 6
        assert ev(BinaryOp("-", Literal(5), Literal(2))) == 3
        assert ev(BinaryOp("/", Literal(7), Literal(2))) == 3.5
        assert ev(BinaryOp("%", Literal(7), Literal(2))) == 1

    def test_null_propagation(self):
        assert ev(NaryOp("+", (Literal(1), Literal(None)))) is None
        assert ev(BinaryOp("-", Literal(None), Literal(1))) is None
        assert ev(UnaryOp("-", Literal(None))) is None
        assert ev(BinaryOp(">", Literal(None), Literal(1))) is None

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            ev(BinaryOp("/", Literal(1), Literal(0)))
        with pytest.raises(ExecutionError):
            ev(BinaryOp("%", Literal(1), Literal(0)))

    def test_comparisons(self):
        assert ev(BinaryOp("<", Literal(1), Literal(2))) is True
        assert ev(BinaryOp("<>", Literal(1), Literal(1))) is False
        assert ev(BinaryOp(">=", Literal("b"), Literal("a"))) is True


class TestKleeneLogic:
    def test_and(self):
        null = Literal(None)
        assert ev(NaryOp("and", (Literal(True), null))) is None
        assert ev(NaryOp("and", (Literal(False), null))) is False
        assert ev(NaryOp("and", (Literal(True), Literal(True)))) is True

    def test_or(self):
        null = Literal(None)
        assert ev(NaryOp("or", (Literal(False), null))) is None
        assert ev(NaryOp("or", (Literal(True), null))) is True
        assert ev(NaryOp("or", (Literal(False), Literal(False)))) is False

    def test_not(self):
        assert ev(UnaryOp("not", Literal(None))) is None
        assert ev(UnaryOp("not", Literal(False))) is True

    def test_is_null(self):
        assert ev(IsNull(Literal(None))) is True
        assert ev(IsNull(Literal(1))) is False
        assert ev(IsNull(Literal(None), negated=True)) is False


class TestInList:
    def test_hit(self):
        assert ev(InList(Literal(2), (Literal(1), Literal(2)))) is True

    def test_miss(self):
        assert ev(InList(Literal(3), (Literal(1), Literal(2)))) is False

    def test_null_member_makes_miss_unknown(self):
        assert ev(InList(Literal(3), (Literal(1), Literal(None)))) is None

    def test_null_subject_unknown(self):
        assert ev(InList(Literal(None), (Literal(1),))) is None

    def test_negated(self):
        assert ev(InList(Literal(3), (Literal(1),), negated=True)) is True
        assert ev(InList(Literal(None), (Literal(1),), negated=True)) is None


class TestFunctionsAndCase:
    def test_date_parts(self):
        d = Literal(datetime.date(1991, 7, 15))
        assert ev(FuncCall("year", (d,))) == 1991
        assert ev(FuncCall("month", (d,))) == 7
        assert ev(FuncCall("day", (d,))) == 15
        assert ev(FuncCall("quarter", (d,))) == 3

    def test_functions_propagate_null(self):
        assert ev(FuncCall("year", (Literal(None),))) is None

    def test_coalesce_is_not_null_propagating(self):
        expr = FuncCall("coalesce", (Literal(None), Literal(5)))
        assert ev(expr) == 5

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            ev(FuncCall("frobnicate", (Literal(1),)))

    def test_case_when(self):
        expr = CaseWhen(
            (BinaryOp(">", X, Literal(0)), Literal("pos")),
            Literal("neg"),
        )
        assert ev(expr, {"x": 5}) == "pos"
        assert ev(expr, {"x": -5}) == "neg"
        assert ev(expr, {"x": None}) == "neg"  # UNKNOWN is not TRUE


class TestConstants:
    def test_is_constant(self):
        assert is_constant(NaryOp("+", (Literal(1), Literal(2))))
        assert not is_constant(X)
        assert not is_constant(AggCall("count"))

    def test_evaluate_constant_rejects_columns(self):
        with pytest.raises(ExecutionError):
            evaluate_constant(X)

    def test_aggregate_outside_groupby_raises(self):
        with pytest.raises(ExecutionError):
            ev(AggCall("count"))
