"""Normalization: the matcher's notion of syntactic equivalence."""

from repro.expr import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
    normal_equal,
    normalize,
)
from repro.expr.nodes import FALSE, TRUE


X = ColumnRef("t", "x")
Y = ColumnRef("t", "y")


class TestFolding:
    def test_constant_folding(self):
        assert normalize(NaryOp("+", (Literal(1), Literal(2)))) == Literal(3)
        assert normalize(BinaryOp("-", Literal(5), Literal(2))) == Literal(3)
        assert normalize(FuncCall("abs", (Literal(-3),))) == Literal(3)

    def test_division_by_zero_not_folded(self):
        expr = BinaryOp("/", Literal(1), Literal(0))
        assert normalize(expr) == expr  # left for runtime to raise

    def test_identity_elements_removed(self):
        assert normalize(NaryOp("+", (X, Literal(0)))) == X
        assert normalize(NaryOp("*", (X, Literal(1)))) == X

    def test_null_annihilates_arithmetic(self):
        assert normalize(NaryOp("+", (X, Literal(None)))) == Literal(None)

    def test_partial_constant_fold(self):
        expr = NaryOp("+", (Literal(1), X, Literal(2)))
        result = normalize(expr)
        assert result == NaryOp("+", (X, Literal(3)))


class TestCommutativity:
    def test_flattening(self):
        nested = NaryOp("+", (X, NaryOp("+", (Y, Literal(1)))))
        flat = NaryOp("+", (Y, X, Literal(1)))
        assert normal_equal(nested, flat)

    def test_operand_ordering(self):
        assert normalize(NaryOp("*", (Y, X))) == normalize(NaryOp("*", (X, Y)))

    def test_and_dedupe(self):
        pred = NaryOp("and", (BinaryOp(">", X, Literal(1)),) * 2)
        assert normalize(pred) == BinaryOp(">", X, Literal(1))

    def test_and_identity_and_absorber(self):
        assert normalize(NaryOp("and", (TRUE, TRUE))) == TRUE
        assert normalize(NaryOp("and", (X, FALSE))) == FALSE
        assert normalize(NaryOp("or", (X, TRUE))) == TRUE


class TestComparisons:
    def test_literal_moves_right(self):
        assert normalize(BinaryOp("<", Literal(10), X)) == BinaryOp(
            ">", X, Literal(10)
        )

    def test_column_order_canonical(self):
        a = BinaryOp("=", Y, X)
        b = BinaryOp("=", X, Y)
        assert normalize(a) == normalize(b)

    def test_constant_comparison_folds(self):
        assert normalize(BinaryOp(">", Literal(3), Literal(1))) == TRUE


class TestNotElimination:
    def test_double_negation(self):
        assert normalize(UnaryOp("not", UnaryOp("not", X))) == X

    def test_negated_comparison(self):
        expr = UnaryOp("not", BinaryOp(">", X, Literal(5)))
        assert normalize(expr) == BinaryOp("<=", X, Literal(5))

    def test_negated_is_null(self):
        assert normalize(UnaryOp("not", IsNull(X))) == IsNull(X, negated=True)

    def test_de_morgan(self):
        expr = UnaryOp(
            "not",
            NaryOp("and", (BinaryOp(">", X, Literal(1)), BinaryOp("<", Y, Literal(2)))),
        )
        result = normalize(expr)
        assert isinstance(result, NaryOp) and result.op == "or"
        assert BinaryOp("<=", X, Literal(1)) in result.operands
        assert BinaryOp(">=", Y, Literal(2)) in result.operands

    def test_negated_in_list(self):
        expr = UnaryOp("not", InList(X, (Literal(1),)))
        assert normalize(expr) == InList(X, (Literal(1),), negated=True)

    def test_unary_minus_folds(self):
        assert normalize(UnaryOp("-", Literal(4))) == Literal(-4)
        assert normalize(UnaryOp("-", UnaryOp("-", X))) == X


class TestIdempotence:
    def test_normalize_idempotent_on_examples(self):
        samples = [
            NaryOp("+", (Literal(1), NaryOp("+", (X, Literal(2))))),
            UnaryOp("not", NaryOp("or", (IsNull(X), BinaryOp("=", X, Y)))),
            NaryOp("*", (X, Y, Literal(1))),
            BinaryOp("<", Literal(0), NaryOp("+", (Y, X))),
        ]
        for expr in samples:
            once = normalize(expr)
            assert normalize(once) == once
