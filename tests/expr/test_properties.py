"""Property-based tests for the expression core (hypothesis)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.expr import (
    BinaryOp,
    ColumnRef,
    EquivalenceClasses,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
    evaluate,
    implies,
    normalize,
)

COLUMNS = ["a", "b", "c"]


def columns() -> st.SearchStrategy:
    return st.sampled_from([ColumnRef("t", name) for name in COLUMNS])


def literals() -> st.SearchStrategy:
    return st.one_of(
        st.integers(min_value=-20, max_value=20).map(Literal),
        st.sampled_from([Literal(None), Literal(0), Literal(1)]),
    )


@st.composite
def numeric_exprs(draw, depth: int = 3):
    if depth == 0:
        return draw(st.one_of(columns(), literals()))
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return draw(st.one_of(columns(), literals()))
    if kind == 1:
        operands = draw(
            st.lists(numeric_exprs(depth=depth - 1), min_size=2, max_size=3)
        )
        return NaryOp("+", tuple(operands))
    if kind == 2:
        operands = draw(
            st.lists(numeric_exprs(depth=depth - 1), min_size=2, max_size=3)
        )
        return NaryOp("*", tuple(operands))
    if kind == 3:
        return BinaryOp(
            "-",
            draw(numeric_exprs(depth=depth - 1)),
            draw(numeric_exprs(depth=depth - 1)),
        )
    return UnaryOp("-", draw(numeric_exprs(depth=depth - 1)))


@st.composite
def predicates(draw, depth: int = 2):
    if depth == 0:
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return BinaryOp(op, draw(numeric_exprs(1)), draw(numeric_exprs(1)))
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return IsNull(draw(numeric_exprs(1)), negated=draw(st.booleans()))
    if kind == 1:
        operands = draw(st.lists(predicates(depth=depth - 1), min_size=2, max_size=3))
        return NaryOp(draw(st.sampled_from(["and", "or"])), tuple(operands))
    if kind == 2:
        return UnaryOp("not", draw(predicates(depth=depth - 1)))
    op = draw(st.sampled_from(["=", "<", ">"]))
    return BinaryOp(op, draw(numeric_exprs(1)), draw(numeric_exprs(1)))


def rows() -> st.SearchStrategy:
    cell = st.one_of(st.integers(min_value=-20, max_value=20), st.none())
    return st.fixed_dictionaries({name: cell for name in COLUMNS})


@settings(max_examples=200, deadline=None)
@given(expr=numeric_exprs())
def test_normalize_is_idempotent(expr):
    once = normalize(expr)
    assert normalize(once) == once


@settings(max_examples=200, deadline=None)
@given(expr=predicates())
def test_normalize_predicates_idempotent(expr):
    once = normalize(expr)
    assert normalize(once) == once


@settings(max_examples=200, deadline=None)
@given(expr=numeric_exprs(), row=rows())
def test_normalize_preserves_semantics(expr, row):
    resolve = lambda ref: row[ref.name]
    assert evaluate(expr, resolve) == evaluate(normalize(expr), resolve)


@settings(max_examples=200, deadline=None)
@given(expr=predicates(), row=rows())
def test_normalize_preserves_predicate_semantics(expr, row):
    resolve = lambda ref: row[ref.name]
    assert evaluate(expr, resolve) == evaluate(normalize(expr), resolve)


@settings(max_examples=150, deadline=None)
@given(
    premise=predicates(depth=1),
    conclusion=predicates(depth=1),
    row=rows(),
)
def test_implication_is_sound(premise, conclusion, row):
    """If implies(p, q) claims truth, no row may satisfy p but not q."""
    if implies(premise, conclusion):
        resolve = lambda ref: row[ref.name]
        if evaluate(premise, resolve) is True:
            assert evaluate(conclusion, resolve) is True


@settings(max_examples=100, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(columns(), columns()), min_size=0, max_size=4
    ),
    expr=numeric_exprs(depth=2),
)
def test_equivalence_rewrite_stable(pairs, expr):
    classes = EquivalenceClasses()
    for left, right in pairs:
        classes.add_equality(left, right)
    rewritten = classes.rewrite(expr)
    assert classes.rewrite(rewritten) == rewritten  # idempotent
    for ref in rewritten.column_refs():
        assert classes.representative(ref) == ref  # fully canonical
