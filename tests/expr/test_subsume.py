"""Predicate subsumption (footnote 4: x > 10 subsumes x > 20)."""

from repro.expr import (
    BinaryOp,
    ColumnRef,
    InList,
    Literal,
    NaryOp,
    implies,
    subsumes,
)

X = ColumnRef("t", "x")
Y = ColumnRef("t", "y")


def gt(v):
    return BinaryOp(">", X, Literal(v))


def ge(v):
    return BinaryOp(">=", X, Literal(v))


def lt(v):
    return BinaryOp("<", X, Literal(v))


def le(v):
    return BinaryOp("<=", X, Literal(v))


def eq(v):
    return BinaryOp("=", X, Literal(v))


class TestPaperExample:
    def test_x_gt_10_subsumes_x_gt_20(self):
        assert subsumes(gt(10), gt(20))
        assert not subsumes(gt(20), gt(10))


class TestRangeImplication:
    def test_same_direction(self):
        assert implies(gt(20), gt(10))
        assert implies(gt(10), gt(10))
        assert implies(ge(11), gt(10))
        assert implies(gt(10), ge(10))
        assert not implies(ge(10), gt(10))
        assert implies(lt(5), lt(10))
        assert implies(le(5), lt(10))
        assert not implies(lt(10), lt(5))

    def test_opposite_direction_never(self):
        assert not implies(gt(10), lt(20))

    def test_equality_implies_range(self):
        assert implies(eq(30), gt(20))
        assert not implies(eq(10), gt(20))
        assert implies(eq(10), InList(X, (Literal(10), Literal(20))))

    def test_range_implies_not_equal(self):
        assert implies(gt(20), BinaryOp("<>", X, Literal(5)))
        assert not implies(gt(20), BinaryOp("<>", X, Literal(25)))

    def test_different_subjects_never(self):
        assert not implies(gt(20), BinaryOp(">", Y, Literal(10)))


class TestInLists:
    def test_subset(self):
        small = InList(X, (Literal(1), Literal(2)))
        big = InList(X, (Literal(1), Literal(2), Literal(3)))
        assert implies(small, big)
        assert not implies(big, small)

    def test_in_list_implies_range(self):
        members = InList(X, (Literal(30), Literal(40)))
        assert implies(members, gt(20))
        assert not implies(members, gt(35))


class TestConjunctions:
    def test_conjunct_implies(self):
        both = NaryOp("and", (gt(20), BinaryOp("<", Y, Literal(5))))
        assert implies(both, gt(10))

    def test_implies_conjunction_needs_all(self):
        goal = NaryOp("and", (gt(10), lt(100)))
        assert implies(NaryOp("and", (gt(20), lt(50))), goal)
        assert not implies(gt(20), goal)

    def test_disjunctive_premise(self):
        either = NaryOp("or", (gt(30), gt(40)))
        assert implies(either, gt(20))
        assert not implies(either, gt(35))

    def test_disjunctive_conclusion(self):
        goal = NaryOp("or", (gt(100), gt(10)))
        assert implies(gt(20), goal)


class TestConservatism:
    def test_unknown_shapes_refuse(self):
        # Sound but incomplete: anything unrecognized is not implied.
        assert not implies(gt(20), BinaryOp(">", X, Y))
        assert not implies(BinaryOp(">", X, Y), BinaryOp(">", X, Y).with_children((Y, X)))

    def test_identical_complex_predicates(self):
        pred = BinaryOp(">", NaryOp("+", (X, Y)), Literal(0))
        assert implies(pred, pred)

    def test_null_literal_refused(self):
        assert not implies(BinaryOp("=", X, Literal(None)), gt(10))

    def test_incomparable_types_refused(self):
        assert not implies(BinaryOp(">", X, Literal("abc")), gt(10))
