"""Column-equivalence classes (how aid derives from faid in Figure 5)."""

from repro.expr import (
    BinaryOp,
    ColumnRef,
    EquivalenceClasses,
    FuncCall,
    Literal,
    NaryOp,
    canonical,
    equivalent,
)

FAID = ColumnRef("Trans", "faid")
AID = ColumnRef("Acct", "aid")
LID = ColumnRef("Loc", "lid")
FLID = ColumnRef("Trans", "flid")


def classes_with(*pairs):
    classes = EquivalenceClasses()
    for left, right in pairs:
        classes.add_equality(left, right)
    return classes


class TestUnionFind:
    def test_symmetric_and_transitive(self):
        other = ColumnRef("X", "c")
        classes = classes_with((FAID, AID), (AID, other))
        assert classes.same_class(FAID, other)
        assert classes.same_class(other, FAID)

    def test_representative_deterministic(self):
        a = classes_with((FAID, AID))
        b = classes_with((AID, FAID))
        assert a.representative(FAID) == b.representative(FAID)

    def test_members(self):
        classes = classes_with((FAID, AID))
        assert classes.members(FAID) == {FAID, AID}
        assert classes.members(LID) == {LID}

    def test_disjoint_classes(self):
        classes = classes_with((FAID, AID), (FLID, LID))
        assert not classes.same_class(FAID, LID)
        assert len(classes.classes()) == 2

    def test_add_predicate_filters_non_equalities(self):
        classes = EquivalenceClasses()
        assert classes.add_predicate(BinaryOp("=", FAID, AID))
        assert not classes.add_predicate(BinaryOp(">", FAID, Literal(1)))
        assert not classes.add_predicate(BinaryOp("=", FAID, Literal(1)))


class TestRewriteAndEquivalence:
    def test_rewrite_to_representative(self):
        classes = classes_with((FAID, AID))
        rep = classes.representative(FAID)
        expr = NaryOp("+", (AID, Literal(1)))
        assert classes.rewrite(expr) == NaryOp("+", (rep, Literal(1)))

    def test_equivalent_modulo_classes(self):
        classes = classes_with((FAID, AID))
        assert equivalent(FAID, AID, classes)
        assert equivalent(
            FuncCall("year", (FAID,)), FuncCall("year", (AID,)), classes
        )
        assert not equivalent(FAID, LID, classes)

    def test_equivalent_without_classes_is_syntactic(self):
        assert equivalent(NaryOp("+", (FAID, AID)), NaryOp("+", (AID, FAID)))
        assert not equivalent(FAID, AID)

    def test_join_predicate_collapses_to_true(self):
        classes = classes_with((FAID, AID))
        assert canonical(BinaryOp("=", FAID, AID), classes) == Literal(True)
