"""Hash caching and normal-form memoization on expression nodes.

The fast path hashes and normalizes the same expressions thousands of
times (signatures, fingerprints, predicate matching); these tests pin
the caching behaviour it relies on.
"""

from repro.expr import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    NaryOp,
    normal_equal,
    normalize,
)
from repro.expr.normalize import sort_key

X = ColumnRef("t", "x")
Y = ColumnRef("t", "y")


def deep(depth=60):
    expr = Literal(1)
    for level in range(depth):
        expr = NaryOp("+", (ColumnRef("t", f"c{level}"), expr))
    return expr


class TestHashCaching:
    def test_hash_is_cached_on_instance(self):
        expr = BinaryOp(">", X, Literal(1))
        value = hash(expr)
        assert expr._hash == value
        assert hash(expr) == value  # second call served from the cache

    def test_equal_nodes_equal_hashes(self):
        a = NaryOp("+", (X, Y, Literal(2)))
        b = NaryOp("+", (X, Y, Literal(2)))
        assert a is not b and a == b
        assert hash(a) == hash(b)

    def test_cached_hash_survives_reuse_as_dict_key(self):
        table = {deep(): "v"}
        assert table[deep()] == "v"


class TestNormalizeMemoization:
    def test_idempotent_and_interned(self):
        expr = NaryOp("+", (Y, X, Literal(0)))
        once = normalize(expr)
        assert normalize(once) is once  # _is_normal fast path
        # equal input expressions intern to the same normal form object
        again = normalize(NaryOp("+", (Y, X, Literal(0))))
        assert again is once

    def test_memoized_result_still_correct(self):
        expr = BinaryOp("-", Literal(5), Literal(2))
        assert normalize(expr) == Literal(3)
        assert normalize(expr) == Literal(3)

    def test_normal_equal_hash_fast_path(self):
        assert normal_equal(NaryOp("*", (X, Y)), NaryOp("*", (Y, X)))
        assert not normal_equal(
            BinaryOp(">", X, Literal(1)), BinaryOp(">", X, Literal(2))
        )

    def test_sort_key_stable_and_memoized(self):
        expr = FuncCall("year", (X,))
        first = sort_key(expr)
        assert sort_key(expr) == first
        assert expr._sort_key == first

    def test_deep_expression_normalizes(self):
        expr = deep(200)
        result = normalize(expr)
        assert normalize(expr) is result
