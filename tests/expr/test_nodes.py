"""Expression tree construction and traversal."""

import pytest

from repro.expr import (
    AggCall,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
    conjunction,
    disjunction,
    split_conjuncts,
)
from repro.expr.nodes import TRUE, FALSE, CaseWhen


X = ColumnRef("t", "x")
Y = ColumnRef("t", "y")


class TestConstruction:
    def test_nodes_are_hashable_and_equal_by_structure(self):
        a = NaryOp("+", (X, Literal(1)))
        b = NaryOp("+", (ColumnRef("t", "x"), Literal(1)))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_nary_rejects_noncommutative(self):
        with pytest.raises(ValueError):
            NaryOp("-", (X, Y))

    def test_binary_rejects_unknown(self):
        with pytest.raises(ValueError):
            BinaryOp("**", X, Y)

    def test_unary_rejects_unknown(self):
        with pytest.raises(ValueError):
            UnaryOp("~", X)

    def test_agg_requires_arg_except_count(self):
        assert AggCall("count").arg is None
        with pytest.raises(ValueError):
            AggCall("sum")
        with pytest.raises(ValueError):
            AggCall("median", X)

    def test_case_requires_pairs(self):
        with pytest.raises(ValueError):
            CaseWhen((X,))


class TestTraversal:
    def test_walk_preorder(self):
        expr = BinaryOp("-", NaryOp("+", (X, Y)), Literal(1))
        nodes = list(expr.walk())
        assert nodes[0] is expr
        assert X in nodes and Y in nodes and Literal(1) in nodes

    def test_column_refs_with_duplicates(self):
        expr = NaryOp("*", (X, X, Y))
        assert expr.column_refs().count(X) == 2

    def test_contains_aggregate(self):
        assert NaryOp("+", (AggCall("count"), Literal(1))).contains_aggregate()
        assert not NaryOp("+", (X, Literal(1))).contains_aggregate()

    def test_substitute_largest_subtree(self):
        product = NaryOp("*", (X, Y))
        expr = BinaryOp("-", product, X)
        replaced = expr.substitute({product: ColumnRef("s", "value")})
        assert replaced == BinaryOp("-", ColumnRef("s", "value"), X)

    def test_with_children_roundtrip(self):
        expr = InList(X, (Literal(1), Literal(2)), negated=True)
        rebuilt = expr.with_children(expr.children())
        assert rebuilt == expr

    def test_transform_does_not_revisit_replacements(self):
        calls = []

        def visit(node):
            calls.append(node)
            if node == X:
                return Y
            return None

        result = UnaryOp("-", X).transform(visit)
        assert result == UnaryOp("-", Y)
        assert Y not in calls  # replacement not revisited


class TestConjunctions:
    def test_conjunction_flattening(self):
        assert conjunction([]) == TRUE
        assert conjunction([X]) == X
        both = conjunction([X, Y])
        assert isinstance(both, NaryOp) and both.op == "and"

    def test_disjunction(self):
        assert disjunction([]) == FALSE
        assert disjunction([X]) == X

    def test_split_conjuncts_nested(self):
        pred = NaryOp("and", (X, NaryOp("and", (Y, IsNull(X)))))
        assert split_conjuncts(pred) == [X, Y, IsNull(X)]

    def test_split_true_is_empty(self):
        assert split_conjuncts(TRUE) == []
