"""Vectorized expression compilation vs the row interpreter.

:func:`repro.expr.vector.compile_vector` must agree with
:func:`repro.expr.evaluator.evaluate` element-for-element — including
NULL propagation, Kleene logic, and *where* evaluation happens
(short-circuits become shrinking selection vectors, so guarded
divisions raise in neither engine).
"""

from __future__ import annotations

import datetime

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import ExecutionError
from repro.expr import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
    evaluate,
)
from repro.expr.nodes import CaseWhen
from repro.expr.vector import compile_vector, conjuncts

X = ColumnRef(None, "x")
Y = ColumnRef(None, "y")
S = ColumnRef(None, "s")
D = ColumnRef(None, "d")

COLUMNS = {
    "x": [1, None, 3, -4, 0, 7, None, 2],
    "y": [2, 5, None, 4, 0, -1, None, 2],
    "s": ["ab", None, "c", "ab", "", "zz", "q", None],
    "d": [
        datetime.date(1995, 1, 15),
        datetime.date(1996, 7, 1),
        None,
        datetime.date(1995, 12, 31),
        datetime.date(2000, 2, 29),
        datetime.date(1999, 6, 6),
        None,
        datetime.date(1995, 1, 15),
    ],
}
NROWS = len(COLUMNS["x"])


def vector_values(expr, sel=None):
    sel = range(NROWS) if sel is None else sel
    fn = compile_vector(expr)
    return list(fn(lambda ref: COLUMNS[ref.name], sel))


def row_values(expr, sel=None):
    sel = range(NROWS) if sel is None else sel
    return [
        evaluate(expr, lambda ref: COLUMNS[ref.name][i]) for i in sel
    ]


NULL = Literal(None)

EXPRESSIONS = [
    X,
    Literal(42),
    BinaryOp("=", X, Y),
    BinaryOp("<>", X, Y),
    BinaryOp("<", X, Literal(3)),
    BinaryOp("<=", Literal(2), X),
    BinaryOp(">", X, Y),
    BinaryOp(">=", Y, Literal(0)),
    NaryOp("+", (X, Y)),
    BinaryOp("-", X, Literal(1)),
    NaryOp("+", (X, Y, Literal(10))),
    NaryOp("*", (X, X)),
    UnaryOp("-", X),
    UnaryOp("not", BinaryOp("<", X, Y)),
    IsNull(X),
    IsNull(Y, negated=True),
    NaryOp("and", (BinaryOp("<", X, Y), BinaryOp(">", Y, Literal(0)))),
    NaryOp("or", (IsNull(X), BinaryOp("=", Y, Literal(2)))),
    NaryOp("and", (Literal(True), NULL)),
    NaryOp("or", (BinaryOp(">", X, Literal(100)), NULL)),
    InList(X, (Literal(1), Literal(3), Literal(7))),
    InList(X, (Literal(1), NULL)),
    InList(X, (Literal(2), Y), negated=True),
    InList(S, (Literal("ab"), Literal("zz"))),
    CaseWhen(
        (BinaryOp(">", X, Literal(2)), Literal("big")),
        Literal("small"),
    ),
    CaseWhen(
        (
            IsNull(X),
            Literal(0),
            BinaryOp("<", X, Y),
            NaryOp("+", (X, Y)),
        ),
        UnaryOp("-", X),
    ),
    FuncCall("year", (D,)),
    FuncCall("month", (D,)),
    FuncCall("abs", (X,)),
    FuncCall("upper", (S,)),
    FuncCall("length", (S,)),
    FuncCall("coalesce", (X, Y, Literal(-1))),
    FuncCall("concat", (S, Literal("!"))),
]


@pytest.mark.parametrize(
    "expr", EXPRESSIONS, ids=[repr(e)[:60] for e in EXPRESSIONS]
)
def test_matches_row_interpreter(expr):
    assert vector_values(expr) == row_values(expr)


@pytest.mark.parametrize("sel", [range(0), [0], [7, 0, 3], range(2, 6)])
def test_selection_vector_alignment(sel):
    expr = NaryOp("+", (X, Y, Literal(1)))
    assert vector_values(expr, sel) == row_values(expr, sel)


class TestDivisionParity:
    def test_unguarded_division_raises_in_both(self):
        expr = BinaryOp("/", X, Y)  # y contains 0
        with pytest.raises(ExecutionError):
            row_values(expr)
        with pytest.raises(ExecutionError):
            vector_values(expr)
        expr = BinaryOp("%", X, Y)
        with pytest.raises(ExecutionError):
            vector_values(expr)

    def test_case_guard_protects_both(self):
        # The THEN branch only ever sees rows where y <> 0, so neither
        # engine may raise: the compiled CASE must evaluate x / y on the
        # *shrunk* selection, not the full batch.
        expr = CaseWhen(
            (BinaryOp("<>", Y, Literal(0)), BinaryOp("/", X, Y)),
            NULL,
        )
        assert vector_values(expr) == row_values(expr)

    def test_and_guard_protects_both(self):
        expr = NaryOp(
            "and",
            (
                BinaryOp("<>", Y, Literal(0)),
                BinaryOp(">", BinaryOp("/", X, Y), Literal(0)),
            ),
        )
        assert vector_values(expr) == row_values(expr)


def test_conjuncts_split_and_round_trip():
    a = BinaryOp(">", X, Literal(0))
    b = IsNull(Y, negated=True)
    c = BinaryOp("<", X, Y)
    whole = NaryOp("and", (a, NaryOp("and", (b, c))))
    parts = conjuncts(whole)
    assert set(parts) >= {a, c}
    # Applying the parts as successive filters equals the whole predicate
    # being True.
    sel = range(NROWS)
    for part in parts:
        fn = compile_vector(part)
        vals = fn(lambda ref: COLUMNS[ref.name], sel)
        sel = [i for i, v in zip(sel, vals) if v is True]
    assert sel == [i for i, v in enumerate(row_values(whole)) if v is True]


# ----------------------------------------------------------------------
# Property: random comparison/arithmetic/logic trees with NULL-laden
# integer columns agree with the row interpreter.
# ----------------------------------------------------------------------
_LEAVES = st.sampled_from(
    [X, Y, Literal(0), Literal(2), Literal(-3), NULL]
)


def _trees(children):
    return st.one_of(
        st.tuples(children, children).map(
            lambda t: BinaryOp("-", t[0], t[1])
        ),
        st.tuples(
            st.sampled_from(["+", "*"]),
            st.lists(children, min_size=2, max_size=3),
        ).map(lambda t: NaryOp(t[0], tuple(t[1]))),
        st.tuples(
            st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
            children,
            children,
        ).map(lambda t: BinaryOp(t[0], t[1], t[2])),
        st.tuples(
            st.sampled_from(["and", "or"]),
            st.lists(children, min_size=2, max_size=3),
        ).map(lambda t: NaryOp(t[0], tuple(t[1]))),
        children.map(lambda e: UnaryOp("-", e)),
        children.map(IsNull),
    )


_EXPRS = st.recursive(_LEAVES, _trees, max_leaves=12)


@settings(max_examples=150, deadline=None)
@given(expr=_EXPRS)
def test_random_trees_match_row_interpreter(expr):
    try:
        expected = row_values(expr)
    except ExecutionError:
        # 'and'/'or' over non-boolean operands etc. — the vector engine
        # must reject the same expressions.
        with pytest.raises(ExecutionError):
            vector_values(expr)
        return
    assert vector_values(expr) == expected
