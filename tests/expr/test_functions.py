"""Scalar-function registry."""

import datetime

import pytest

from repro.errors import ExecutionError
from repro.expr.functions import function_names, lookup_function


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert lookup_function("YEAR") is lookup_function("year")
        assert lookup_function("nope") is None

    def test_all_names_listed(self):
        names = function_names()
        for expected in ("year", "month", "day", "mod", "coalesce", "round"):
            assert expected in names
        assert names == sorted(names)

    def test_arity_checks(self):
        assert lookup_function("year").check_arity(1)
        assert not lookup_function("year").check_arity(2)
        assert lookup_function("round").check_arity(1)
        assert lookup_function("round").check_arity(2)
        assert not lookup_function("round").check_arity(3)
        assert lookup_function("coalesce").check_arity(7)  # variadic
        assert not lookup_function("coalesce").check_arity(0)

    def test_null_propagation_flags(self):
        assert lookup_function("year").null_propagating
        assert not lookup_function("coalesce").null_propagating


class TestImplementations:
    DATE = datetime.date(1991, 8, 4)  # a Sunday

    def test_date_parts(self):
        assert lookup_function("year").impl(self.DATE) == 1991
        assert lookup_function("quarter").impl(self.DATE) == 3
        assert lookup_function("dayofweek").impl(self.DATE) == 1  # Sunday=1

    def test_dayofweek_full_week(self):
        values = [
            lookup_function("dayofweek").impl(self.DATE + datetime.timedelta(days=i))
            for i in range(7)
        ]
        assert values == [1, 2, 3, 4, 5, 6, 7]

    def test_mod(self):
        assert lookup_function("mod").impl(7, 3) == 1
        with pytest.raises(ExecutionError):
            lookup_function("mod").impl(7, 0)

    def test_string_functions(self):
        assert lookup_function("upper").impl("abc") == "ABC"
        assert lookup_function("lower").impl("ABC") == "abc"
        assert lookup_function("length").impl("abcd") == 4

    def test_rounding_family(self):
        assert lookup_function("round").impl(2.567, 1) == 2.6
        assert lookup_function("round").impl(2.5) == 2  # banker's rounding
        assert lookup_function("floor").impl(2.9) == 2
        assert lookup_function("ceil").impl(2.1) == 3

    def test_coalesce(self):
        impl = lookup_function("coalesce").impl
        assert impl(None, None, 3, 4) == 3
        assert impl(None, None) is None


class TestStringFunctions:
    def test_substr(self):
        impl = lookup_function("substr").impl
        assert impl("credit", 1, 4) == "cred"
        assert impl("credit", 3) == "edit"
        assert impl("credit", 0, 2) == "cr"  # clamps to start
        with pytest.raises(ExecutionError):
            impl("credit", 1, -1)

    def test_substring_alias(self):
        assert lookup_function("substring").impl("abc", 2) == "bc"

    def test_concat(self):
        assert lookup_function("concat").impl("a", "b", 3) == "ab3"

    def test_trim(self):
        assert lookup_function("trim").impl("  x  ") == "x"

    def test_end_to_end_in_query(self, tiny_db):
        result = tiny_db.execute(
            "select substr(city, 1, 3) as c3, trim(concat(state, '')) as st "
            "from Loc where lid = 1",
            use_summary_tables=False,
        )
        assert result.rows == [("San", "CA")]
