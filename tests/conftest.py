"""Shared fixtures: small, deterministic databases."""

from __future__ import annotations

import datetime

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.workloads import populate_credit_db, small_config


@pytest.fixture
def tiny_db() -> Database:
    """A hand-written six-row database where every expected value can be
    checked by eye (used by executor and matching unit tests)."""
    db = Database(credit_card_catalog())
    d = datetime.date
    db.load(
        "Loc",
        [
            (1, "San Jose", "CA", "USA"),
            (2, "Paris", "IdF", "France"),
            (3, "Austin", "TX", "USA"),
        ],
    )
    db.load("PGroup", [(1, "TV"), (2, "Radio")])
    db.load("Cust", [(1, "Alice", "CA"), (2, "Bob", "TX")])
    db.load("Acct", [(10, 1, "gold"), (20, 2, "silver")])
    rows = []
    for tid, (faid, flid, pgid, y, m, qty, price, disc) in enumerate(
        [
            (10, 1, 1, 1990, 1, 2, 110.0, 0.2),
            (10, 1, 1, 1990, 2, 1, 150.0, 0.3),
            (10, 2, 2, 1991, 3, 3, 30.0, 0.15),
            (20, 3, 1, 1991, 6, 1, 400.0, 0.15),
            (20, 3, 2, 1991, 7, 2, 50.0, 0.2),
            (20, 3, 1, 1992, 1, 1, 500.0, 0.3),
        ],
        start=1,
    ):
        rows.append((tid, pgid, flid, faid, d(y, m, 15), qty, price, disc))
    db.load("Trans", rows)
    return db


@pytest.fixture(scope="session")
def small_db() -> Database:
    """A generated ~2k-transaction database shared across the session
    (treat as read-only)."""
    db = Database(credit_card_catalog())
    populate_credit_db(db, small_config())
    return db


def fresh_small_db() -> Database:
    """A private copy of the generated database, for tests that mutate."""
    db = Database(credit_card_catalog())
    populate_credit_db(db, small_config())
    return db
