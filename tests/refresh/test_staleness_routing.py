"""Staleness-aware rewrite routing.

The acceptance bar for the deferred-maintenance subsystem: with
tolerance ANY a query rewrites over a stale deferred summary; with
tolerance 0 the same query skips it and answers from base tables — and
the decision cache never serves an entry cached under a different
tolerance or staleness state.
"""

import datetime

import pytest

from repro.refresh.policy import RefreshAge

D = datetime.date
QUERY = "select faid, count(*) as cnt from Trans group by faid"
SUMMARY_SQL = QUERY
NEW_ROW = (201, 1, 1, 10, D(1994, 2, 2), 3, 42.0, 0.0)


@pytest.fixture
def stale_db(tiny_db):
    """A database with one deferred summary that is stale: a row was
    ingested and staged, but the refresh has not been applied."""
    tiny_db.create_summary_table("S1", SUMMARY_SQL, refresh_mode="deferred")
    # Stage by hand (insert_rows would notify the background worker,
    # which could race the test's staleness observations).
    from repro.asts.maintenance import MaintenanceReport

    with tiny_db._maintenance_lock:
        tiny_db.table("Trans").rows.append(NEW_ROW)
        tiny_db._stage_deferred("Trans", [NEW_ROW], +1, MaintenanceReport())
    yield tiny_db
    tiny_db.close()


def used_summaries(result):
    if result is None:
        return []
    return [summary.name for summary in result.summary_tables]


class TestToleranceRouting:
    def test_any_rewrites_over_stale_summary(self, stale_db):
        result = stale_db.rewrite(QUERY, tolerance=RefreshAge.ANY)
        assert used_summaries(result) == ["S1"]

    def test_zero_skips_stale_summary(self, stale_db):
        result = stale_db.rewrite(QUERY, tolerance=RefreshAge.CURRENT)
        assert result is None
        assert stale_db.rewrite_stats()["stale_rejections"] >= 1

    def test_zero_answers_from_base_tables(self, stale_db):
        # The stale snapshot has not seen NEW_ROW; the fresh answer must.
        strict = stale_db.execute(QUERY, tolerance=RefreshAge.CURRENT)
        truth = stale_db.execute(QUERY, use_summary_tables=False)
        assert sorted(strict.rows) == sorted(truth.rows)

    def test_any_serves_the_stale_snapshot(self, stale_db):
        lagged = stale_db.execute(QUERY, tolerance=RefreshAge.ANY)
        truth = stale_db.execute(QUERY, use_summary_tables=False)
        assert sorted(lagged.rows) != sorted(truth.rows)

    def test_bounded_tolerance(self, stale_db):
        # one pending batch: admitted at lag<=1, rejected at lag 0
        assert used_summaries(stale_db.rewrite(QUERY, tolerance=RefreshAge(1))) == ["S1"]
        assert stale_db.rewrite(QUERY, tolerance=RefreshAge(0)) is None

    def test_session_tolerance_is_the_default(self, stale_db):
        assert stale_db.rewrite(QUERY) is None  # default REFRESH AGE 0
        stale_db.set_refresh_age(None)
        assert used_summaries(stale_db.rewrite(QUERY)) == ["S1"]
        stale_db.set_refresh_age(0)
        assert stale_db.rewrite(QUERY) is None

    def test_set_refresh_age_sql(self, stale_db):
        status = stale_db.run_sql("set refresh age any")
        assert "ANY" in status
        assert used_summaries(stale_db.rewrite(QUERY)) == ["S1"]
        stale_db.run_sql("set refresh age 0")
        assert stale_db.rewrite(QUERY) is None

    def test_fresh_summary_admitted_at_zero(self, stale_db):
        stale_db.drain_refresh()
        result = stale_db.rewrite(QUERY, tolerance=RefreshAge.CURRENT)
        assert used_summaries(result) == ["S1"]
        # and the served rows now match the base tables exactly
        served = stale_db.execute(QUERY, tolerance=RefreshAge.CURRENT)
        truth = stale_db.execute(QUERY, use_summary_tables=False)
        assert sorted(served.rows) == sorted(truth.rows)

    def test_explain_reports_stale_rejections(self, stale_db):
        text = stale_db.explain(QUERY)
        assert "no summary-table rewrite applies" in text
        assert "stale summaries rejected: 1" in text


class TestDecisionCacheCorrectness:
    """The cache must key on tolerance and validate against the
    admissible set, so a decision cached under one (tolerance,
    staleness) state is never replayed under another."""

    def delta(self, db, fn):
        before = db._rewrite_stats.snapshot()
        result = fn()
        return result, db._rewrite_stats.delta(before)

    def test_positive_entry_under_any_not_served_at_zero(self, stale_db):
        # Prime the cache under ANY (positive decision, uses S1).
        _, first = self.delta(
            stale_db, lambda: stale_db.rewrite(QUERY, tolerance=RefreshAge.ANY)
        )
        assert first["cache_misses"] == 1
        # Same fingerprint at tolerance 0: distinct key, so a miss —
        # never a replay of the ANY decision.
        result, second = self.delta(
            stale_db,
            lambda: stale_db.rewrite(QUERY, tolerance=RefreshAge.CURRENT),
        )
        assert result is None
        assert second["cache_hits"] == 0
        assert second["cache_misses"] == 1

    def test_negative_entry_under_zero_not_served_at_any(self, stale_db):
        assert stale_db.rewrite(QUERY, tolerance=RefreshAge.CURRENT) is None
        result, delta = self.delta(
            stale_db, lambda: stale_db.rewrite(QUERY, tolerance=RefreshAge.ANY)
        )
        assert used_summaries(result) == ["S1"]
        assert delta["cache_negative_hits"] == 0

    def test_replay_within_same_tolerance(self, stale_db):
        stale_db.rewrite(QUERY, tolerance=RefreshAge.ANY)
        result, delta = self.delta(
            stale_db, lambda: stale_db.rewrite(QUERY, tolerance=RefreshAge.ANY)
        )
        assert used_summaries(result) == ["S1"]
        assert delta["cache_hits"] == 1
        assert delta["matches_attempted"] == 0

    def test_fresh_entry_invalidated_when_summary_goes_stale(self, tiny_db):
        """A positive decision cached while fresh must not survive the
        summary going stale at the same strict tolerance."""
        from repro.asts.maintenance import MaintenanceReport

        tiny_db.create_summary_table("S1", SUMMARY_SQL, refresh_mode="deferred")
        result = tiny_db.rewrite(QUERY, tolerance=RefreshAge.CURRENT)
        assert used_summaries(result) == ["S1"]  # fresh: admitted, cached
        # Stage a delta WITHOUT an epoch bump: only the admissible set
        # changes. The cached entry must still be rejected.
        with tiny_db._maintenance_lock:
            tiny_db.table("Trans").rows.append(NEW_ROW)
            tiny_db._stage_deferred("Trans", [NEW_ROW], +1, MaintenanceReport())
        result, delta = self.delta(
            tiny_db, lambda: tiny_db.rewrite(QUERY, tolerance=RefreshAge.CURRENT)
        )
        assert result is None
        assert delta["cache_hits"] == 0
        assert delta["cache_invalidations"] == 1
        tiny_db.close()

    def test_stale_negative_entry_dropped_after_drain(self, stale_db):
        """A 'no rewrite' decision cached while stale must be revisited
        once the refresh catches up."""
        assert stale_db.rewrite(QUERY, tolerance=RefreshAge.CURRENT) is None
        stale_db.drain_refresh()
        result, delta = self.delta(
            stale_db,
            lambda: stale_db.rewrite(QUERY, tolerance=RefreshAge.CURRENT),
        )
        assert used_summaries(result) == ["S1"]
        assert delta["cache_negative_hits"] == 0

    def test_tolerances_cache_independently(self, stale_db):
        for tolerance in (RefreshAge.ANY, RefreshAge.CURRENT, RefreshAge(5)):
            stale_db.rewrite(QUERY, tolerance=tolerance)
        # each tolerance now replays its own entry
        for tolerance, expect in (
            (RefreshAge.ANY, ["S1"]),
            (RefreshAge.CURRENT, []),
            (RefreshAge(5), ["S1"]),
        ):
            result, delta = self.delta(
                stale_db, lambda: stale_db.rewrite(QUERY, tolerance=tolerance)
            )
            assert used_summaries(result) == expect
            assert delta["cache_misses"] == 0
