"""The background refresh scheduler: deferred ingest stages work, drain
applies it (incrementally where possible, recompute fallback otherwise),
and after a drain the deferred summaries are bit-identical to what
immediate maintenance would have produced."""

import datetime

import pytest

from repro.asts.maintenance import MaintenanceReport, apply_pending
from repro.engine.table import tables_equal
from repro.errors import CatalogError
from repro.refresh.log import DeltaBatch

D = datetime.date
COUNT_SUM = (
    "select faid, count(*) as cnt, sum(qty) as sqty "
    "from Trans group by faid"
)
NEW_ROWS = [
    (101, 1, 1, 10, D(1990, 5, 1), 4, 999.0, 0.0),
    (102, 1, 2, 10, D(1993, 6, 1), 2, 5.0, 0.1),
    (103, 2, 3, 20, D(1991, 7, 1), 1, 50.0, 0.2),
]


def recompute(db, sql):
    return db.execute(sql, use_summary_tables=False)


@pytest.fixture
def drained(tiny_db):
    """Always stop the worker thread, even when a test fails."""
    yield tiny_db
    tiny_db.close()


class TestDeferredIngest:
    def test_insert_stages_instead_of_maintaining(self, drained):
        summary = drained.create_summary_table(
            "S1", COUNT_SUM, refresh_mode="deferred"
        )
        report = drained.insert_rows("Trans", NEW_ROWS)
        assert report.deferred == ["S1"]
        assert not report.was_incremental("S1")
        assert "S1" not in report.recomputed
        # base table is updated synchronously
        assert len(drained.table("Trans")) == 9
        # the summary catches up only once the queue drains
        drained.drain_refresh()
        assert summary.refresh.pending_deltas == 0
        assert tables_equal(summary.table, recompute(drained, COUNT_SUM))

    def test_drain_applies_incrementally(self, drained):
        summary = drained.create_summary_table(
            "S1", COUNT_SUM, refresh_mode="deferred"
        )
        for row in NEW_ROWS:
            drained.insert_rows("Trans", [row])
        drained.drain_refresh()
        assert summary.refresh.pending_deltas == 0
        assert tables_equal(summary.table, recompute(drained, COUNT_SUM))
        scheduler = drained.refresh_scheduler
        assert scheduler.refreshes_applied >= 1
        assert scheduler.batches_applied == 3
        assert scheduler.fallback_recomputes == 0
        assert list(scheduler.errors) == []

    def test_mixed_modes_split_inline_vs_staged(self, drained):
        immediate = drained.create_summary_table("IM", COUNT_SUM)
        deferred = drained.create_summary_table(
            "DF",
            "select flid, count(*) as cnt from Trans group by flid",
            refresh_mode="deferred",
        )
        report = drained.insert_rows("Trans", NEW_ROWS)
        assert report.was_incremental("IM")
        assert report.deferred == ["DF"]
        assert tables_equal(immediate.table, recompute(drained, COUNT_SUM))
        drained.drain_refresh()
        assert tables_equal(
            deferred.table,
            recompute(
                drained, "select flid, count(*) as cnt from Trans group by flid"
            ),
        )

    def test_deferred_delete_applies_incrementally(self, drained):
        summary = drained.create_summary_table(
            "S1", COUNT_SUM, refresh_mode="deferred"
        )
        victim = drained.table("Trans").rows[0]
        report = drained.delete_rows("Trans", [victim])
        assert report.deferred == ["S1"]
        drained.drain_refresh()
        assert tables_equal(summary.table, recompute(drained, COUNT_SUM))
        assert drained.refresh_scheduler.fallback_recomputes == 0

    def test_unrelated_deferred_summary_not_staged(self, drained):
        drained.create_summary_table(
            "SP",
            "select pgid, count(*) as c from PGroup group by pgid",
            refresh_mode="deferred",
        )
        report = drained.insert_rows("Trans", NEW_ROWS)
        assert "SP" in report.unaffected
        assert drained.summary_tables["sp"].refresh.pending_deltas == 0
        assert len(drained.delta_log) == 0

    def test_pending_deltas_gauge_in_stats(self, drained):
        drained.create_summary_table("S1", COUNT_SUM, refresh_mode="deferred")
        drained.insert_rows("Trans", NEW_ROWS[:1])
        # gauge may already be drained by the worker; force a stale state
        # deterministically by reading right after staging a second batch
        drained.drain_refresh()
        assert drained.rewrite_stats()["pending_deltas"] == 0
        assert drained.rewrite_stats()["refreshes_applied"] >= 1


class TestFallbacks:
    def test_avg_falls_back_to_recompute(self, drained):
        sql = "select faid, avg(qty) as a from Trans group by faid"
        summary = drained.create_summary_table(
            "S1", sql, refresh_mode="deferred"
        )
        drained.insert_rows("Trans", NEW_ROWS)
        drained.drain_refresh()
        assert tables_equal(summary.table, recompute(drained, sql))
        scheduler = drained.refresh_scheduler
        assert scheduler.fallback_recomputes >= 1
        assert "AVG" in scheduler.last_fallbacks["S1"]

    def test_multi_table_pending_falls_back(self, drained):
        sql = (
            "select state, count(*) as c from Trans, Loc where flid = lid "
            "group by state"
        )
        summary = drained.create_summary_table(
            "S1", sql, refresh_mode="deferred"
        )
        # Two tables change before any refresh runs: the coalesced
        # pending set spans Trans and Loc, so incremental apply refuses.
        batches = [
            DeltaBatch(98, "loc", +1, ((7, "Lyon", "XX", "France"),)),
            DeltaBatch(
                99, "trans", +1, ((70, 1, 7, 10, D(1992, 3, 3), 1, 10.0, 0.0),)
            ),
        ]
        reason = apply_pending(drained, summary, batches)
        assert "more than one base table" in reason

    def test_multi_table_ingest_recovers_via_recompute(self, drained):
        sql = (
            "select state, count(*) as c from Trans, Loc where flid = lid "
            "group by state"
        )
        summary = drained.create_summary_table(
            "S1", sql, refresh_mode="deferred"
        )
        drained.insert_rows("Loc", [(7, "Lyon", "XX", "France")])
        drained.insert_rows(
            "Trans", [(70, 1, 7, 10, D(1992, 3, 3), 1, 10.0, 0.0)]
        )
        drained.drain_refresh()
        assert tables_equal(summary.table, recompute(drained, sql))

    def test_min_max_delete_falls_back(self, drained):
        sql = (
            "select faid, count(*) as cnt, max(price) as hi "
            "from Trans group by faid"
        )
        summary = drained.create_summary_table(
            "S1", sql, refresh_mode="deferred"
        )
        victim = drained.table("Trans").rows[0]
        drained.delete_rows("Trans", [victim])
        drained.drain_refresh()
        assert tables_equal(summary.table, recompute(drained, sql))
        assert drained.refresh_scheduler.fallback_recomputes >= 1


class TestApplyPendingUnit:
    def test_insert_then_delete_batches_commute(self, tiny_db):
        summary = tiny_db.create_summary_table(
            "S1", COUNT_SUM, refresh_mode="deferred"
        )
        row = NEW_ROWS[0]
        # Stage an insert and the delete of the same row: net no-op.
        tiny_db.table("Trans").rows.append(row)
        tiny_db.table("Trans").rows.remove(row)
        before = sorted(summary.table.rows)
        batches = [
            DeltaBatch(1, "trans", +1, (row,)),
            DeltaBatch(2, "trans", -1, (row,)),
        ]
        assert apply_pending(tiny_db, summary, batches) is None
        assert sorted(summary.table.rows) == before

    def test_empty_batch_list_is_noop(self, tiny_db):
        summary = tiny_db.create_summary_table(
            "S1", COUNT_SUM, refresh_mode="deferred"
        )
        assert apply_pending(tiny_db, summary, []) is None


class TestTargetedRefresh:
    def test_refresh_by_name_only_touches_named(self, drained):
        one = drained.create_summary_table(
            "S1", COUNT_SUM, refresh_mode="deferred"
        )
        two = drained.create_summary_table(
            "S2",
            "select flid, count(*) as cnt from Trans group by flid",
            refresh_mode="deferred",
        )
        drained.insert_rows("Trans", NEW_ROWS)
        drained.refresh_scheduler.drain()  # settle the background pass
        # force a stale state for both, bypassing the scheduler
        one.refresh.pending_deltas = 1
        two.refresh.pending_deltas = 1
        drained.refresh_summary_tables(["S1"])
        assert one.refresh.pending_deltas == 0
        assert two.refresh.pending_deltas == 1
        assert tables_equal(one.table, recompute(drained, COUNT_SUM))

    def test_refresh_all_keeps_noarg_behavior(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", COUNT_SUM)
        tiny_db.load("Trans", NEW_ROWS)  # load() skips maintenance
        assert not tables_equal(summary.table, recompute(tiny_db, COUNT_SUM))
        tiny_db.refresh_summary_tables()
        assert tables_equal(summary.table, recompute(tiny_db, COUNT_SUM))

    def test_refresh_unknown_name_raises(self, tiny_db):
        with pytest.raises(CatalogError):
            tiny_db.refresh_summary_tables(["nope"])

    def test_refresh_sql_statement(self, drained):
        drained.create_summary_table("S1", COUNT_SUM, refresh_mode="deferred")
        drained.summary_tables["s1"].refresh.pending_deltas = 2
        status = drained.run_sql("refresh summary table S1")
        assert "S1" in status
        assert drained.summary_tables["s1"].refresh.pending_deltas == 0


class TestLifecycle:
    def test_stop_finishes_queued_work(self, tiny_db):
        summary = tiny_db.create_summary_table(
            "S1", COUNT_SUM, refresh_mode="deferred"
        )
        tiny_db.insert_rows("Trans", NEW_ROWS)
        tiny_db.close()  # stop() drains the queue first
        assert summary.refresh.pending_deltas == 0
        assert tables_equal(summary.table, recompute(tiny_db, COUNT_SUM))

    def test_drain_without_worker_is_noop(self, tiny_db):
        tiny_db.drain_refresh()  # no deferred summaries, thread never ran

    def test_drop_deferred_summary_prunes_log(self, drained):
        drained.create_summary_table("S1", COUNT_SUM, refresh_mode="deferred")
        # Stage directly (no scheduler notify) so the batch stays pending.
        with drained._maintenance_lock:
            drained.table("Trans").rows.append(NEW_ROWS[0])
            drained._stage_deferred(
                "Trans", [NEW_ROWS[0]], +1, MaintenanceReport()
            )
        assert len(drained.delta_log) == 1
        drained.drop_summary_table("S1")
        assert len(drained.delta_log) == 0
