"""Unit tests for the delta log and the refresh policy value types."""

import pytest

from repro.refresh.log import DeltaBatch, DeltaLog
from repro.refresh.policy import RefreshAge, RefreshState


class TestDeltaLog:
    def test_append_assigns_monotonic_lsns(self):
        log = DeltaLog()
        first = log.append("Trans", [(1,)], +1)
        second = log.append("Loc", [(2,)], -1)
        assert (first.seq, second.seq) == (1, 2)
        assert log.lsn == 2
        assert len(log) == 2

    def test_rows_are_frozen_tuples(self):
        log = DeltaLog()
        batch = log.append("Trans", [[1, "a"], [2, "b"]], +1)
        assert batch.rows == ((1, "a"), (2, "b"))

    def test_pending_for_filters_by_table_and_lsn(self):
        log = DeltaLog()
        log.append("Trans", [(1,)], +1)  # lsn 1
        log.append("Loc", [(2,)], +1)  # lsn 2
        log.append("Trans", [(3,)], -1)  # lsn 3
        pending = log.pending_for({"trans"}, after=1)
        assert [batch.seq for batch in pending] == [3]
        both = log.pending_for({"Trans", "LOC"}, after=0)
        assert [batch.seq for batch in both] == [1, 2, 3]

    def test_prune_drops_consumed_batches(self):
        log = DeltaLog()
        for _ in range(3):
            log.append("Trans", [(1,)], +1)
        assert log.prune(2) == 2
        assert [batch.seq for batch in log.batches()] == [3]
        assert log.lsn == 3  # pruning never rewinds the clock

    def test_restore_roundtrip(self):
        log = DeltaLog()
        batches = [DeltaBatch(5, "trans", +1, ((1,),))]
        log.restore(7, batches)
        assert log.lsn == 7
        assert log.pending_for({"trans"}, after=0) == batches
        # restoring with a stale lsn keeps the newest batch's seq
        log.restore(1, batches)
        assert log.lsn == 5

    def test_bad_sign_rejected(self):
        with pytest.raises(ValueError):
            DeltaBatch(1, "t", 0, ())


class TestRefreshAge:
    def test_zero_admits_only_fresh(self):
        age = RefreshAge.CURRENT
        assert age.admits(0)
        assert not age.admits(1)

    def test_any_admits_everything(self):
        assert RefreshAge.ANY.admits(10**9)

    def test_bounded_lag(self):
        age = RefreshAge(3)
        assert age.admits(3)
        assert not age.admits(4)

    def test_keys_distinguish_tolerances(self):
        keys = {RefreshAge.ANY.key, RefreshAge.CURRENT.key, RefreshAge(3).key}
        assert len(keys) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RefreshAge(-1)

    def test_describe(self):
        assert RefreshAge.ANY.describe() == "ANY"
        assert RefreshAge(2).describe() == "2"


class TestRefreshState:
    def test_defaults_immediate_and_fresh(self):
        state = RefreshState()
        assert not state.is_deferred
        assert not state.is_stale
        assert state.describe() == "immediate"

    def test_deferred_describe(self):
        state = RefreshState(mode="deferred", pending_deltas=2, last_refresh_lsn=7)
        assert state.is_deferred and state.is_stale
        assert "2 pending" in state.describe()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            RefreshState(mode="lazy")


class TestHighWater:
    def test_append_advances_high_water_and_change_count(self):
        log = DeltaLog()
        log.append("Trans", [(1,)], +1)  # lsn 1
        log.append("Loc", [(2,)], +1)  # lsn 2
        log.append("Trans", [(3,)], -1)  # lsn 3
        assert log.high_water("trans") == 3
        assert log.high_water("Trans") == 3  # case-insensitive
        assert log.high_water("loc") == 2
        assert log.change_count("trans") == 2
        assert log.change_count("loc") == 1

    def test_unchanged_table_reads_zero(self):
        log = DeltaLog()
        assert log.high_water("never") == 0
        assert log.change_count("never") == 0

    def test_note_write_consumes_lsn_without_staging(self):
        log = DeltaLog()
        lsn = log.note_write("Trans")
        assert lsn == 1
        assert log.lsn == 1
        assert len(log) == 0  # no batch stored
        assert log.high_water("trans") == 1
        assert log.change_count("trans") == 1
        # batches appended later keep the shared clock monotone
        batch = log.append("Trans", [(1,)], +1)
        assert batch.seq == 2
        assert log.high_water("trans") == 2
        assert log.change_count("trans") == 2

    def test_bulk_accessors(self):
        log = DeltaLog()
        log.note_write("A")
        log.note_write("B")
        assert log.high_water_map(["A", "B", "C"]) == {"a": 1, "b": 2, "c": 0}
        assert log.change_counts(["A", "C"]) == {"a": 1, "c": 0}

    def test_restore_rebuilds_marks_from_batches(self):
        log = DeltaLog()
        batches = [
            DeltaBatch(3, "trans", +1, ((1,),)),
            DeltaBatch(5, "loc", +1, ((2,),)),
        ]
        log.restore(9, batches)
        assert log.high_water("trans") == 3
        assert log.high_water("loc") == 5
        assert log.change_count("trans") == 1
        # marks from pruned batches are gone — the documented-safe loss
        assert log.high_water("cust") == 0
