"""The interactive shell (driven through StringIO, no subprocess)."""

import io

import pytest

from repro.cli import Shell, demo_database
from repro.engine.database import Database


def run_shell(script: str, database: Database | None = None) -> str:
    out = io.StringIO()
    shell = Shell(database or Database(), out=out)
    shell.run(io.StringIO(script), interactive=False)
    return out.getvalue()


class TestShellBasics:
    def test_ddl_query_roundtrip(self):
        output = run_shell(
            "create table T (a integer not null, primary key (a));\n"
            "insert into T values (1), (2), (3);\n"
            "select count(*) as n from T;\n"
        )
        assert "table T created" in output
        assert "3 row(s) inserted" in output
        assert "(1 rows)" in output

    def test_multiline_statement(self):
        output = run_shell(
            "create table T (a integer not null);\n"
            "select a\n"
            "from T\n"
            "where a > 0;\n"
        )
        assert "(0 rows)" in output

    def test_describe(self):
        output = run_shell(
            "create table T (a integer not null);\n\\d\n"
        )
        assert "table T (0 rows): a" in output

    def test_describe_empty(self):
        assert "(no tables)" in run_shell("\\d\n")

    def test_error_reported_not_fatal(self):
        output = run_shell(
            "select broken from Nowhere;\nselect 1 as x from Nowhere;\n"
        )
        assert output.count("error:") == 2

    def test_quit(self):
        output = run_shell("\\q\nselect nope;\n")
        assert "error" not in output

    def test_timing_toggle(self):
        output = run_shell(
            "\\timing\n"
            "create table T (a integer not null);\n"
        )
        assert "timing is on" in output
        assert "time:" in output

    def test_unknown_command(self):
        assert "unknown command" in run_shell("\\frobnicate\n")


class TestShellWithSummaries:
    def test_noast_toggle_changes_plan(self):
        db = demo_database()
        out = run_shell(
            "explain select faid, count(*) as n from Trans group by faid;\n",
            db,
        )
        assert "AST1" in out
        out_disabled = run_shell(
            "\\noast\n"
            "select faid, count(*) as n from Trans group by faid;\n",
            db,
        )
        assert "rewriting disabled" in out_disabled

    def test_demo_database_has_ast1(self):
        db = demo_database()
        assert "ast1" in db.summary_tables
        output = run_shell("\\d\n", db)
        assert "summary table AST1" in output


class TestCliMain:
    def test_script_file(self, tmp_path):
        script = tmp_path / "script.sql"
        script.write_text(
            "create table T (a integer not null);\n"
            "insert into T values (5);\n"
            "select a from T;\n"
        )
        from repro.cli import main

        assert main([str(script)]) == 0


class TestRefreshCommand:
    SETUP = (
        "create table T (a integer not null, b integer not null);\n"
        "insert into T values (1, 10), (1, 20), (2, 30);\n"
        "create summary table S refresh deferred as "
        "select a, count(*) as cnt from T group by a;\n"
    )

    def test_status_lists_modes_and_counters(self):
        output = run_shell(self.SETUP + "\\refresh\n")
        assert "refresh deferred" in output  # CREATE status line
        assert "session refresh age: 0" in output
        assert "S: deferred" in output
        assert "scheduler:" in output

    def test_status_empty_database(self):
        assert "(no summary tables)" in run_shell("\\refresh\n")

    def test_drain_command(self):
        output = run_shell(
            self.SETUP
            + "insert into T values (3, 40);\n"
            + "\\refresh drain\n"
            + "\\refresh\n"
        )
        assert "refresh queue drained" in output
        assert "0 pending delta batch(es)" in output

    def test_named_refresh(self):
        output = run_shell(self.SETUP + "\\refresh S\n")
        assert "refreshed: S" in output

    def test_named_refresh_unknown(self):
        output = run_shell("\\refresh nope\n")
        assert "error:" in output

    def test_set_refresh_age_statement(self):
        output = run_shell(
            self.SETUP
            + "insert into T values (3, 40);\n"
            + "set refresh age any;\n"
            + "select a, cnt from S;\n"
        )
        assert "refresh age set to ANY" in output


class TestStatusCommand:
    def test_local_status_renders(self):
        output = run_shell(
            "create table T (a integer not null);\n"
            "select count(*) as n from T;\n"
            "\\status\n"
        )
        assert "status (local): role=local" in output
        assert "governor:" in output
        assert "refresh: 0 queued" in output
        assert "tracing:" in output
        assert "latency (ms):" in output
        assert "p99=" in output  # live histograms carry quantiles

    def test_status_usage(self):
        assert "usage: \\status" in run_shell("\\status extra\n")

    def test_status_reflects_trace_sample(self):
        from repro.obs import spans

        spans.uninstall()
        try:
            output = run_shell(
                "set trace sample 0.5;\n"
                "\\status\n"
                "set trace sample off;\n"
                "\\status\n"
            )
            assert "trace sample rate set to 0.5" in output
            assert "tracing: on (sample rate 0.5" in output
            assert "request tracing disabled" in output
            assert "tracing: off (SET TRACE SAMPLE <rate> enables it)" in output
        finally:
            spans.uninstall()
