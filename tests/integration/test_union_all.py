"""UNION ALL: parsing, binding, execution, and rewrites under unions."""

import pytest

from repro.engine.table import tables_equal
from repro.errors import SqlSyntaxError
from repro.qgm.boxes import BaseTableBox, UnionAllBox
from repro.sql import parse
from repro.sql.ast import UnionAll


class TestParsing:
    def test_two_branches(self):
        statement = parse("select tid from Trans union all select tid from Trans")
        assert isinstance(statement, UnionAll)
        assert len(statement.branches) == 2

    def test_chained(self):
        statement = parse(
            "select 1 as x from T union all select 2 as x from T "
            "union all select 3 as x from T"
        )
        assert len(statement.branches) == 3

    def test_union_requires_all(self):
        with pytest.raises(SqlSyntaxError):
            parse("select tid from Trans union select tid from Trans")

    def test_order_by_in_branch_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse(
                "select tid from Trans order by tid "
                "union all select tid from Trans"
            )


class TestExecution:
    def test_bag_semantics(self, tiny_db):
        result = tiny_db.execute(
            "select faid from Trans where faid = 10 "
            "union all select faid from Trans where faid = 10",
            use_summary_tables=False,
        )
        assert len(result) == 6  # 3 + 3, duplicates kept

    def test_mixed_expressions(self, tiny_db):
        result = tiny_db.execute(
            "select faid as v from Trans union all select qty as v from Trans",
            use_summary_tables=False,
        )
        assert len(result) == 12

    def test_union_in_derived_table(self, tiny_db):
        result = tiny_db.execute(
            "select v, count(*) as c from "
            "(select faid as v from Trans union all select faid as v from Trans) "
            "group by v",
            use_summary_tables=False,
        )
        assert sorted(result.rows) == [(10, 6), (20, 6)]

    def test_arity_mismatch_rejected(self, tiny_db):
        from repro.errors import BindError, ReproError

        with pytest.raises((BindError, ReproError)):
            tiny_db.execute(
                "select tid, faid from Trans union all select tid from Trans",
                use_summary_tables=False,
            )

    def test_reference_executor_agrees(self, tiny_db):
        from repro.engine import Executor
        from repro.engine.reference import ReferenceExecutor

        graph = tiny_db.bind(
            "select faid, qty from Trans where qty > 1 "
            "union all select faid, qty from Trans where qty = 1"
        )
        fast = Executor(tiny_db.tables).run(graph)
        slow = ReferenceExecutor(tiny_db.tables).run(graph)
        assert tables_equal(fast, slow)

    def test_unparse_round_trip(self, tiny_db):
        from repro.qgm.unparse import to_sql

        sql = (
            "select faid, qty from Trans where qty > 2 "
            "union all select faid, qty * 2 as qty from Trans"
        )
        graph = tiny_db.bind(sql)
        rendered = to_sql(graph)
        assert tables_equal(
            tiny_db.execute(sql, use_summary_tables=False),
            tiny_db.execute(rendered, use_summary_tables=False),
        )


class TestRewritesUnderUnions:
    def test_branch_subtree_rewritten(self, tiny_db):
        """The matcher cannot cross a union, but a branch's aggregation
        block still reroutes to the AST."""
        tiny_db.create_summary_table(
            "S", "select faid, count(*) as cnt from Trans group by faid"
        )
        query = (
            "select faid, count(*) as n from Trans group by faid "
            "union all "
            "select 0 as faid, count(*) as n from Trans"
        )
        plain = tiny_db.execute(query, use_summary_tables=False)
        result = tiny_db.rewrite(query)
        assert result is not None
        rewritten = tiny_db.execute_graph(result.graph)
        assert tables_equal(plain, rewritten)
        scans = [
            box.table_name
            for box in result.graph.boxes()
            if isinstance(box, BaseTableBox)
        ]
        assert "S" in scans

    def test_union_root_is_union_box(self, tiny_db):
        graph = tiny_db.bind(
            "select tid from Trans union all select tid from Trans"
        )
        assert isinstance(graph.root, UnionAllBox)

    def test_run_sql_and_explain_handle_unions(self, tiny_db):
        result = tiny_db.run_sql(
            "select tid from Trans union all select tid from Trans"
        )
        assert len(result) == 12


class TestUnionUnparseAliasing:
    def test_mismatched_branch_names_realised(self, tiny_db):
        from repro.engine.table import tables_equal
        from repro.qgm.unparse import to_sql

        sql = "select faid as a from Trans union all select flid as b from Trans"
        graph = tiny_db.bind(sql)
        rendered = to_sql(graph)
        assert tables_equal(
            tiny_db.execute(sql, use_summary_tables=False),
            tiny_db.execute(rendered, use_summary_tables=False),
        )
        # The union's column name comes from the first branch.
        assert graph.root.output_names == ["a"]
