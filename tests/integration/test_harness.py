"""The experiment harness itself: verification must be able to fail."""

import pytest

from repro.bench.harness import Experiment, ExperimentRun, bench_scale
from repro.errors import ReproError

from tests.conftest import fresh_small_db


def _db_with_ast():
    db = fresh_small_db()
    db.create_summary_table(
        "S", "select faid, count(*) as cnt from Trans group by faid"
    )
    return db


class TestExperiment:
    QUERY = "select faid, count(*) as n from Trans group by faid"

    def test_prepare_succeeds_and_measures(self):
        experiment = Experiment("demo", _db_with_ast(), self.QUERY).prepare()
        run = experiment.measure(repeat=1)
        assert isinstance(run, ExperimentRun)
        assert run.speedup > 0
        assert "demo" in run.report_row()

    def test_prepare_rejects_missing_rewrite(self):
        db = fresh_small_db()  # no summary tables at all
        with pytest.raises(ReproError, match="expected a rewrite"):
            Experiment("demo", db, self.QUERY).prepare()

    def test_prepare_rejects_wrong_pattern(self):
        experiment = Experiment(
            "demo", _db_with_ast(), self.QUERY, expected_pattern="5.2"
        )
        with pytest.raises(ReproError, match="expected pattern"):
            experiment.prepare()

    def test_run_rewritten_requires_prepare(self):
        experiment = Experiment("demo", _db_with_ast(), self.QUERY)
        with pytest.raises(ReproError, match="prepare"):
            experiment.run_rewritten()

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert bench_scale() == 0.25
        monkeypatch.delenv("REPRO_SCALE")
        assert bench_scale() == 1.0
