"""Every paper figure, end to end: the rewrite fires (with the right
pattern where the paper names one), results are identical, and the
negatives stay negative."""

import pytest

from repro.bench import FIGURES, NEGATIVE_FIGURES, make_database, make_experiment
from repro.workloads import small_config


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_figure_rewrites_and_is_equivalent(figure):
    experiment = make_experiment(figure, small_config())
    # prepare() already asserted the pattern and result equivalence.
    assert experiment.rewritten_graph is not None
    assert experiment.explanation


@pytest.mark.parametrize("figure", sorted(NEGATIVE_FIGURES))
def test_negative_figures_do_not_match(figure):
    name, ast_sql, query = NEGATIVE_FIGURES[figure]
    db = make_database(small_config())
    db.create_summary_table(name, ast_sql)
    assert db.rewrite(query) is None


def test_fig02_rewrite_uses_ast_scan_only():
    from repro.qgm.boxes import BaseTableBox

    experiment = make_experiment("fig02_q1", small_config())
    scans = {
        box.table_name
        for box in experiment.rewritten_graph.boxes()
        if isinstance(box, BaseTableBox)
    }
    assert "AST1" in scans
    assert "Trans" not in scans  # the fact table is no longer read
    assert "Loc" in scans  # the rejoin dimension still is


def test_fig05_rewrite_matches_paper_newq2():
    """NewQ2's compensation: rejoin PGroup, derive amt from value."""
    experiment = make_experiment("fig05_q2", small_config())
    sql = experiment.explanation
    from repro.qgm.unparse import to_sql

    rendered = to_sql(experiment.rewritten_graph)
    assert "AST2" in rendered
    assert "PGroup" in rendered
    assert "value" in rendered and "disc" in rendered


def test_fig02_speedup_positive():
    experiment = make_experiment("fig02_q1", small_config())
    run = experiment.measure(repeat=2)
    assert run.speedup > 1.0
    assert run.original_rows == run.rewritten_rows
