"""Sanity checks over the example scripts.

Full example runs take seconds each (they generate benchmark-scale
data), so the suite only verifies that every example compiles and
exposes a ``main``; the paper tour — the cheapest and most important —
runs for real.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].joinpath("examples").glob("*.py")
)


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "analyst_dashboard",
        "nested_query_matching",
        "summary_table_advisor",
        "incremental_maintenance",
        "web_reporting",
        "paper_tour",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_loads_and_has_main(path):
    module = _load(path)
    assert callable(getattr(module, "main", None)), path.stem


def test_paper_tour_runs(capsys):
    module = _load(next(p for p in EXAMPLES if p.stem == "paper_tour"))
    module.main()
    output = capsys.readouterr().out
    assert "tour complete: 11 rewrites verified, 2 refusals confirmed" in output
