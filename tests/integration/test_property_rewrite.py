"""Property-based end-to-end check: for randomly composed queries and
ASTs from a structured family, whenever the matcher claims a rewrite, the
rewritten plan must return exactly the original rows.

This is the library's strongest safety net: the generator covers
predicates, grouping expressions, supergroups and aggregate mixes far
beyond the paper's eleven worked examples.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.engine.table import tables_equal
from repro.workloads import populate_credit_db, small_config

GROUP_EXPRS = [
    ("faid", "faid"),
    ("flid", "flid"),
    ("year", "year(date)"),
    ("month", "month(date)"),
    ("qty", "qty"),
]

AGGREGATES = [
    "count(*) as cnt",
    "sum(qty) as sqty",
    "min(price) as lo",
    "max(price) as hi",
    "count(disc) as dcnt",
    "avg(qty) as aq",
    "sum(qty * price) as revenue",
]

PREDICATES = [
    "year(date) > 1990",
    "month(date) >= 6",
    "faid <= 20",
    "qty > 2",
    "flid = 1",
    "year(date) > 2100",  # eliminates every row: empty-group semantics
]


def _build_db() -> Database:
    db = Database(credit_card_catalog())
    populate_credit_db(db, small_config())
    return db


_DB = _build_db()  # shared read-only base data
_SUMMARY_CACHE: dict[str, Database] = {}


def _db_with_ast(ast_sql: str) -> Database:
    db = _SUMMARY_CACHE.get(ast_sql)
    if db is None:
        db = _build_db()
        db.create_summary_table("PropAst", ast_sql)
        _SUMMARY_CACHE[ast_sql] = db
        if len(_SUMMARY_CACHE) > 48:
            _SUMMARY_CACHE.pop(next(iter(_SUMMARY_CACHE)))
    return db


def _grouped_sql(groups, aggregates, predicate, supergroup):
    select_parts = [f"{expr} as {name}" for name, expr in groups]
    select_parts.extend(aggregates)
    sql = f"select {', '.join(select_parts)} from Trans"
    if predicate:
        sql += f" where {predicate}"
    if groups:
        keys = [expr for _, expr in groups]
        if supergroup == "rollup":
            sql += f" group by rollup({', '.join(keys)})"
        elif supergroup == "cube" and len(keys) <= 2:
            sql += f" group by cube({', '.join(keys)})"
        else:
            sql += f" group by {', '.join(keys)}"
    return sql


@st.composite
def scenario(draw):
    ast_groups = draw(
        st.lists(st.sampled_from(GROUP_EXPRS), min_size=1, max_size=3, unique=True)
    )
    ast_aggs = draw(
        st.lists(st.sampled_from(AGGREGATES), min_size=1, max_size=3, unique=True)
    )
    if not any(a.startswith("count(*)") for a in ast_aggs):
        ast_aggs.append("count(*) as cnt")
    ast_super = draw(st.sampled_from(["plain", "plain", "rollup", "cube"]))
    ast_sql = _grouped_sql(ast_groups, ast_aggs, None, ast_super)

    query_groups = draw(
        st.lists(st.sampled_from(ast_groups), min_size=0, max_size=len(ast_groups), unique=True)
    )
    query_aggs = draw(
        st.lists(st.sampled_from(AGGREGATES), min_size=1, max_size=3, unique=True)
    )
    predicate = draw(st.sampled_from([None] + PREDICATES))
    query_super = draw(st.sampled_from(["plain", "plain", "rollup"]))
    query_sql = _grouped_sql(query_groups, query_aggs, predicate, query_super)
    return ast_sql, query_sql


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_rewrite_soundness(case):
    """Whatever the matcher decides, accepted rewrites are always exact."""
    ast_sql, query_sql = case
    db = _db_with_ast(ast_sql)
    result = db.rewrite(query_sql)
    if result is None:
        return  # refusing is always sound
    original = db.execute(query_sql, use_summary_tables=False)
    rewritten = db.execute_graph(result.graph)
    assert tables_equal(original, rewritten), (
        f"AST: {ast_sql}\nQuery: {query_sql}\nRewritten: {result.sql}"
    )


@settings(max_examples=30, deadline=None)
@given(scenario())
def test_rewrite_completeness_for_identical_grouping(case):
    """When the query is the AST's own defining query, a match must be
    found (reflexivity of the match relation)."""
    ast_sql, _ = case
    db = _db_with_ast(ast_sql)
    result = db.rewrite(ast_sql)
    assert result is not None
    original = db.execute(ast_sql, use_summary_tables=False)
    rewritten = db.execute_graph(result.graph)
    assert tables_equal(original, rewritten)


# ---------------------------------------------------------------------------
# Join-shape scenarios: rejoins (query joins more) and extra children
# (AST joins more, lossless via RI).
# ---------------------------------------------------------------------------
JOIN_GROUPS = [
    ("faid", "faid"),
    ("flid", "flid"),
    ("state", "state"),      # only available via the Loc rejoin
    ("country", "country"),  # likewise
    ("year", "year(date)"),
]


def _join_sql(groups, aggregates, predicate, join_loc):
    select_parts = [f"{expr} as {name}" for name, expr in groups]
    select_parts.extend(aggregates)
    tables = "Trans, Loc" if join_loc else "Trans"
    conjuncts = []
    if join_loc:
        conjuncts.append("flid = lid")
    if predicate:
        conjuncts.append(predicate)
    where = f" where {' and '.join(conjuncts)}" if conjuncts else ""
    sql = f"select {', '.join(select_parts)} from {tables}{where}"
    if groups:
        sql += f" group by {', '.join(expr for _, expr in groups)}"
    return sql


@st.composite
def join_scenario(draw):
    ast_join = draw(st.booleans())
    available = JOIN_GROUPS if ast_join else [
        g for g in JOIN_GROUPS if g[0] not in ("state", "country")
    ]
    ast_groups = draw(
        st.lists(st.sampled_from(available), min_size=1, max_size=3, unique=True)
    )
    ast_sql = _join_sql(
        ast_groups, ["count(*) as cnt", "sum(qty) as sq"], None, ast_join
    )

    query_join = draw(st.booleans())
    query_groups = draw(
        st.lists(
            st.sampled_from(ast_groups + ([("state", "state")] if query_join else [])),
            min_size=0,
            max_size=3,
            unique=True,
        )
    )
    if not query_join:
        query_groups = [g for g in query_groups if g[0] not in ("state", "country")]
    aggregates = draw(
        st.lists(
            st.sampled_from(["count(*) as cnt", "sum(qty) as sq"]),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    predicate = draw(
        st.sampled_from([None, "year(date) > 1990", "country = 'USA'" if query_join else None])
    )
    query_sql = _join_sql(query_groups, aggregates, predicate, query_join)
    return ast_sql, query_sql


@settings(max_examples=60, deadline=None)
@given(join_scenario())
def test_rewrite_soundness_with_joins(case):
    """Rejoin and extra-child paths: accepted rewrites stay exact."""
    ast_sql, query_sql = case
    db = _db_with_ast(ast_sql)
    result = db.rewrite(query_sql)
    if result is None:
        return
    original = db.execute(query_sql, use_summary_tables=False)
    rewritten = db.execute_graph(result.graph)
    assert tables_equal(original, rewritten), (
        f"AST: {ast_sql}\nQuery: {query_sql}\nRewritten: {result.sql}"
    )
