"""Golden structural signatures for every figure's compensation.

Result equivalence alone cannot distinguish "the paper's compensation"
from "any correct plan" — these tests pin the *shape*: which boxes the
chain contains, which children are rejoined, whether slicing predicates
appear, and which aggregate rewrites are used. A refactor that changes a
compensation silently will trip one of these.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import FIGURES, make_database
from repro.expr.nodes import AggCall, IsNull
from repro.matching.framework import MAIN
from repro.matching.navigator import match_graphs, root_matches
from repro.qgm.boxes import GroupByBox, SelectBox
from repro.workloads import small_config


def signature(figure: str) -> dict:
    ast_name, ast_sql, query, _ = FIGURES[figure]
    db = make_database(small_config())
    db.create_summary_table(ast_name, ast_sql)
    graph = db.bind(query)
    summary = db.summary_tables[ast_name.lower()]
    ctx = match_graphs(graph, summary.graph)
    match = root_matches(graph, summary.graph, ctx)[0]

    chain_kinds = [type(box).__name__ for box in match.chain]
    rejoins = sorted(
        q.name
        for box in match.chain
        for q in box.quantifiers()
        if q.name != MAIN
    )
    predicates = [
        p
        for box in match.chain
        if isinstance(box, SelectBox)
        for p in box.predicates
    ]
    slicing = sum(1 for p in predicates if isinstance(p, IsNull))
    regrouped_aggs = sorted(
        repr(qcl.expr)
        for box in match.chain
        if isinstance(box, GroupByBox)
        for qcl in box.outputs
        if isinstance(qcl.expr, AggCall)
    )
    return {
        "pattern": match.pattern,
        "chain": chain_kinds,
        "rejoins": rejoins,
        "non_slicing_predicates": len(predicates) - slicing,
        "slicing_predicates": slicing,
        "regrouped_aggregates": regrouped_aggs,
    }


EXPECTED = {
    "fig02_q1": {
        "pattern": "4.2.4",
        "chain": ["SelectBox", "GroupByBox", "SelectBox"],
        "rejoins": ["Loc"],
        "non_slicing_predicates": 3,  # flid=lid, country='USA', HAVING
        "slicing_predicates": 0,
        "regrouped_aggregates": ["SUM(Col(_in.cnt))"],
    },
    "fig05_q2": {
        "pattern": "4.1.1",
        "chain": ["SelectBox"],
        "rejoins": ["PGroup"],
        "non_slicing_predicates": 3,  # pgid=fpgid, price>100, pgname='TV'
        "slicing_predicates": 0,
        "regrouped_aggregates": [],
    },
    "fig06_q4": {
        "pattern": "4.2.4",
        "chain": ["SelectBox", "GroupByBox", "SelectBox"],
        "rejoins": [],
        "non_slicing_predicates": 0,
        "slicing_predicates": 0,
        "regrouped_aggregates": ["SUM(Col(_in.value))"],
    },
    "fig07_q6": {
        "pattern": "4.2.4",
        "chain": ["SelectBox", "GroupByBox", "SelectBox"],
        "rejoins": [],
        "non_slicing_predicates": 1,  # month >= 6 pulled up
        "slicing_predicates": 0,
        "regrouped_aggregates": ["SUM(Col(_in.value))"],
    },
    "fig08_q7": {
        "pattern": "4.2.3",
        "chain": ["SelectBox"],  # the 1:N rule: no regrouping
        "rejoins": ["Loc"],
        "non_slicing_predicates": 2,  # flid=lid, country='USA'
        "slicing_predicates": 0,
        "regrouped_aggregates": [],
    },
    "fig10_q8": {
        "pattern": "4.2.4",
        "chain": [
            "SelectBox", "GroupByBox", "SelectBox",  # months -> years
            "SelectBox", "GroupByBox", "SelectBox",  # the histogram regroup
        ],
        "rejoins": [],
        "non_slicing_predicates": 0,
        "slicing_predicates": 0,
        "regrouped_aggregates": [
            "COUNT(*)",  # the copied histogram count
            "SUM(Col(_in.tcnt))",  # yearly counts from tcnt*mcnt
        ],
    },
    "fig11_q10": {
        "pattern": "4.2.4",
        "chain": ["SelectBox", "GroupByBox", "SelectBox"],
        "rejoins": ["Loc"],
        "non_slicing_predicates": 3,  # flid=lid, country, HAVING
        "slicing_predicates": 0,
        # Q10's count(*) has no alias, so its column is generated (agg1).
        "regrouped_aggregates": ["SUM(Col(_in.agg1))"],
    },
    "fig13_q11_1": {
        "pattern": "4.2.3",
        "chain": ["SelectBox"],
        "rejoins": [],
        "non_slicing_predicates": 1,  # year > 1990
        "slicing_predicates": 4,  # one per AST grouping column
        "regrouped_aggregates": [],
    },
    "fig13_q11_2": {
        "pattern": "4.2.4",
        "chain": ["SelectBox", "GroupByBox", "SelectBox"],
        "rejoins": [],
        "non_slicing_predicates": 1,  # month >= 6 pulled up
        "slicing_predicates": 4,
        "regrouped_aggregates": ["SUM(Col(_in.cnt))"],
    },
    "fig14_q12_1": {
        "pattern": "4.2.3",
        "chain": ["SelectBox"],
        "rejoins": [],
        "non_slicing_predicates": 2,  # year > 1990 + the OR of slices
        "slicing_predicates": 0,  # the disjunction is not a bare IsNull
        "regrouped_aggregates": [],
    },
    "fig14_q12_2": {
        "pattern": "4.2.4",
        "chain": ["SelectBox", "GroupByBox", "SelectBox"],
        "rejoins": [],
        "non_slicing_predicates": 1,  # year > 1990
        "slicing_predicates": 4,  # slice the (flid, year) cuboid
        "regrouped_aggregates": ["SUM(Col(_in.cnt))"],
    },
}


@pytest.mark.parametrize("figure", sorted(EXPECTED))
def test_compensation_shape(figure):
    assert signature(figure) == EXPECTED[figure]
