"""Multi-AST routing: Section 7 iteration + smallest-view preference."""

from repro.qgm.boxes import BaseTableBox


def scans(graph):
    return sorted(
        box.table_name for box in graph.boxes() if isinstance(box, BaseTableBox)
    )


class TestSmallestViewPreference:
    def test_query_routed_to_smallest_covering_ast(self, tiny_db):
        tiny_db.create_summary_table(
            "Fine",
            "select faid, flid, year(date) as y, count(*) as cnt "
            "from Trans group by faid, flid, year(date)",
        )
        tiny_db.create_summary_table(
            "Coarse", "select faid, count(*) as cnt from Trans group by faid"
        )
        result = tiny_db.rewrite(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert result is not None
        assert scans(result.graph) == ["Coarse"]

    def test_fine_grained_query_needs_fine_view(self, tiny_db):
        tiny_db.create_summary_table(
            "Fine",
            "select faid, flid, count(*) as cnt from Trans group by faid, flid",
        )
        tiny_db.create_summary_table(
            "Coarse", "select faid, count(*) as cnt from Trans group by faid"
        )
        result = tiny_db.rewrite(
            "select faid, flid, count(*) as n from Trans group by faid, flid"
        )
        assert scans(result.graph) == ["Fine"]


class TestIterativeRerouting:
    def test_each_subtree_gets_its_own_ast(self, tiny_db):
        tiny_db.create_summary_table(
            "TransSum", "select faid, count(*) as cnt from Trans group by faid"
        )
        tiny_db.create_summary_table(
            "LocSum",
            "select country, count(*) as cnt from Loc group by country",
        )
        query = (
            "select t.faid, t.n, l.m from "
            "(select faid, count(*) as n from Trans group by faid) as t, "
            "(select count(*) as m from Loc) as l"
        )
        result = tiny_db.rewrite(query)
        assert result is not None
        used = {entry.summary.name for entry in result.applied}
        assert used == {"TransSum", "LocSum"}
        names = scans(result.graph)
        assert "Trans" not in names and "Loc" not in names

    def test_applied_order_recorded(self, tiny_db):
        tiny_db.create_summary_table(
            "S1", "select faid, count(*) as cnt from Trans group by faid"
        )
        result = tiny_db.rewrite(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert len(result.applied) == 1
        assert result.summary_tables[0].name == "S1"
        assert "S1" in result.applied[0].describe()
