"""Cost-based accept/reject (related problem (b))."""

from repro.rewrite.planner import CostEstimate, CostPlanner
from repro.rewrite.rewriter import rewrite_query


AST = "select faid, flid, count(*) as cnt from Trans group by faid, flid"
QUERY = "select faid, count(*) as n from Trans group by faid"


class TestCostEstimate:
    def test_speedup(self):
        assert CostEstimate(100, 10).speedup == 10.0
        assert CostEstimate(100, 0).speedup == float("inf")


class TestPlanner:
    def test_accepts_profitable_rewrite(self, tiny_db):
        tiny_db.create_summary_table("S1", AST)
        planner = CostPlanner(tiny_db, min_speedup=1.0)
        graph = tiny_db.bind(QUERY)
        result = rewrite_query(
            graph, tiny_db.enabled_summary_tables(), accept=planner.accept
        )
        assert result is not None
        assert planner.decisions and planner.decisions[0][2] is True

    def test_rejects_when_threshold_too_high(self, tiny_db):
        tiny_db.create_summary_table("S1", AST)
        planner = CostPlanner(tiny_db, min_speedup=1e9)
        graph = tiny_db.bind(QUERY)
        result = rewrite_query(
            graph, tiny_db.enabled_summary_tables(), accept=planner.accept
        )
        assert result is None
        assert planner.decisions[0][2] is False

    def test_estimate_counts_rejoin_rows(self, tiny_db):
        tiny_db.create_summary_table(
            "S1",
            "select faid, flid, year(date) as year, count(*) as cnt "
            "from Trans group by faid, flid, year(date)",
        )
        planner = CostPlanner(tiny_db)
        graph = tiny_db.bind(
            "select faid, state, count(*) as n from Trans, Loc "
            "where flid = lid group by faid, state"
        )
        result = rewrite_query(
            graph, tiny_db.enabled_summary_tables(), accept=planner.accept
        )
        assert result is not None
        _, estimate, _ = planner.decisions[0]
        # replaced side includes Trans (6) + Loc (3); rewritten side
        # includes the AST rows + the rejoined Loc rows.
        assert estimate.replaced_rows == 9
        summary = tiny_db.summary_tables["s1"]
        assert estimate.rewritten_rows == summary.row_count + 3
