"""The rewrite decision cache: hits must be invisible (bit-identical
rewrites, identical results) and invalidation must be airtight."""

import pytest

from repro.bench.figures import FIGURES, NEGATIVE_FIGURES
from repro.engine.table import tables_equal
from repro.rewrite.cache import RewriteCache, RewriteStats

AST1 = FIGURES["fig02_q1"][1]
Q1 = FIGURES["fig02_q1"][2]


def delta(db, action):
    """Run ``action`` and return the change in the db's counters."""
    before = db.rewrite_stats()
    result = action()
    after = db.rewrite_stats()
    return result, {k: after[k] - before[k] for k in after}


class TestCachedEqualsCold:
    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_replayed_sql_identical(self, tiny_db, figure):
        ast_name, ast_sql, query, _ = FIGURES[figure]
        tiny_db.create_summary_table(ast_name, ast_sql)
        cold, cold_counts = delta(tiny_db, lambda: tiny_db.rewrite(query))
        warm, warm_counts = delta(tiny_db, lambda: tiny_db.rewrite(query))
        assert cold is not None and warm is not None
        assert cold_counts["cache_misses"] == 1
        assert warm_counts["cache_hits"] == 1
        assert warm_counts["cache_misses"] == 0
        assert warm.sql == cold.sql  # bit-identical rewritten SQL

    @pytest.mark.parametrize("figure", ["fig02_q1", "fig06_q4", "fig10_q8"])
    def test_replayed_results_identical(self, tiny_db, figure):
        ast_name, ast_sql, query, _ = FIGURES[figure]
        tiny_db.create_summary_table(ast_name, ast_sql)
        cold = tiny_db.execute(query)
        assert tiny_db.rewrite_stats()["cache_misses"] >= 1
        warm = tiny_db.execute(query)
        assert tiny_db.rewrite_stats()["cache_hits"] >= 1
        assert tables_equal(cold, warm)
        # and both agree with the no-summary-tables answer
        plain = tiny_db.execute(query, use_summary_tables=False)
        assert tables_equal(cold, plain)

    @pytest.mark.parametrize("figure", sorted(NEGATIVE_FIGURES))
    def test_negative_decisions_cached(self, tiny_db, figure):
        ast_name, ast_sql, query = NEGATIVE_FIGURES[figure]
        tiny_db.create_summary_table(ast_name, ast_sql)
        cold, cold_counts = delta(tiny_db, lambda: tiny_db.rewrite(query))
        warm, warm_counts = delta(tiny_db, lambda: tiny_db.rewrite(query))
        assert cold is None and warm is None
        assert cold_counts["cache_misses"] == 1
        assert warm_counts["cache_negative_hits"] == 1


class TestInvalidation:
    def prime(self, db):
        db.create_summary_table("AST1", AST1)
        assert db.rewrite(Q1) is not None
        db.reset_rewrite_stats()

    def test_create_invalidates(self, tiny_db):
        self.prime(tiny_db)
        tiny_db.create_summary_table(
            "OTHER", "select lid, city from Loc where lid > 0"
        )
        result, counts = delta(tiny_db, lambda: tiny_db.rewrite(Q1))
        assert result is not None
        assert counts["cache_hits"] == 0  # stale entry not replayed
        assert counts["cache_invalidations"] == 1
        assert counts["cache_misses"] == 1

    def test_drop_invalidates(self, tiny_db):
        self.prime(tiny_db)
        tiny_db.drop_summary_table("AST1")
        result, counts = delta(tiny_db, lambda: tiny_db.rewrite(Q1))
        assert result is None  # must NOT replay the dropped summary
        assert counts["cache_hits"] == 0

    def test_refresh_invalidates(self, tiny_db):
        self.prime(tiny_db)
        before = tiny_db.rewrite(Q1)
        tiny_db.refresh_summary_tables()
        result, counts = delta(tiny_db, lambda: tiny_db.rewrite(Q1))
        assert result is not None
        assert result.sql == before.sql  # same decision, recomputed
        assert counts["cache_misses"] == 1

    def test_disable_enable_roundtrip(self, tiny_db):
        self.prime(tiny_db)
        tiny_db.set_summary_table_enabled("AST1", False)
        assert tiny_db.rewrite(Q1) is None
        tiny_db.set_summary_table_enabled("AST1", True)
        restored = tiny_db.rewrite(Q1)
        assert restored is not None

    def test_direct_attribute_toggle_detected(self, tiny_db):
        """Setting ``summary.enabled`` without telling the Database must
        still invalidate: entries record the enabled-name set."""
        self.prime(tiny_db)
        tiny_db.summary_tables["ast1"].enabled = False
        result, counts = delta(tiny_db, lambda: tiny_db.rewrite(Q1))
        assert result is None
        assert counts["cache_hits"] == 0
        tiny_db.summary_tables["ast1"].enabled = True
        assert tiny_db.rewrite(Q1) is not None

    def test_unknown_summary_missing_raises(self, tiny_db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            tiny_db.set_summary_table_enabled("nope", False)


class TestFastPathControls:
    def test_cache_disabled_never_hits(self, tiny_db):
        tiny_db.create_summary_table("AST1", AST1)
        tiny_db.configure_fast_path(cache=False)
        first = tiny_db.rewrite(Q1)
        second = tiny_db.rewrite(Q1)
        assert first.sql == second.sql
        stats = tiny_db.rewrite_stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_stores"] == 0

    def test_index_disabled_still_correct(self, tiny_db):
        tiny_db.create_summary_table("AST1", AST1)
        tiny_db.configure_fast_path(index=False, cache=False)
        legacy = tiny_db.rewrite(Q1)
        tiny_db.configure_fast_path(index=True, cache=True)
        fast = tiny_db.rewrite(Q1)
        assert legacy.sql == fast.sql

    def test_zero_capacity_cache(self):
        from repro.catalog import credit_card_catalog
        from repro.engine import Database

        db = Database(credit_card_catalog(), rewrite_cache_size=0)
        db.load("Trans", [])
        db.load("Loc", [])
        assert db.rewrite("select tid from Trans") is None
        assert db.rewrite_stats()["cache_stores"] == 0


class TestRewriteCacheUnit:
    def test_lru_eviction(self):
        cache = RewriteCache(maxsize=2)
        stats = RewriteStats()
        from repro.rewrite.cache import CacheEntry

        enabled = frozenset()
        for name in ("a", "b", "c"):
            cache.store(name, CacheEntry(0, enabled, None))
        assert cache.lookup("a", 0, enabled, stats) is None  # evicted
        assert cache.lookup("b", 0, enabled, stats) is not None
        # touching "b" makes "c" the eviction victim next
        cache.store("d", CacheEntry(0, enabled, None))
        assert cache.lookup("c", 0, enabled, stats) is None
        assert cache.lookup("b", 0, enabled, stats) is not None

    def test_stale_epoch_evicted_and_counted(self):
        from repro.rewrite.cache import CacheEntry

        cache = RewriteCache(maxsize=4)
        stats = RewriteStats()
        cache.store("k", CacheEntry(1, frozenset(), None))
        assert cache.lookup("k", 2, frozenset(), stats) is None
        assert stats.cache_invalidations == 1
        assert len(cache) == 0
