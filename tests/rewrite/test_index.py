"""AST candidate index: pruning must be aggressive but never lossy."""

import pytest

from repro.bench.figures import FIGURES
from repro.rewrite.index import (
    SummaryIndex,
    SummarySignature,
    _fk_parent_tables,
    graph_signature,
    plausible,
    prune_candidates,
)


class TestGraphSignature:
    def test_join_query_signature(self, tiny_db):
        graph = tiny_db.bind(
            "select faid, state, count(*) as cnt from Trans, Loc "
            "where flid = lid group by faid, state"
        )
        signature = graph_signature(graph)
        assert signature.base_tables == {"trans", "loc"}
        assert signature.has_grouping
        assert "cnt" in signature.output_columns

    def test_plain_select_signature(self, tiny_db):
        signature = graph_signature(tiny_db.bind("select lid, city from Loc"))
        assert signature.base_tables == {"loc"}
        assert not signature.has_grouping


class TestPlausible:
    FK_PARENTS = frozenset({"loc", "acct", "pgroup", "cust"})

    def sig(self, tables, kinds=("base", "select")):
        return SummarySignature(
            base_tables=frozenset(tables),
            box_kinds=frozenset(kinds),
            grouping_columns=frozenset(),
            output_columns=frozenset(),
        )

    def test_disjoint_tables_pruned(self):
        assert not plausible(
            self.sig({"trans"}), self.sig({"loc"}), self.FK_PARENTS
        )

    def test_extra_fk_parent_kept(self):
        # AST joins Trans x Loc; Loc is an FK parent, so it may be peeled.
        assert plausible(
            self.sig({"trans"}), self.sig({"trans", "loc"}), self.FK_PARENTS
        )

    def test_extra_non_parent_pruned(self):
        assert not plausible(
            self.sig({"trans"}), self.sig({"trans", "other"}), self.FK_PARENTS
        )

    def test_grouped_ast_pruned_for_ungrouped_query(self):
        grouped = self.sig({"trans"}, kinds=("base", "select", "groupby"))
        assert not plausible(self.sig({"trans"}), grouped, self.FK_PARENTS)
        # ...but fine the other way: ungrouped AST, grouped query.
        query = self.sig({"trans"}, kinds=("base", "select", "groupby"))
        assert plausible(query, self.sig({"trans"}), self.FK_PARENTS)


class TestPruneCandidates:
    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_every_figure_ast_survives_for_its_query(self, tiny_db, figure):
        """The prune must never drop an AST the matcher would accept."""
        ast_name, ast_sql, query, _ = FIGURES[figure]
        tiny_db.create_summary_table(ast_name, ast_sql)
        summary = tiny_db.summary_tables[ast_name.lower()]
        kept = prune_candidates(tiny_db.bind(query), [summary])
        assert kept == [summary]

    def test_unrelated_and_grouped_pruned(self, tiny_db):
        tiny_db.create_summary_table("LOCONLY", "select lid, city from Loc")
        tiny_db.create_summary_table(
            "GROUPED",
            "select faid, count(*) as cnt from Trans group by faid",
        )
        tiny_db.create_summary_table(
            "PLAIN", "select tid, qty, price from Trans where qty > 0"
        )
        summaries = list(tiny_db.summary_tables.values())
        # ungrouped Trans query: the Loc-only AST and the grouped AST go
        kept = prune_candidates(tiny_db.bind("select tid from Trans"), summaries)
        assert [s.name for s in kept] == ["PLAIN"]

    def test_fig05_extra_table_retained(self, tiny_db):
        """AST2 joins Trans x Loc x Acct; Q2 never mentions Loc. Loc is an
        FK parent of Trans, so the peel is possible and AST2 must stay."""
        ast_name, ast_sql, query, _ = FIGURES["fig05_q2"]
        tiny_db.create_summary_table(ast_name, ast_sql)
        summary = tiny_db.summary_tables[ast_name.lower()]
        graph = tiny_db.bind(query)
        assert "loc" not in graph_signature(graph).base_tables
        assert prune_candidates(graph, [summary]) == [summary]

    def test_stats_counters(self, tiny_db):
        from repro.rewrite.cache import RewriteStats

        tiny_db.create_summary_table("LOCONLY", "select lid, city from Loc")
        stats = RewriteStats()
        kept = prune_candidates(
            tiny_db.bind("select tid from Trans"),
            list(tiny_db.summary_tables.values()),
            stats=stats,
        )
        assert kept == []
        assert stats.candidates_considered == 1
        assert stats.candidates_pruned == 1


class TestSummaryIndex:
    def test_register_and_unregister(self, tiny_db):
        tiny_db.create_summary_table(
            "S1", "select faid, count(*) as cnt from Trans group by faid"
        )
        index = SummaryIndex()
        summary = tiny_db.summary_tables["s1"]
        signature = index.register(summary)
        assert signature.base_tables == {"trans"}
        assert index.signature("s1") is signature
        assert len(index) == 1
        index.unregister("S1")
        assert index.signature("s1") is None
        assert len(index) == 0

    def test_database_keeps_index_in_sync(self, tiny_db):
        assert len(tiny_db._summary_index) == 0
        tiny_db.create_summary_table(
            "S1", "select faid, count(*) as cnt from Trans group by faid"
        )
        assert tiny_db._summary_index.signature("s1") is not None
        tiny_db.drop_summary_table("S1")
        assert tiny_db._summary_index.signature("s1") is None

    def test_fk_parents_from_catalog(self, tiny_db):
        parents = _fk_parent_tables(tiny_db.catalog)
        assert {"loc", "acct", "pgroup", "cust"} <= parents
        assert "trans" not in parents
