"""Rewrite application: graph surgery, projections, iterative rerouting."""

import pytest

from repro.engine.table import tables_equal
from repro.qgm.boxes import BaseTableBox, SelectBox


AST_FAID_FLID = (
    "select faid, flid, count(*) as cnt from Trans group by faid, flid"
)


class TestBasicRewrite:
    def test_rewritten_graph_scans_ast(self, tiny_db):
        tiny_db.create_summary_table("S1", AST_FAID_FLID)
        result = tiny_db.rewrite(
            "select faid, count(*) as n from Trans group by faid"
        )
        scans = {
            box.table_name
            for box in result.graph.boxes()
            if isinstance(box, BaseTableBox)
        }
        assert scans == {"S1"}

    def test_rewrite_preserves_output_signature(self, tiny_db):
        tiny_db.create_summary_table("S1", AST_FAID_FLID)
        query = "select faid, count(*) as n from Trans group by faid"
        result = tiny_db.rewrite(query)
        plain = tiny_db.execute(query, use_summary_tables=False)
        rewritten = tiny_db.execute_graph(result.graph)
        assert rewritten.columns == plain.columns

    def test_exact_match_gets_projection(self, tiny_db):
        tiny_db.create_summary_table(
            "S1", "select faid, count(*) as cnt from Trans group by faid"
        )
        result = tiny_db.rewrite(
            "select faid, count(*) as n from Trans group by faid"
        )
        root = result.graph.root
        assert isinstance(root, SelectBox)
        assert root.output_names == ["faid", "n"]

    def test_order_by_survives_rewrite(self, tiny_db):
        tiny_db.create_summary_table("S1", AST_FAID_FLID)
        result = tiny_db.rewrite(
            "select faid, count(*) as n from Trans group by faid order by n desc"
        )
        assert result.graph.order_by == [("n", False)]
        rewritten = tiny_db.execute_graph(result.graph)
        counts = [row[1] for row in rewritten.rows]
        assert counts == sorted(counts, reverse=True)

    def test_subtree_rewrite_keeps_outer_blocks(self, tiny_db):
        """The derived table matches the AST; the outer block survives."""
        tiny_db.create_summary_table("S1", AST_FAID_FLID)
        query = (
            "select mx from (select faid, count(*) as n from Trans "
            "group by faid) as d, "
            "(select max(qty) as mx from Trans) as m where n > 0"
        )
        plain = tiny_db.execute(query, use_summary_tables=False)
        result = tiny_db.rewrite(query)
        assert result is not None
        rewritten = tiny_db.execute_graph(result.graph)
        assert tables_equal(plain, rewritten)

    def test_rewrite_result_sql_is_executable(self, tiny_db):
        tiny_db.create_summary_table("S1", AST_FAID_FLID)
        query = "select faid, count(*) as n from Trans group by faid"
        result = tiny_db.rewrite(query)
        via_sql = tiny_db.execute(result.sql, use_summary_tables=False)
        plain = tiny_db.execute(query, use_summary_tables=False)
        assert tables_equal(plain, via_sql)

    def test_explain_lists_applied_matches(self, tiny_db):
        tiny_db.create_summary_table("S1", AST_FAID_FLID)
        result = tiny_db.rewrite(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert "S1" in result.explain()


class TestIterativeRerouting:
    def test_two_asts_for_two_subtrees(self, tiny_db):
        """Section 7: iterate matching so one query uses several ASTs."""
        tiny_db.create_summary_table("S1", AST_FAID_FLID)
        tiny_db.create_summary_table(
            "S2", "select pgid, pgname, count(*) as n from PGroup group by pgid, pgname"
        )
        query = (
            "select d1.faid, d1.n, d2.m from "
            "(select faid, count(*) as n from Trans group by faid) as d1, "
            "(select count(*) as m from PGroup) as d2"
        )
        plain = tiny_db.execute(query, use_summary_tables=False)
        result = tiny_db.rewrite(query)
        assert result is not None
        used = {entry.summary.name for entry in result.applied}
        assert used == {"S1", "S2"}
        assert tables_equal(plain, tiny_db.execute_graph(result.graph))

    def test_accept_callback_can_reject(self, tiny_db):
        from repro.rewrite.rewriter import rewrite_query

        tiny_db.create_summary_table("S1", AST_FAID_FLID)
        graph = tiny_db.bind("select faid, count(*) as n from Trans group by faid")
        result = rewrite_query(
            graph,
            tiny_db.enabled_summary_tables(),
            accept=lambda summary, match: False,
        )
        assert result is None

    def test_unrelated_ast_pruned(self, tiny_db):
        tiny_db.create_summary_table(
            "S2", "select pgid, count(*) as n from PGroup group by pgid"
        )
        assert tiny_db.rewrite(
            "select faid, count(*) as n from Trans group by faid"
        ) is None
