"""Catalog schema and constraint tests."""

import pytest

from repro.catalog import (
    Catalog,
    Column,
    DataType,
    ForeignKeyConstraint,
    TableSchema,
    UniqueKey,
)
from repro.errors import CatalogError


def make_pair() -> Catalog:
    catalog = Catalog()
    catalog.add_table(
        TableSchema(
            "Dim",
            [Column("id", DataType.INTEGER), Column("name", DataType.STRING)],
            keys=[UniqueKey(("id",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "Fact",
            [
                Column("fid", DataType.INTEGER),
                Column("dim_id", DataType.INTEGER),
                Column("amount", DataType.FLOAT),
            ],
            keys=[UniqueKey(("fid",), is_primary=True)],
        )
    )
    return catalog


class TestTableSchema:
    def test_column_lookup(self):
        schema = make_pair().table("Dim")
        assert schema.column("id").dtype is DataType.INTEGER
        assert schema.has_column("name")
        assert not schema.has_column("nope")

    def test_unknown_column_raises(self):
        schema = make_pair().table("Dim")
        with pytest.raises(CatalogError):
            schema.column("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema(
                "T",
                [Column("a", DataType.INTEGER), Column("a", DataType.STRING)],
            )

    def test_empty_table_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("T", [])

    def test_invalid_column_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("not valid", DataType.INTEGER)

    def test_key_must_reference_columns(self):
        with pytest.raises(CatalogError):
            TableSchema(
                "T",
                [Column("a", DataType.INTEGER)],
                keys=[UniqueKey(("b",))],
            )

    def test_superset_of_key_is_unique(self):
        schema = make_pair().table("Dim")
        assert schema.is_unique_key({"id"})
        assert schema.is_unique_key({"id", "name"})
        assert not schema.is_unique_key({"name"})


class TestCatalog:
    def test_case_insensitive_lookup(self):
        catalog = make_pair()
        assert catalog.table("dim").name == "Dim"
        assert catalog.has_table("FACT")

    def test_duplicate_table_rejected(self):
        catalog = make_pair()
        with pytest.raises(CatalogError):
            catalog.add_table(TableSchema("dim", [Column("x", DataType.INTEGER)]))

    def test_drop_table(self):
        catalog = make_pair()
        catalog.add_foreign_key(
            ForeignKeyConstraint("Fact", ("dim_id",), "Dim", ("id",))
        )
        catalog.drop_table("Dim")
        assert not catalog.has_table("Dim")
        assert catalog.foreign_keys == []

    def test_foreign_key_requires_unique_target(self):
        catalog = make_pair()
        with pytest.raises(CatalogError):
            catalog.add_foreign_key(
                ForeignKeyConstraint("Fact", ("dim_id",), "Dim", ("name",))
            )

    def test_foreign_key_column_count_mismatch(self):
        with pytest.raises(CatalogError):
            ForeignKeyConstraint("Fact", ("a", "b"), "Dim", ("id",))

    def test_find_foreign_key(self):
        catalog = make_pair()
        catalog.add_foreign_key(
            ForeignKeyConstraint("Fact", ("dim_id",), "Dim", ("id",))
        )
        assert catalog.find_foreign_key("fact", "dim") is not None
        assert catalog.find_foreign_key("dim", "fact") is None


class TestLosslessJoin:
    def setup_method(self):
        self.catalog = make_pair()
        self.catalog.add_foreign_key(
            ForeignKeyConstraint("Fact", ("dim_id",), "Dim", ("id",))
        )

    def test_ri_join_is_lossless(self):
        assert self.catalog.ri_join_is_lossless(
            "Fact", {"dim_id"}, "Dim", {"id"}, {("dim_id", "id")}
        )

    def test_wrong_columns_not_lossless(self):
        assert not self.catalog.ri_join_is_lossless(
            "Fact", {"fid"}, "Dim", {"id"}, {("fid", "id")}
        )

    def test_nullable_fk_not_lossless(self):
        catalog = Catalog()
        catalog.add_table(
            TableSchema(
                "Dim",
                [Column("id", DataType.INTEGER)],
                keys=[UniqueKey(("id",), is_primary=True)],
            )
        )
        catalog.add_table(
            TableSchema(
                "Fact",
                [Column("dim_id", DataType.INTEGER, nullable=True)],
            )
        )
        catalog.add_foreign_key(
            ForeignKeyConstraint("Fact", ("dim_id",), "Dim", ("id",))
        )
        assert not catalog.ri_join_is_lossless(
            "Fact", {"dim_id"}, "Dim", {"id"}, {("dim_id", "id")}
        )

    def test_no_constraint_not_lossless(self):
        assert not self.catalog.ri_join_is_lossless(
            "Dim", {"id"}, "Fact", {"dim_id"}, {("id", "dim_id")}
        )
