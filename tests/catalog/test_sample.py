"""The paper's Figure 1 schema."""

from repro.catalog import credit_card_catalog


def test_all_tables_present():
    catalog = credit_card_catalog()
    for name in ("Trans", "Loc", "PGroup", "Acct", "Cust"):
        assert catalog.has_table(name)


def test_trans_columns_match_paper():
    schema = credit_card_catalog().table("Trans")
    assert schema.column_names == [
        "tid", "fpgid", "flid", "faid", "date", "qty", "price", "disc",
    ]


def test_ri_arrows_of_figure_1():
    catalog = credit_card_catalog()
    assert catalog.find_foreign_key("Trans", "PGroup") is not None
    assert catalog.find_foreign_key("Trans", "Loc") is not None
    assert catalog.find_foreign_key("Trans", "Acct") is not None
    assert catalog.find_foreign_key("Acct", "Cust") is not None


def test_fact_columns_non_nullable():
    # The supergroup matching conditions assume non-nullable grouping
    # sources; the sample schema guarantees it.
    schema = credit_card_catalog().table("Trans")
    assert all(not column.nullable for column in schema.columns)


def test_dimension_keys_are_primary():
    catalog = credit_card_catalog()
    for table, key in (("Loc", "lid"), ("PGroup", "pgid"), ("Acct", "aid")):
        schema = catalog.table(table)
        assert schema.is_unique_key({key})
