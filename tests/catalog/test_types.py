"""Type-system tests."""

import datetime

import pytest

from repro.catalog import DataType, infer_literal_type, is_numeric
from repro.catalog.types import value_matches_type


class TestValueMatchesType:
    def test_null_matches_everything(self):
        for dtype in DataType:
            assert value_matches_type(None, dtype)

    def test_integer(self):
        assert value_matches_type(7, DataType.INTEGER)
        assert not value_matches_type(7.5, DataType.INTEGER)
        assert not value_matches_type("7", DataType.INTEGER)

    def test_bool_is_not_integer(self):
        assert not value_matches_type(True, DataType.INTEGER)
        assert value_matches_type(True, DataType.BOOLEAN)

    def test_float_accepts_int(self):
        assert value_matches_type(3, DataType.FLOAT)
        assert value_matches_type(3.5, DataType.FLOAT)

    def test_date(self):
        assert value_matches_type(datetime.date(2000, 5, 14), DataType.DATE)
        assert not value_matches_type("2000-05-14", DataType.DATE)

    def test_string(self):
        assert value_matches_type("x", DataType.STRING)
        assert not value_matches_type(1, DataType.STRING)


class TestInference:
    def test_infer_literals(self):
        assert infer_literal_type(1) is DataType.INTEGER
        assert infer_literal_type(1.5) is DataType.FLOAT
        assert infer_literal_type("s") is DataType.STRING
        assert infer_literal_type(True) is DataType.BOOLEAN
        assert infer_literal_type(datetime.date(1999, 1, 1)) is DataType.DATE
        assert infer_literal_type(None) is None

    def test_infer_rejects_unknown(self):
        with pytest.raises(TypeError):
            infer_literal_type(object())

    def test_is_numeric(self):
        assert is_numeric(DataType.INTEGER)
        assert is_numeric(DataType.FLOAT)
        assert not is_numeric(DataType.STRING)
        assert not is_numeric(None)
