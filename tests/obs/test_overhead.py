"""The zero-cost-when-disabled guarantee: with tracing off, the hot
path allocates no trace objects and the trace buffer stays empty."""

from __future__ import annotations

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.obs import MatchTrace
from repro.obs import trace as trace_mod


def test_disabled_tracing_allocates_nothing(tiny_db):
    tiny_db.create_summary_table(
        "S", "select faid, count(*) as c from Trans group by faid"
    )
    query = "select faid, count(*) as n from Trans group by faid"
    tiny_db.execute(query)  # warm the caches first
    assert trace_mod.ACTIVE is None
    created_before = MatchTrace.created
    for _ in range(50):
        tiny_db.execute(query)
    assert MatchTrace.created == created_before
    assert len(tiny_db.trace_buffer) == 0


def test_disabled_tracing_covers_cold_matching():
    # the cold navigator path (cache miss, full match) must also stay
    # allocation-free while tracing is off
    db = Database(credit_card_catalog())
    db.create_summary_table(
        "S", "select faid, count(*) as c from Trans group by faid"
    )
    created_before = MatchTrace.created
    db.rewrite("select faid, count(*) as n from Trans group by faid")
    assert MatchTrace.created == created_before


def test_enabled_tracing_allocates_once_per_query(tiny_db):
    tiny_db.create_summary_table(
        "S", "select faid, count(*) as c from Trans group by faid"
    )
    tiny_db.set_tracing(True)
    try:
        created_before = MatchTrace.created
        tiny_db.execute("select faid, count(*) as n from Trans group by faid")
        assert MatchTrace.created == created_before + 1
    finally:
        tiny_db.set_tracing(False)
    assert trace_mod.ACTIVE is None
