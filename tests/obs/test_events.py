"""The structured ops event log: ring, bounded file, trace stamping,
and the subsystem emitters (breaker, quarantine)."""

import json

import pytest

from repro.cli import demo_database
from repro.governor.breaker import CircuitBreaker
from repro.obs import events, spans
from repro.obs.events import EventLog


@pytest.fixture(autouse=True)
def clean_obs():
    spans.uninstall()
    events.LOG.clear()
    yield
    spans.uninstall()
    events.LOG.clear()


class TestEventLog:
    def test_ring_is_bounded_and_tail_is_oldest_first(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("tick", n=i)
        assert len(log) == 3
        assert log.emitted == 5
        assert [e["n"] for e in log.tail()] == [2, 3, 4]
        assert [e["n"] for e in log.tail(2)] == [3, 4]

    def test_entry_shape(self):
        log = EventLog()
        entry = log.emit("server.start", host="h", port=1)
        assert entry["event"] == "server.start"
        assert entry["host"] == "h"
        assert isinstance(entry["ts"], float)
        assert "trace_id" not in entry  # no active span

    def test_trace_id_stamped_from_active_span(self):
        log = EventLog()
        tracer = spans.install()
        with tracer.start_trace("req") as root:
            entry = log.emit("conn.open", client="c1")
        assert entry["trace_id"] == root.trace_id
        explicit = log.emit("conn.close", trace_id="override")
        assert explicit["trace_id"] == "override"

    def test_jsonl_file_and_rewrite_bound(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path, capacity=4, max_file_lines=6)
        for i in range(6):
            log.emit("tick", n=i)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == list(range(6))
        # crossing the bound rewrites the file down to the ring
        log.emit("tick", n=6)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [3, 4, 5, 6]
        log.close()

    def test_configure_counts_existing_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"ts": 0, "event": "old"}\n' * 4)
        log = EventLog(capacity=8, max_file_lines=5)
        log.configure(path)
        log.emit("new", n=1)  # line 5: at the bound, kept
        log.emit("new", n=2)  # line 6: crosses it -> rewrite from ring
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in lines] == ["new", "new"]
        log.close()

    def test_module_level_log(self):
        events.emit("module.test", k=1)
        assert events.tail(1)[0]["event"] == "module.test"


class TestSubsystemEmitters:
    def test_breaker_lifecycle_events(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=2, cooldown_s=10.0, clock=lambda: clock[0]
        )
        breaker.record_timeout("shape")
        breaker.record_timeout("shape")  # closed -> open
        assert [e["event"] for e in events.tail()] == ["breaker.open"]
        assert breaker.should_skip("shape") is True
        clock[0] = 11.0
        assert breaker.should_skip("shape") is False  # half-open probe
        breaker.record_success("shape")  # probe succeeded -> closed
        assert [e["event"] for e in events.tail()] == [
            "breaker.open", "breaker.half_open", "breaker.close",
        ]
        close = events.tail()[-1]
        assert close["fingerprint"] == "shape"

    def test_breaker_success_below_threshold_is_silent(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_timeout("shape")
        breaker.record_success("shape")
        assert events.tail() == []

    def test_quarantine_and_readmit_events(self):
        db = demo_database()
        try:
            db.quarantine_summary("ast1", "poisoned by test")
            assert [e["event"] for e in events.tail()] == [
                "summary.quarantine"
            ]
            entry = events.tail()[0]
            assert entry["summary"].lower() == "ast1"
            assert entry["reason"] == "poisoned by test"
            # a successful full refresh re-admits the summary
            db.refresh_summary_tables()
            assert [e["event"] for e in events.tail()] == [
                "summary.quarantine", "summary.readmit",
            ]
        finally:
            db.close()
