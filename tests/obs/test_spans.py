"""The span tracer: sampling, parenting, the ring, and exports."""

import json
import threading

import pytest

from repro.obs import spans


@pytest.fixture(autouse=True)
def clean_tracer():
    spans.uninstall()
    yield
    spans.uninstall()


class TestSampling:
    def test_off_by_default_and_helpers_are_noops(self):
        assert spans.TRACER is None
        assert spans.active() is None
        assert spans.current_trace_id() is None
        assert spans.child("x") is spans.NOOP
        # record with no tracer must not blow up (hot-path guard)
        spans.record("x", 0.0)

    def test_noop_span_is_falsy_and_inert(self):
        noop = spans.NOOP
        assert not noop
        assert noop.trace_id is None
        assert noop.context() is None
        with noop as inner:
            assert inner is noop
        noop.set("k", 1).child("c").finish()

    def test_sample_rate_one_records_everything(self):
        tracer = spans.install(sample_rate=1.0)
        for _ in range(5):
            with tracer.start_trace("req"):
                pass
        assert len(tracer.buffer) == 5
        assert tracer.started == 5
        assert tracer.skipped == 0

    def test_head_sampling_skips_whole_traces(self):
        tracer = spans.install(sample_rate=0.5, seed=7)
        for _ in range(200):
            root = tracer.start_trace("req")
            with root:
                # children of an unsampled root cost nothing
                root.child("inner").finish()
        assert tracer.started + tracer.skipped == 200
        assert 0 < tracer.started < 200
        # every recorded span belongs to a sampled trace: 2 per root
        assert len(tracer.buffer) == 2 * tracer.started

    def test_zero_spans_when_off(self):
        tracer = spans.install(sample_rate=1.0)
        spans.uninstall()
        root = (
            spans.TRACER.start_trace("req")
            if spans.TRACER is not None
            else spans.NOOP
        )
        with root:
            spans.record("child", 0.0)
        assert len(tracer.buffer) == 0

    def test_set_sample_rate_lifecycle(self):
        assert spans.set_sample_rate(1.0) is spans.TRACER
        assert spans.TRACER is not None
        buffer = spans.TRACER.buffer
        with spans.TRACER.start_trace("keep"):
            pass
        # retuning keeps the live buffer (and its spans)
        spans.set_sample_rate(0.25)
        assert spans.TRACER.sample_rate == 0.25
        assert spans.TRACER.buffer is buffer
        assert len(buffer) == 1
        # OFF uninstalls
        assert spans.set_sample_rate(None) is None
        assert spans.TRACER is None
        spans.set_sample_rate(0.0)
        assert spans.TRACER is None


class TestParenting:
    def test_nesting_publishes_thread_local_parent(self):
        tracer = spans.install()
        with tracer.start_trace("root") as root:
            assert spans.active() is root
            assert spans.current_trace_id() == root.trace_id
            with spans.child("middle", depth=1) as middle:
                assert middle.parent_id == root.span_id
                assert middle.trace_id == root.trace_id
                spans.record("leaf", 0.0)
            assert spans.active() is root
        assert spans.active() is None
        by_name = {s["name"]: s for s in tracer.buffer.snapshot()}
        assert set(by_name) == {"root", "middle", "leaf"}
        assert by_name["root"]["parent_id"] is None
        assert by_name["middle"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["leaf"]["parent_id"] == by_name["middle"]["span_id"]
        assert by_name["middle"]["attrs"] == {"depth": 1}

    def test_record_uses_caller_perf_counter_stamp(self):
        import time

        tracer = spans.install()
        with tracer.start_trace("root"):
            started = time.perf_counter() - 0.05  # 50 ms ago
            spans.record("timed", started, rows=3)
        timed = tracer.buffer.for_trace(
            tracer.buffer.snapshot()[0]["trace_id"]
        )
        entry = next(s for s in timed if s["name"] == "timed")
        assert entry["duration_ms"] >= 50.0
        assert entry["attrs"] == {"rows": 3}

    def test_continue_trace_joins_wire_context(self):
        tracer = spans.install()
        root = tracer.start_trace("client")
        context = root.context()
        server = tracer.continue_trace("server", context, op="query")
        assert server.trace_id == root.trace_id
        assert server.parent_id == root.span_id
        server.finish()
        root.finish()
        assert len(tracer.buffer.for_trace(root.trace_id)) == 2

    def test_continue_trace_without_context_is_noop(self):
        tracer = spans.install()
        assert tracer.continue_trace("server", None) is spans.NOOP
        assert tracer.continue_trace("server", {}) is spans.NOOP
        assert tracer.continue_trace("server", {"trace_id": 7}) is spans.NOOP
        assert len(tracer.buffer) == 0

    def test_root_for_joins_or_samples(self):
        tracer = spans.install()
        joined = tracer.root_for("standby.apply", "abc123", lsn=4)
        assert joined.trace_id == "abc123"
        assert joined.parent_id is None
        fresh = tracer.root_for("refresh.apply", None)
        assert fresh.trace_id != "abc123"
        joined.finish()
        fresh.finish()

    def test_error_annotation_on_exception(self):
        tracer = spans.install()
        with pytest.raises(ValueError):
            with tracer.start_trace("boom"):
                raise ValueError("nope")
        [span] = tracer.buffer.snapshot()
        assert span["attrs"]["error"] == "ValueError: nope"

    def test_attach_republishes_on_another_thread(self):
        tracer = spans.install()
        root = tracer.start_trace("loop-side")
        seen = {}

        def worker():
            with spans.attach(root) as span:
                seen["active"] = spans.active()
                span.record("pool-side", 0.0)
            seen["after"] = spans.active()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["active"] is root
        assert seen["after"] is None
        # attach must NOT finish the span — the creator owns it
        assert len(tracer.buffer.for_trace(root.trace_id)) == 1
        root.finish()
        assert len(tracer.buffer.for_trace(root.trace_id)) == 2
        assert spans.attach(None) is spans.NOOP
        assert spans.attach(spans.NOOP) is spans.NOOP


class TestBuffer:
    def test_ring_bound_and_dropped_counter(self):
        buffer = spans.SpanBuffer(capacity=4)
        for i in range(10):
            buffer.append({"trace_id": f"t{i}", "name": "s"})
        assert len(buffer) == 4
        assert buffer.dropped == 6
        assert [s["trace_id"] for s in buffer.snapshot()] == [
            "t6", "t7", "t8", "t9",
        ]
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.dropped == 0

    def test_finish_is_idempotent(self):
        tracer = spans.install()
        span = tracer.start_trace("once")
        span.finish()
        span.finish()
        assert len(tracer.buffer) == 1

    def test_json_and_chrome_export(self):
        tracer = spans.install()
        with tracer.start_trace("root", op="query") as root:
            root.child("child").finish()
        dumped = json.loads(tracer.buffer.to_json())
        assert len(dumped) == 2
        events = tracer.buffer.to_chrome()
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1  # one trace -> one pid slot
            assert event["dur"] >= 0
            assert event["args"]["trace_id"] == root.trace_id
        root_event = next(e for e in events if e["name"] == "root")
        assert root_event["args"]["op"] == "query"
        assert root_event["args"]["parent_id"] is None
