"""Prometheus text exposition and the histogram quantile estimator."""

import threading

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def _parse_samples(text: str) -> dict[str, str]:
    """``{sample_name_with_labels: value}`` for non-comment lines."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = value
    return samples


class TestExposition:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("hits", "cache hits").inc(3)
        registry.gauge("depth").set(2.5)
        hist = registry.histogram("lat_ms", "latency", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 5.0, 100.0):
            hist.observe(value)
        return registry

    def test_type_and_help_lines(self):
        text = self.make_registry().to_prometheus()
        assert "# TYPE hits counter" in text
        assert "# HELP hits cache hits" in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_ms histogram" in text
        assert text.endswith("\n")

    def test_scalar_samples(self):
        samples = _parse_samples(self.make_registry().to_prometheus())
        assert samples["hits"] == "3"
        assert samples["depth"] == "2.5"

    def test_histogram_bucket_series(self):
        text = self.make_registry().to_prometheus()
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("lat_ms_bucket")
        ]
        # le labels in ascending order, ending with +Inf
        assert bucket_lines == [
            'lat_ms_bucket{le="1"} 1',
            'lat_ms_bucket{le="10"} 3',
            'lat_ms_bucket{le="+Inf"} 4',
        ]
        samples = _parse_samples(text)
        assert samples["lat_ms_sum"] == "107.5"
        assert samples["lat_ms_count"] == "4"
        # +Inf cumulative equals _count: one consistent snapshot
        assert samples['lat_ms_bucket{le="+Inf"}'] == samples["lat_ms_count"]

    def test_cumulative_buckets_are_monotonic(self):
        hist = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.2, 0.4, 3.0, 7.0, 7.5, 50.0):
            hist.observe(value)
        cumulative = [count for _, count in hist.cumulative_buckets()]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == hist.count

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("weird", "line one\nback\\slash")
        text = registry.to_prometheus()
        assert "# HELP weird line one\\nback\\\\slash" in text
        assert "\nline one" not in text  # the newline never splits a line

    def test_expose_snapshot_consistent_under_writers(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                hist.observe(0.5)
                hist.observe(100.0)

        threads = [threading.Thread(target=writer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                buckets, _, count = hist.expose()
                assert buckets[-1][1] == count
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestQuantiles:
    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) is None
        assert hist.describe()["p99"] is None

    def test_invalid_q_raises(self):
        hist = Histogram("h")
        for q in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="quantile"):
                hist.quantile(q)

    def test_single_observation_reports_itself(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(3.0)
        # clamped to the observed range, not the bucket boundary
        assert hist.quantile(0.5) == 3.0
        assert hist.quantile(0.99) == 3.0

    def test_interpolation_within_bucket(self):
        hist = Histogram("h", buckets=(0.0, 100.0))
        for value in (10.0, 20.0, 30.0, 90.0):
            hist.observe(value)
        # all 4 land in (0, 100]: p50 interpolates halfway up the bucket
        assert hist.quantile(0.5) == pytest.approx(50.0)
        # ...and the endpoints clamp to the observed range
        assert hist.quantile(1.0) == 90.0

    def test_overflow_bucket_reports_max(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        for _ in range(99):
            hist.observe(500.0)
        assert hist.quantile(0.99) == 500.0

    def test_describe_includes_percentiles(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in range(1, 101):
            hist.observe(float(value))
        described = hist.describe()
        for key in ("p50", "p95", "p99"):
            assert described[key] is not None
        assert described["p50"] <= described["p95"] <= described["p99"]
        assert described["p99"] <= described["max"] == 100.0
        assert hist.quantile(0.5) == described["p50"]

    def test_quantiles_monotone_in_q(self):
        hist = Histogram("h")
        for value in (0.05, 0.3, 0.7, 2.0, 8.0, 40.0, 900.0, 9000.0):
            hist.observe(value)
        values = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert values == sorted(values)
        assert values[-1] == 9000.0
