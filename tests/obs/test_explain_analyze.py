"""EXPLAIN ANALYZE surfacing on the TPC-D workload: phase timings, the
per-AST verdict table (cold and warm), tracing API, and the slow-query
log."""

from __future__ import annotations

import pytest

from repro.obs import REASONS
from repro.workloads.tpcd import QUERIES, build_tpcd_db, install_asts

PHASES = ("parse", "bind", "match", "compensate", "execute", "total")


@pytest.fixture(scope="module")
def tpcd_db():
    db = build_tpcd_db(orders=200)
    install_asts(db)
    yield db
    db.refresh_scheduler.stop()


class TestExplainAnalyze:
    def test_phase_breakdown_present(self, tpcd_db):
        sql = next(iter(QUERIES.values()))
        out = tpcd_db.explain_analyze(sql)
        assert "-- EXPLAIN ANALYZE (trace #" in out
        assert "-- phases --" in out
        for phase in PHASES:
            assert phase in out
        assert "ms" in out
        assert "-- result:" in out

    def test_every_enabled_ast_gets_a_verdict(self, tpcd_db):
        """For each enabled AST: a matched pattern section or a named
        reject reason — on every workload query (acceptance criterion)."""
        for name, sql in QUERIES.items():
            out = tpcd_db.explain_analyze(sql)
            assert "-- match verdicts --" in out, name
            trace = tpcd_db.last_trace
            verdict_names = {row[0].lower() for row in trace.verdict_rows()}
            for key, summary in tpcd_db.summary_tables.items():
                if not summary.enabled:
                    continue
                assert key in verdict_names, (
                    f"{name}: no verdict for {summary.name}\n{out}"
                )
            for _, verdict, _ in trace.verdict_rows():
                assert (
                    verdict.startswith("rewritten via")
                    or verdict.startswith("matched")
                    or verdict.split(":")[0] in REASONS
                ), verdict

    def test_warm_query_shows_cache_hit_verdicts(self, tpcd_db):
        """The decision-cache fix: a warm query's verdict table is never
        empty — replays surface as cache-hit verdicts."""
        sql = next(iter(QUERIES.values()))
        tpcd_db.execute(sql)  # populate the decision cache
        tpcd_db.execute(sql)  # warm hit
        out = tpcd_db.explain_analyze(sql)
        trace = tpcd_db.last_trace
        assert trace.verdict_rows(), "verdict table empty on warm query"
        assert "cache-hit" in out
        applied = [a for a in trace.summaries if a.applied]
        assert applied, "replayed rewrite not marked applied"

    def test_explain_analyze_via_run_sql(self, tpcd_db):
        sql = next(iter(QUERIES.values()))
        out = tpcd_db.run_sql("EXPLAIN ANALYZE " + sql)
        assert "-- phases --" in out and "-- match verdicts --" in out
        # plain EXPLAIN keeps its old shape (no phase table)
        plain = tpcd_db.run_sql("EXPLAIN " + sql)
        assert "-- phases --" not in plain

    def test_rewritten_sql_section_when_applied(self, tpcd_db):
        sql = QUERIES["q1_pricing"]
        out = tpcd_db.explain_analyze(sql)
        assert "-- rewritten SQL --" in out
        assert "rewritten via" in out


class TestTracingApi:
    def test_session_tracing_fills_buffer(self, tpcd_db):
        sql = next(iter(QUERIES.values()))
        before = len(tpcd_db.trace_buffer)
        tpcd_db.set_tracing(True)
        try:
            tpcd_db.execute(sql)
        finally:
            tpcd_db.set_tracing(False)
        assert tpcd_db.tracing is False
        assert len(tpcd_db.trace_buffer) == before + 1
        trace = tpcd_db.last_trace
        assert trace is not None and trace.sql is not None
        assert "execute" in trace.phases


class TestSlowQueryLog:
    def test_threshold_zero_records_everything(self, tpcd_db):
        tpcd_db.slow_queries.clear()
        tpcd_db.set_slow_query_threshold(0.0)
        try:
            sql = next(iter(QUERIES.values()))
            tpcd_db.execute(sql)
        finally:
            tpcd_db.set_slow_query_threshold(None)
        assert len(tpcd_db.slow_queries) == 1
        entry = tpcd_db.slow_queries[-1]
        assert entry["ms"] >= 0.0 and entry["threshold_ms"] == 0.0
        assert tpcd_db.metrics.counter("slow_queries_total").value >= 1

    def test_set_slow_query_statement(self, tpcd_db):
        msg = tpcd_db.run_sql("SET SLOW QUERY 250")
        assert "250" in msg
        assert tpcd_db.slow_query_ms == 250.0
        msg = tpcd_db.run_sql("SET SLOW QUERY OFF")
        assert "disabled" in msg
        assert tpcd_db.slow_query_ms is None
        tpcd_db.slow_queries.clear()
        tpcd_db.execute(next(iter(QUERIES.values())))
        assert not tpcd_db.slow_queries  # log off: nothing recorded
