"""The metrics registry: metric types, exposition, and the unified
counter surfaces (RewriteStats view, scheduler counters)."""

from __future__ import annotations

import datetime
import json
import threading
import time

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.rewrite.cache import RewriteStats


class TestMetricTypes:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "cache hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 2.0

    def test_histogram_buckets_and_stats(self):
        hist = Histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 5.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 107.5
        assert hist.mean == pytest.approx(26.875)
        cumulative = hist.cumulative_buckets()
        assert cumulative == [(1.0, 1), (10.0, 3), (float("inf"), 4)]

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_timer_and_observe_ms(self):
        registry = MetricsRegistry()
        with registry.timer("phase_ms"):
            pass
        elapsed = registry.observe_ms("phase_ms", time.perf_counter())
        assert elapsed >= 0.0
        assert registry.histogram("phase_ms").count == 2


class TestExposition:
    def test_to_dict_and_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(2.0)
        dump = registry.to_dict()
        assert dump["c"] == {"type": "counter", "value": 3}
        assert dump["h"]["count"] == 1 and dump["h"]["sum"] == 2.0
        assert json.loads(registry.to_json()) == json.loads(
            json.dumps(dump, sort_keys=True)
        )

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("hits", "cache hits").inc(2)
        registry.histogram("lat_ms", "latency", buckets=(1.0, 10.0)).observe(5.0)
        text = registry.to_prometheus()
        assert "# HELP hits cache hits" in text
        assert "# TYPE hits counter" in text
        assert "hits 2" in text
        assert '# TYPE lat_ms histogram' in text
        assert 'lat_ms_bucket{le="1"} 0' in text
        assert 'lat_ms_bucket{le="10"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text
        assert "lat_ms_sum 5" in text
        assert "lat_ms_count 1" in text
        assert text.endswith("\n")

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0

    def test_default_buckets_suit_milliseconds(self):
        assert DEFAULT_BUCKETS[0] < 1.0 < DEFAULT_BUCKETS[-1]


class TestRewriteStatsView:
    """RewriteStats keeps its historical attribute API as a registry view."""

    def test_bare_constructor_and_increments(self):
        stats = RewriteStats()
        stats.cache_hits += 1
        stats.queries += 2
        assert stats.cache_hits == 1
        assert stats.as_dict()["queries"] == 2

    def test_counters_live_in_registry(self):
        registry = MetricsRegistry()
        stats = RewriteStats(registry=registry)
        stats.cache_misses += 3
        assert registry.counter("rewrite_cache_misses").value == 3

    def test_snapshot_is_independent(self):
        stats = RewriteStats()
        stats.queries += 5
        frozen = stats.snapshot()
        stats.queries += 2
        assert frozen.queries == 5
        assert stats.delta(frozen)["queries"] == 2

    def test_kwargs_init_and_equality(self):
        a = RewriteStats(cache_hits=4)
        b = RewriteStats(cache_hits=4)
        assert a == b and a.cache_hits == 4
        with pytest.raises(TypeError):
            RewriteStats(bogus=1)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            RewriteStats().no_such_counter

    def test_database_shares_one_registry(self):
        db = Database(credit_card_catalog())
        db.create_summary_table(
            "S", "select faid, count(*) as c from Trans group by faid"
        )
        db.execute("select faid, count(*) as c from Trans group by faid")
        assert db.metrics.counter("rewrite_queries").value >= 1
        assert db.metrics.counter("scheduler_refreshes_applied").value == 0
        # phase timers land in the same registry
        assert db.metrics.histogram("query_total_ms").count >= 1


class TestThreadSafety:
    def test_counter_under_contention_is_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        hist = registry.histogram("h")

        def worker():
            for _ in range(2000):
                counter.inc()
                hist.observe(1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 16000
        assert hist.count == 16000
        assert hist.sum == pytest.approx(16000.0)

    def test_registry_consistent_under_scheduler(self):
        """Concurrent ingest drives the background scheduler while the
        foreground thread hammers the same registry — every surface must
        stay consistent (no lost updates, no kind collisions)."""
        db = Database(credit_card_catalog())
        db.load("Loc", [(1, "San Jose", "CA", "USA")])
        db.load("PGroup", [(1, "TV")])
        db.load("Cust", [(1, "Alice", "CA")])
        db.load("Acct", [(10, 1, "gold")])
        db.load("Trans", [(1, 1, 1, 10, datetime.date(1990, 1, 15),
                           1, 10.0, 0.1)])
        db.run_sql(
            "create summary table S refresh deferred as "
            "select faid, count(*) as c from Trans group by faid"
        )

        def ingest():
            for i in range(20):
                db.run_sql(
                    f"insert into Trans values ({100 + i}, 1, 1, 10, "
                    f"date '1991-02-0{1 + i % 9}', 1, 5.0, 0.1)"
                )

        def query():
            for _ in range(20):
                db.execute("select faid, count(*) as c from Trans group by faid")

        threads = [threading.Thread(target=ingest)] + [
            threading.Thread(target=query) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        db.drain_refresh()
        scheduler = db.refresh_scheduler
        # scheduler counters are registry-backed: the property view and
        # the registry read the same storage
        assert (
            db.metrics.counter("scheduler_refreshes_applied").value
            == scheduler.refreshes_applied
        )
        assert scheduler.refreshes_applied >= 1
        assert db.metrics.counter("rewrite_queries").value >= 60
        # exposition never tears mid-update
        text = db.metrics.to_prometheus()
        assert "scheduler_refreshes_applied" in text
        db.refresh_scheduler.stop()
