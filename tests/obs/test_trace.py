"""The match tracer: one accept and one named reject per pattern
family (4.1.1, 4.1.2, 4.2.1, 4.2.2), plus tracer mechanics."""

from __future__ import annotations

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.obs import REASONS, MatchTrace, TraceBuffer
from repro.obs import trace as trace_mod


def traced_rewrite(db, sql):
    """Run one cold rewrite under an active trace; returns the trace."""
    trace = trace_mod.start(sql)
    try:
        db.rewrite(sql)
    finally:
        trace_mod.finish()
    return trace


def attempt_for(trace, name):
    matches = [a for a in trace.summaries if a.name.lower() == name.lower()]
    assert matches, f"no attempt recorded for {name}: {trace.render()}"
    return matches[-1]


def fresh_db(ast_sql, name="Ast"):
    db = Database(credit_card_catalog())
    db.create_summary_table(name, ast_sql)
    return db


MONTHLY = (
    "select faid, year(date) as year, month(date) as month, "
    "count(*) as cnt, sum(qty) as sqty, min(price) as lo, "
    "max(price) as hi from Trans "
    "group by faid, year(date), month(date)"
)


class TestPattern411:
    """Select/select matching (paper section 4.1.1)."""

    def test_accept(self):
        db = fresh_db("select tid, faid, price from Trans where price > 50")
        trace = traced_rewrite(db, "select tid from Trans where price > 100")
        attempt = attempt_for(trace, "Ast")
        assert attempt.applied and attempt.pattern == "4.1.1"
        assert attempt.verdict == "rewritten via 4.1.1"
        # the root pairing is recorded with its pattern
        assert any(p.pattern == "4.1.1" for p in attempt.pairs)

    def test_reject_predicate_subsumption(self):
        # the AST filters price > 100; the query keeps all rows, so the
        # subsumer predicate is not implied (condition 2 fails)
        db = fresh_db("select tid, faid, price from Trans where price > 100")
        trace = traced_rewrite(db, "select tid, faid from Trans")
        attempt = attempt_for(trace, "Ast")
        assert not attempt.applied
        assert attempt.reason == "predicate-subsumption"
        assert attempt.detail  # names the uncovered predicate
        assert "price" in attempt.detail


class TestPattern412:
    """Groupby/groupby regrouping (paper section 4.1.2)."""

    def test_accept(self):
        db = fresh_db(MONTHLY)
        trace = traced_rewrite(
            db, "select faid, count(*) as n from Trans group by faid"
        )
        attempt = attempt_for(trace, "Ast")
        assert attempt.applied
        # the regrouping GROUP-BY pairing carries the 4.1.2 pattern (the
        # root verdict is the enclosing select's pattern)
        assert any(p.pattern == "4.1.2" for p in attempt.pairs)

    def test_reject_aggregate_rederivation(self):
        # SUM(price) is not derivable from the AST's MIN/MAX outputs:
        # none of the re-derivation rules (a)-(g) applies
        db = fresh_db(MONTHLY)
        trace = traced_rewrite(
            db, "select faid, sum(price) as s from Trans group by faid"
        )
        attempt = attempt_for(trace, "Ast")
        assert not attempt.applied
        assert attempt.reason == "aggregate-rederivation"
        assert "SUM" in attempt.detail


class TestPattern421:
    """Groupby matching with compensation (paper section 4.2.1)."""

    def test_accept(self):
        # Figure 7's shape: the month predicate is pulled up through the
        # AST's grouping because month is one of its grouping columns
        db = fresh_db(
            "select year(date) as year, month(date) as month, "
            "sum(qty) as s from Trans group by year(date), month(date)"
        )
        trace = traced_rewrite(
            db,
            "select year(date) % 100 as y2, sum(qty) as s from Trans "
            "where month(date) >= 6 group by year(date) % 100",
        )
        attempt = attempt_for(trace, "Ast")
        assert attempt.applied
        assert any(p.pattern == "4.2.1" for p in attempt.pairs)

    def test_reject_predicate_pullup(self):
        # price is not a grouping column of the AST: the WHERE predicate
        # cannot be pulled above the grouping
        db = fresh_db(
            "select year(date) as year, count(*) as cnt from Trans "
            "group by year(date)"
        )
        trace = traced_rewrite(
            db,
            "select year(date) as y, count(*) as c from Trans "
            "where price > 100 group by year(date)",
        )
        attempt = attempt_for(trace, "Ast")
        assert not attempt.applied
        assert attempt.reason == "predicate-subsumption"


class TestPattern422:
    """Recursive grouping-child matching (paper section 4.2.2)."""

    AST8 = (
        "select year, tcnt, count(*) as mcnt "
        "from (select year(date) as year, month(date) as month, "
        "count(*) as tcnt from Trans group by year(date), month(date)) "
        "group by year, tcnt"
    )
    Q8 = (
        "select tcnt, count(*) as ycnt "
        "from (select year(date) as year, count(*) as tcnt "
        "from Trans group by year(date)) group by tcnt"
    )

    def test_accept(self):
        db = fresh_db(self.AST8)
        trace = traced_rewrite(db, self.Q8)
        attempt = attempt_for(trace, "Ast")
        assert attempt.applied
        assert attempt.pattern in ("4.2.2", "4.2.4")

    def test_reject_named_reason(self):
        # the AST's histogram root has lost the per-year counts as rows,
        # so a query over the inner aggregation alone cannot use it
        db = fresh_db(self.AST8)
        trace = traced_rewrite(
            db,
            "select year(date) as year, count(*) as c from Trans "
            "group by year(date)",
        )
        attempt = attempt_for(trace, "Ast")
        assert not attempt.applied
        assert attempt.reason in REASONS


class TestTracerMechanics:
    def test_every_recorded_reason_is_catalogued(self):
        db = fresh_db(MONTHLY)
        for sql in (
            "select faid, min(price) as lo from Trans group by faid",
            "select tid, faid from Trans",
            "select state, count(*) as c from Loc group by state",
        ):
            trace = traced_rewrite(db, sql)
            for attempt in trace.summaries:
                if attempt.reason is not None:
                    assert attempt.reason in REASONS
                for pair in attempt.pairs:
                    for reject in pair.rejects:
                        assert reject.reason in REASONS
                        assert reject.section  # defaulted from the catalog

    def test_disjoint_tables_reject(self):
        # a query over Loc never pairs with a Trans aggregate
        db = fresh_db(MONTHLY)
        trace = traced_rewrite(
            db, "select state, count(*) as c from Loc group by state"
        )
        attempt = attempt_for(trace, "Ast")
        assert not attempt.applied
        assert attempt.reason in REASONS

    def test_as_dict_roundtrips_structure(self):
        db = fresh_db(MONTHLY)
        trace = traced_rewrite(
            db, "select faid, count(*) as n from Trans group by faid"
        )
        dump = trace.as_dict()
        assert dump["trace_id"] == trace.trace_id
        assert dump["summaries"][0]["summary"] == "Ast"
        assert dump["summaries"][0]["applied"] is True

    def test_render_mentions_verdicts(self):
        db = fresh_db(MONTHLY)
        trace = traced_rewrite(
            db, "select faid, count(*) as n from Trans group by faid"
        )
        text = trace.render(verbose=True)
        assert f"trace #{trace.trace_id}" in text
        assert "[Ast] rewritten via" in text
        assert "matched 4.1.2" in text

    def test_reject_outside_summary_is_dropped(self):
        trace = MatchTrace()
        trace.reject("box-kind")
        trace.pair(object(), object(), None)  # no current summary: no-op
        assert trace.summaries == []

    def test_trace_buffer_is_bounded(self):
        buffer = TraceBuffer(capacity=2)
        traces = [MatchTrace() for _ in range(3)]
        for trace in traces:
            buffer.append(trace)
        assert len(buffer) == 2
        assert buffer.last is traces[-1]
        assert list(buffer) == traces[1:]
        buffer.clear()
        assert buffer.last is None
