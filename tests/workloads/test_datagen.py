"""Synthetic data generator properties."""

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.workloads import GeneratorConfig, populate_credit_db, small_config


def test_deterministic():
    a = Database(credit_card_catalog())
    b = Database(credit_card_catalog())
    populate_credit_db(a, small_config())
    populate_credit_db(b, small_config())
    assert a.table("Trans").rows == b.table("Trans").rows


def test_row_counts_reported(small_db):
    config = small_config()
    expected_trans = (
        config.customers
        * config.accounts_per_customer
        * len(config.years)
        * config.transactions_per_account_year
    )
    assert len(small_db.table("Trans")) == expected_trans


def test_referential_integrity(small_db):
    loc_ids = set(small_db.table("Loc").column_values("lid"))
    acct_ids = set(small_db.table("Acct").column_values("aid"))
    pg_ids = set(small_db.table("PGroup").column_values("pgid"))
    for row in small_db.table("Trans").rows:
        _, fpgid, flid, faid, *_ = row
        assert fpgid in pg_ids and flid in loc_ids and faid in acct_ids


def test_home_city_affinity(small_db):
    """Most transactions of an account happen in one city — the property
    that makes AST1 ~100x smaller than Trans."""
    result = small_db.execute(
        "select faid, count(distinct flid) as cities, count(*) as cnt "
        "from Trans group by faid",
        use_summary_tables=False,
    )
    for _, cities, cnt in result.rows:
        assert cities <= cnt / 2  # strong locality


def test_ast1_compression(small_db):
    ast1 = small_db.execute(
        "select faid, flid, year(date) as year, count(*) as cnt "
        "from Trans group by faid, flid, year(date)",
        use_summary_tables=False,
    )
    compression = len(small_db.table("Trans")) / len(ast1)
    assert compression > 3  # at benchmark scale this is much higher


def test_scaled_config():
    config = GeneratorConfig().scaled(0.5)
    assert config.customers == GeneratorConfig().customers // 2
    assert config.seed == GeneratorConfig().seed
