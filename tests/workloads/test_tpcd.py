"""Mini TPC-D workload: every query must rewrite and stay correct."""

import pytest

from repro.engine.table import tables_equal
from repro.workloads import QUERIES, build_tpcd_db, install_asts


@pytest.fixture(scope="module")
def tpcd_db():
    db = build_tpcd_db(orders=300)
    install_asts(db)
    return db


def test_schema_ri(tpcd_db):
    catalog = tpcd_db.catalog
    assert catalog.find_foreign_key("Orders", "Customer") is not None
    assert catalog.find_foreign_key("Lineitem", "Orders") is not None


def test_deterministic():
    a = build_tpcd_db(orders=50)
    b = build_tpcd_db(orders=50)
    assert a.table("Lineitem").rows == b.table("Lineitem").rows


def test_asts_materialized(tpcd_db):
    assert tpcd_db.summary_tables["pricingast"].row_count > 0
    assert tpcd_db.summary_tables["nationast"].row_count > 0
    assert tpcd_db.summary_tables["pricingast"].row_count < len(
        tpcd_db.table("Lineitem")
    )


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_rewrites_and_matches(tpcd_db, name):
    query = QUERIES[name]
    plain = tpcd_db.execute(query, use_summary_tables=False)
    result = tpcd_db.rewrite(query)
    assert result is not None, f"{name} found no rewrite"
    rewritten = tpcd_db.execute_graph(result.graph)
    assert tables_equal(plain, rewritten), name


def test_rewrites_scan_less_data(tpcd_db):
    from repro.qgm.boxes import BaseTableBox

    result = tpcd_db.rewrite(QUERIES["q1_pricing"])
    scanned = [
        box.table_name
        for box in result.graph.boxes()
        if isinstance(box, BaseTableBox)
    ]
    assert scanned == ["PricingAst"]
