"""Web-analytics customer workload: every query rewrites correctly."""

import pytest

from repro.engine.table import tables_equal
from repro.workloads.webmetrics import (
    QUERIES,
    build_web_db,
    install_web_asts,
)


@pytest.fixture(scope="module")
def web_db():
    db = build_web_db(views=4000)
    install_web_asts(db)
    return db


def test_deterministic():
    a = build_web_db(views=500)
    b = build_web_db(views=500)
    assert a.table("PageView").rows == b.table("PageView").rows


def test_referential_integrity(web_db):
    page_ids = set(web_db.table("Page").column_values("pid"))
    visitor_ids = set(web_db.table("Visitor").column_values("vid"))
    for row in web_db.table("PageView").rows:
        assert row[1] in page_ids and row[2] in visitor_ids


def test_asts_compress(web_db):
    fact = len(web_db.table("PageView"))
    assert web_db.summary_tables["sectionast"].row_count < fact / 10


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_rewrites_and_matches(web_db, name):
    query = QUERIES[name]
    plain = web_db.execute(query, use_summary_tables=False)
    result = web_db.rewrite(query)
    assert result is not None, f"{name} found no rewrite"
    rewritten = web_db.execute_graph(result.graph)
    assert tables_equal(plain, rewritten), name


def test_avg_query_uses_sum_count_rules(web_db):
    result = web_db.rewrite(QUERIES["section_engagement"])
    # AVG forces a combining SELECT above the regrouping GROUP-BY.
    chain = result.applied[0].match.chain
    from repro.qgm.boxes import GroupByBox

    gb_index = next(i for i, b in enumerate(chain) if isinstance(b, GroupByBox))
    assert len(chain) > gb_index + 1


def test_count_distinct_blocks_coarser_reuse(web_db):
    # uniques = COUNT(DISTINCT fvid) cannot be re-aggregated to country
    # level from the (country, browser, ...) AST — the matcher must not
    # pretend it can.
    query = (
        "select country, count(distinct fvid) as uniques "
        "from PageView, Visitor where fvid = vid group by country"
    )
    result = web_db.rewrite(query)
    if result is not None:
        plain = web_db.execute(query, use_summary_tables=False)
        assert tables_equal(plain, web_db.execute_graph(result.graph))
