"""Database facade: loading, summary tables, execution modes."""

import pytest

from repro.catalog import Column, DataType, TableSchema, credit_card_catalog
from repro.engine import Database
from repro.errors import CatalogError, TypeMismatchError


class TestSchemaAndLoading:
    def test_tables_created_from_catalog(self):
        db = Database(credit_card_catalog())
        assert len(db.table("Trans")) == 0

    def test_add_table(self):
        db = Database()
        db.add_table(TableSchema("T", [Column("a", DataType.INTEGER)]))
        db.load("T", [(1,), (2,)])
        assert len(db.table("T")) == 2

    def test_load_validates(self, tiny_db):
        with pytest.raises(TypeMismatchError):
            tiny_db.load("PGroup", [("not-an-int", "x")])

    def test_unknown_table(self, tiny_db):
        with pytest.raises(CatalogError):
            tiny_db.table("Nope")


class TestSummaryTables:
    AST = (
        "select faid, year(date) as year, count(*) as cnt "
        "from Trans group by faid, year(date)"
    )

    def test_create_materializes(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", self.AST)
        assert summary.row_count == 4
        assert tiny_db.catalog.has_table("S1")
        # The AST is queryable like a table.
        result = tiny_db.execute("select * from S1", use_summary_tables=False)
        assert len(result) == 4

    def test_stats_recorded(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", self.AST)
        assert summary.stats["rows"] == 4.0
        assert summary.stats["base_rows"] == 6.0

    def test_name_collision(self, tiny_db):
        tiny_db.create_summary_table("S1", self.AST)
        with pytest.raises(CatalogError):
            tiny_db.create_summary_table("S1", self.AST)
        with pytest.raises(CatalogError):
            tiny_db.create_summary_table("Trans", self.AST)

    def test_drop(self, tiny_db):
        tiny_db.create_summary_table("S1", self.AST)
        tiny_db.drop_summary_table("S1")
        assert not tiny_db.catalog.has_table("S1")
        with pytest.raises(CatalogError):
            tiny_db.drop_summary_table("S1")

    def test_refresh(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", self.AST)
        import datetime

        tiny_db.load(
            "Trans",
            [(7, 1, 1, 10, datetime.date(1993, 1, 1), 1, 10.0, 0.0)],
        )
        assert summary.row_count == 4  # stale
        tiny_db.refresh_summary_tables()
        assert summary.row_count == 5

    def test_base_tables(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", self.AST)
        assert summary.base_tables() == {"trans"}

    def test_disabled_summary_not_used(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", self.AST)
        summary.enabled = False
        assert tiny_db.rewrite(
            "select faid, count(*) as c from Trans group by faid"
        ) is None


class TestExecutionModes:
    QUERY = "select faid, count(*) as cnt from Trans group by faid"

    def test_execute_uses_summary(self, tiny_db):
        from repro.engine.table import tables_equal

        plain = tiny_db.execute(self.QUERY, use_summary_tables=False)
        tiny_db.create_summary_table(
            "S1",
            "select faid, flid, count(*) as cnt from Trans group by faid, flid",
        )
        with_ast = tiny_db.execute(self.QUERY)
        assert tables_equal(plain, with_ast)

    def test_rewrite_returns_none_without_match(self, tiny_db):
        tiny_db.create_summary_table(
            "S1", "select pgid, count(*) as c from PGroup group by pgid"
        )
        assert tiny_db.rewrite(self.QUERY) is None

    def test_schema_inference_for_summary(self, tiny_db):
        tiny_db.create_summary_table(
            "S1",
            "select faid, sum(price) as total from Trans group by faid",
        )
        schema = tiny_db.catalog.table("S1")
        assert schema.column("faid").dtype is DataType.INTEGER
        assert schema.column("total").dtype is DataType.FLOAT


class TestExplainApi:
    def test_explain_includes_graph_and_rewrite(self, tiny_db):
        tiny_db.create_summary_table(
            "S1", "select faid, count(*) as cnt from Trans group by faid"
        )
        text = tiny_db.explain(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert "query graph" in text
        assert "rewritten SQL" in text and "S1" in text

    def test_explain_reports_no_rewrite(self, tiny_db):
        text = tiny_db.explain("select tid from Trans")
        assert "no summary-table rewrite" in text
