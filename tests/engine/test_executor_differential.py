"""Differential suite: the columnar batch executor vs the row-at-a-time
reference oracle.

Every TPC-D and webmetrics workload query must come back bit-identical
(``tables_equal``) from the batch executor — serial and morsel-parallel
(2 and 4 workers), governed and ungoverned — and a hypothesis property
stresses random GROUPING SETS combinations, where the NULL-padded cuboid
union and the partial-aggregate merge interact.

The reference executor (cartesian products + sort-based grouping) shares
nothing with the batch pipeline beyond SQL semantics, so agreement here
is the acceptance gate for the vectorized rewrite.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import Executor, tables_equal
from repro.engine.reference import ReferenceExecutor
from repro.governor import scope as governor_scope
from repro.governor.budget import Deadline, QueryBudget
from repro.qgm import build_graph
from repro.workloads import tpcd, webmetrics

# Small enough that the reference executor's cartesian joins stay cheap,
# big enough that every query crosses several morsels at parallel 2/4.
TPCD_DB = tpcd.build_tpcd_db(orders=40)
WEB_DB = webmetrics.build_web_db(views=600)

_DBS = {"tpcd": TPCD_DB, "web": WEB_DB}
_QUERIES = {"tpcd": tpcd.QUERIES, "web": webmetrics.QUERIES}

WORKLOAD_CASES = [
    ("tpcd", name) for name in sorted(tpcd.QUERIES)
] + [("web", name) for name in sorted(webmetrics.QUERIES)]

_reference_cache: dict[tuple[str, str], object] = {}


def _reference_result(workload: str, name: str):
    key = (workload, name)
    cached = _reference_cache.get(key)
    if cached is None:
        db = _DBS[workload]
        graph = build_graph(_QUERIES[workload][name], db.catalog)
        cached = _reference_cache[key] = ReferenceExecutor(db.tables).run(graph)
    return cached


def _governed_scope() -> QueryBudget:
    """A live governor budget with limits far above what these queries
    need — the instrumented paths run, nothing trips."""
    return QueryBudget(
        deadline=Deadline(60_000.0), max_rows=10_000_000
    )


@pytest.mark.parametrize("governed", [False, True], ids=["ungoverned", "governed"])
@pytest.mark.parametrize("parallel", [None, 2, 4], ids=["off", "par2", "par4"])
@pytest.mark.parametrize("workload,name", WORKLOAD_CASES)
def test_batch_executor_matches_reference(workload, name, parallel, governed):
    db = _DBS[workload]
    graph = build_graph(_QUERIES[workload][name], db.catalog)
    expected = _reference_result(workload, name)
    executor = Executor(db.tables, parallel=parallel)
    if governed:
        with governor_scope.activate(_governed_scope()):
            result = executor.run(graph)
    else:
        result = executor.run(graph)
    assert result.columns == expected.columns
    assert tables_equal(result, expected), (workload, name, parallel, governed)
    if parallel:
        assert executor.stats is not None and executor.stats.workers == parallel


# ----------------------------------------------------------------------
# Random grouping sets: cuboid union + partial-aggregate merge
# ----------------------------------------------------------------------
_GROUP_COLS = [
    "returnflag",
    "linestatus",
    "year(shipdate)",
    "month(shipdate)",
    "quantity",
]
_AGGS = [
    "count(*) as cnt",
    "sum(extendedprice) as total",
    "avg(quantity) as avg_qty",
    "min(discount) as lo",
    "max(discount) as hi",
    "count(distinct quantity) as dq",
]


@st.composite
def grouping_set_queries(draw) -> str:
    pool = draw(
        st.lists(st.sampled_from(_GROUP_COLS), min_size=1, max_size=3, unique=True)
    )
    n_sets = draw(st.integers(min_value=1, max_value=3))
    sets = []
    for _ in range(n_sets):
        subset = draw(
            st.lists(st.sampled_from(pool), min_size=1, unique=True)
        )
        sets.append(tuple(sorted(subset)))
    sets = list(dict.fromkeys(sets))
    clause = ", ".join(f"({', '.join(s)})" for s in sets)
    # Only columns that appear in some grouping set may be selected.
    columns = [c for c in pool if any(c in s for s in sets)]
    aggregates = draw(
        st.lists(st.sampled_from(_AGGS), min_size=1, max_size=3, unique=True)
    )
    select_keys = ", ".join(f"{c} as g{i}" for i, c in enumerate(columns))
    return (
        f"select {select_keys}, {', '.join(aggregates)} "
        f"from Lineitem group by grouping sets ({clause})"
    )


@settings(max_examples=40, deadline=None)
@given(sql=grouping_set_queries())
def test_random_grouping_sets_match_reference(sql):
    graph = build_graph(sql, TPCD_DB.catalog)
    expected = ReferenceExecutor(TPCD_DB.tables).run(graph)
    for parallel in (None, 2):
        graph_again = build_graph(sql, TPCD_DB.catalog)
        result = Executor(TPCD_DB.tables, parallel=parallel).run(graph_again)
        assert tables_equal(result, expected), (sql, parallel)
