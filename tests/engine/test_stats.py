"""Statistics collection and group-count estimation."""

import random

import pytest

from repro.engine.stats import collect_stats, estimate_group_count
from repro.engine.table import Table


def make_table(rows):
    return Table(["a", "b", "c"], rows)


class TestCollectStats:
    def test_counts_and_bounds(self):
        table = make_table([(1, "x", None), (2, "x", None), (2, "y", 5.0)])
        stats = collect_stats(table)
        assert stats.rows == 3
        assert stats.columns["a"].distinct == 2
        assert stats.columns["b"].distinct == 2
        assert stats.columns["c"].nulls == 2
        assert stats.columns["a"].minimum == 1
        assert stats.columns["a"].maximum == 2

    def test_ndv_fallback(self):
        stats = collect_stats(make_table([(1, "x", 1.0)]))
        assert stats.ndv("missing") == 1

    def test_mixed_types_do_not_crash(self):
        table = Table(["a"], [(1,), ("x",)])
        stats = collect_stats(table)
        assert stats.columns["a"].distinct == 2


class TestDistinctCap:
    def test_under_cap_stays_exact(self):
        rows = [(i % 8, "x", 0.0) for i in range(100)]
        stats = collect_stats(make_table(rows), distinct_cap=10)
        assert stats.columns["a"].distinct == 8
        assert stats.columns["a"].exact

    def test_over_cap_estimates_and_flags(self):
        rows = [(i, i % 3, None if i % 2 else 1.0) for i in range(100)]
        stats = collect_stats(make_table(rows), distinct_cap=10)
        column = stats.columns["a"]
        assert not column.exact
        # table fits in the sampler's window, so the estimate is exact
        assert column.distinct == 100
        # the other columns are untouched by a's saturation
        assert stats.columns["b"].exact
        assert stats.columns["b"].distinct == 3

    def test_saturation_keeps_bounds_and_nulls(self):
        rows = [(i, "x", None) for i in range(50)]
        stats = collect_stats(make_table(rows), distinct_cap=5)
        column = stats.columns["a"]
        assert (column.minimum, column.maximum) == (0, 49)
        assert stats.columns["c"].nulls == 50

    def test_estimate_never_below_cap(self):
        # even if the sampler lowballed, a saturated column reports > cap
        rows = [(i, "x", 0.0) for i in range(30)]
        stats = collect_stats(make_table(rows), distinct_cap=3)
        assert stats.columns["a"].distinct >= 4

    def test_default_cap_leaves_small_tables_exact(self):
        rows = [(i, "x", 0.0) for i in range(500)]
        stats = collect_stats(make_table(rows))
        assert stats.columns["a"].exact
        assert stats.columns["a"].distinct == 500


class TestEstimateGroupCount:
    def test_empty_and_trivial(self):
        table = make_table([])
        assert estimate_group_count(table, ["a"]) == 0
        assert estimate_group_count(make_table([(1, "x", 0.0)]), []) == 1

    def test_small_tables_exact(self):
        rows = [(i % 5, "x", 0.0) for i in range(100)]
        assert estimate_group_count(make_table(rows), ["a"]) == 5

    def test_large_low_cardinality_close(self):
        rng = random.Random(0)
        rows = [(rng.randint(1, 20), f"g{rng.randint(1, 5)}", 0.0) for __ in range(20000)]
        table = make_table(rows)
        estimate = estimate_group_count(table, ["a", "b"])
        exact = len({(r[0], r[1]) for r in rows})
        assert exact * 0.5 <= estimate <= exact * 2

    def test_high_cardinality_scales_up(self):
        rows = [(i, "x", 0.0) for i in range(50000)]
        table = make_table(rows)
        estimate = estimate_group_count(table, ["a"])
        assert estimate > 10000  # singleton scale-up kicks in

    def test_bounded_by_ndv_product(self):
        rng = random.Random(1)
        rows = [(rng.randint(1, 3), f"g{rng.randint(1, 3)}", 0.0) for __ in range(30000)]
        table = make_table(rows)
        stats = collect_stats(table)
        estimate = estimate_group_count(table, ["a", "b"], stats=stats)
        assert estimate <= 9

    def test_deterministic(self):
        rows = [(i % 997, "x", 0.0) for i in range(30000)]
        table = make_table(rows)
        assert estimate_group_count(table, ["a"]) == estimate_group_count(table, ["a"])


class TestSamplingAdvisor:
    def test_sampling_mode_close_to_exact(self, small_db):
        from repro.asts.advisor import Advisor

        attributes = {"faid": "faid", "year": "year(date)"}
        exact = Advisor(small_db, "Trans", attributes, estimate="exact")
        sampled = Advisor(small_db, "Trans", attributes, estimate="sample")
        exact_sizes = {v.attributes: v.rows for v in exact.candidates()}
        for view in sampled.candidates():
            truth = exact_sizes[view.attributes]
            assert truth * 0.4 <= view.rows <= max(truth * 2.5, truth + 2)

    def test_invalid_mode_rejected(self, small_db):
        from repro.asts.advisor import Advisor

        with pytest.raises(ValueError):
            Advisor(small_db, "Trans", {"faid": "faid"}, estimate="guess")
