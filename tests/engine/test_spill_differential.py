"""Differential suite: spilled execution vs the in-memory executor.

``SET QUERY MAXMEM`` (or the process-wide broker limit) makes the hash
join and GROUPING SETS operators degrade to CRC-framed temp-file runs
merged through the derivation rules (a)-(g). The acceptance gate is
*bit-identity*: every TPC-D and webmetrics workload query must return
``rows`` exactly equal to the unbudgeted run — same float bits, same
row order — across budgets that force zero, a few, and many spill runs.

The fault points complete the ladder: an armed ``mem.reserve`` denial
must be absorbed by spilling, and an armed ``executor.spill`` (a full
spill disk) must surface as a typed ``QueryResourceError`` — never an
unhandled exception, never a wrong answer.
"""

from __future__ import annotations

import pytest

from repro.errors import MemoryBudgetExceeded, QueryResourceError
from repro.resources.broker import BROKER
from repro.testing import INJECTOR
from repro.workloads import tpcd, webmetrics

TPCD_DB = tpcd.build_tpcd_db(orders=40)
WEB_DB = webmetrics.build_web_db(views=600)

_DBS = {"tpcd": TPCD_DB, "web": WEB_DB}
_QUERIES = {"tpcd": tpcd.QUERIES, "web": webmetrics.QUERIES}

WORKLOAD_CASES = [
    ("tpcd", name) for name in sorted(tpcd.QUERIES)
] + [("web", name) for name in sorted(webmetrics.QUERIES)]

#: per-query budgets chosen to hit the three regimes: comfortably above
#: any estimate (no spill), mid-size (each spilling operator partitions
#: into a handful of runs), and one byte (every charge denied — maximum
#: partition fan-out on every spill-capable operator)
BUDGETS = [
    pytest.param(None, id="maxmem-off"),
    pytest.param(1 << 30, id="maxmem-huge"),
    pytest.param(16_384, id="maxmem-mid"),
    pytest.param(1, id="maxmem-tiny"),
]

_expected_cache: dict[tuple[str, str], object] = {}


@pytest.fixture(autouse=True)
def _clean_resources():
    INJECTOR.disarm()
    BROKER.reset()
    yield
    INJECTOR.disarm()
    BROKER.reset()


def _expected(workload: str, name: str):
    """The unbudgeted (purely in-memory) result, computed once."""
    key = (workload, name)
    cached = _expected_cache.get(key)
    if cached is None:
        cached = _expected_cache[key] = _DBS[workload].execute(
            _QUERIES[workload][name]
        )
    return cached


def _spill_count(db) -> int:
    metric = db.metrics.get("executor_spill_count")
    return int(metric.value) if metric is not None else 0


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("workload,name", WORKLOAD_CASES)
def test_spilled_execution_is_bit_identical(workload, name, budget):
    db = _DBS[workload]
    expected = _expected(workload, name)
    before = _spill_count(db)
    result = db.execute(_QUERIES[workload][name], max_mem=budget)
    assert result.columns == expected.columns
    # Exact tuple equality: same values, same float bits, same order.
    assert result.rows == expected.rows
    if budget == 1:
        # A one-byte budget denies every charge: anything with a hash
        # join or a grouping must have taken the spill path.
        assert _spill_count(db) > before
    elif budget in (None, 1 << 30):
        assert _spill_count(db) == before
    # No query may leak reserved bytes, spilled or not.
    assert BROKER.reserved() == 0


def test_global_broker_limit_forces_spill_and_drains():
    db = TPCD_DB
    expected = _expected("tpcd", "q5_nation")
    BROKER.set_limit(512)
    try:
        before = _spill_count(db)
        result = db.execute(tpcd.QUERIES["q5_nation"])
        assert result.rows == expected.rows
        assert _spill_count(db) > before
        assert BROKER.reserved() == 0
        assert BROKER.peak() <= 512
    finally:
        BROKER.reset()


def test_mem_reserve_fault_degrades_to_spill():
    """An injected reservation denial (deterministic pressure) must be
    absorbed exactly like a real one: spill, same answer."""
    db = TPCD_DB
    expected = _expected("tpcd", "q3_priority")
    before = _spill_count(db)
    with INJECTOR.injected("mem.reserve", times=1):
        result = db.execute(tpcd.QUERIES["q3_priority"], max_mem=1 << 30)
    assert result.rows == expected.rows
    assert _spill_count(db) > before
    assert BROKER.reserved() == 0


def test_spill_disk_failure_is_a_typed_error():
    """Budget exhausted AND spill disk full: the bottom rung is a typed
    QueryResourceError, not MemoryError or a stray InjectedFault."""
    db = TPCD_DB
    with INJECTOR.injected("executor.spill", times=1):
        with pytest.raises(QueryResourceError):
            db.execute(tpcd.QUERIES["q5_nation"], max_mem=1)
    assert BROKER.reserved() == 0
    # The database stays healthy: the same query succeeds afterwards.
    result = db.execute(tpcd.QUERIES["q5_nation"], max_mem=1)
    assert result.rows == _expected("tpcd", "q5_nation").rows


def test_reservation_denial_is_typed_for_direct_callers():
    reservation = BROKER.reserve(limit=100)
    reservation.charge(80)
    with pytest.raises(MemoryBudgetExceeded):
        reservation.charge(40)
    reservation.close()
    assert BROKER.reserved() == 0


def test_repeated_spilled_runs_are_deterministic():
    """Two spilled executions of the same query agree with each other
    (temp-file naming, partition order, and merge order are all
    content-determined, never timing-determined)."""
    first = TPCD_DB.execute(tpcd.QUERIES["q1_pricing"], max_mem=1)
    second = TPCD_DB.execute(tpcd.QUERIES["q1_pricing"], max_mem=1)
    assert first.rows == second.rows
