"""Table storage and validation."""

import pytest

from repro.catalog import Column, DataType, TableSchema
from repro.engine import Table, tables_equal
from repro.errors import ExecutionError, TypeMismatchError


SCHEMA = TableSchema(
    "T",
    [
        Column("id", DataType.INTEGER),
        Column("name", DataType.STRING, nullable=True),
        Column("score", DataType.FLOAT, nullable=True),
    ],
)


class TestLoading:
    def test_from_schema(self):
        table = Table.from_schema(SCHEMA, [(1, "a", 1.5), (2, None, None)])
        assert len(table) == 2

    def test_wrong_arity(self):
        with pytest.raises(TypeMismatchError):
            Table.from_schema(SCHEMA, [(1, "a")])

    def test_wrong_type(self):
        with pytest.raises(TypeMismatchError):
            Table.from_schema(SCHEMA, [("x", "a", 1.0)])

    def test_null_in_non_nullable(self):
        with pytest.raises(TypeMismatchError):
            Table.from_schema(SCHEMA, [(None, "a", 1.0)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ExecutionError):
            Table(["a", "a"])


class TestAccess:
    def test_column_index_and_values(self):
        table = Table(["a", "b"], [(1, 2), (3, 4)])
        assert table.column_index("b") == 1
        assert table.column_values("a") == [1, 3]

    def test_unknown_column(self):
        with pytest.raises(ExecutionError):
            Table(["a"], []).column_index("b")

    def test_iteration(self):
        table = Table(["a"], [(1,), (2,)])
        assert list(table) == [(1,), (2,)]

    def test_to_dicts(self):
        table = Table(["a", "b"], [(1, 2)])
        assert table.to_dicts() == [{"a": 1, "b": 2}]


class TestSorting:
    def test_sort_by_multiple_keys(self):
        table = Table(["a", "b"], [(2, 1), (1, 2), (1, 1)])
        table.sort_by([("a", True), ("b", False)])
        assert table.rows == [(1, 2), (1, 1), (2, 1)]

    def test_nulls_sort_last_ascending(self):
        table = Table(["a"], [(None,), (1,), (2,)])
        table.sort_by([("a", True)])
        assert table.rows == [(1,), (2,), (None,)]

    def test_sorted_rows_canonical(self):
        table = Table(["a"], [(3,), (None,), (1,)])
        assert table.sorted_rows() == [(1,), (3,), (None,)]


class TestEquality:
    def test_multiset_semantics(self):
        left = Table(["a"], [(1,), (1,), (2,)])
        right = Table(["a"], [(2,), (1,), (1,)])
        assert tables_equal(left, right)
        assert not tables_equal(left, Table(["a"], [(1,), (2,)]))
        assert not tables_equal(left, Table(["a"], [(1,), (2,), (2,)]))

    def test_int_float_equivalence(self):
        assert tables_equal(Table(["a"], [(2,)]), Table(["a"], [(2.0,)]))

    def test_float_tolerance(self):
        left = Table(["a"], [(3006987.095000001,)])
        right = Table(["a"], [(3006987.0949999997,)])
        assert tables_equal(left, right)

    def test_clearly_different_floats(self):
        assert not tables_equal(Table(["a"], [(1.0,)]), Table(["a"], [(1.1,)]))

    def test_nulls_compare_equal(self):
        assert tables_equal(Table(["a"], [(None,)]), Table(["a"], [(None,)]))
        assert not tables_equal(Table(["a"], [(None,)]), Table(["a"], [(0,)]))

    def test_column_count_mismatch(self):
        assert not tables_equal(Table(["a"], []), Table(["a", "b"], []))


class TestPretty:
    def test_pretty_contains_headers_and_null(self):
        table = Table(["name", "n"], [("x", 1), (None, 2)])
        text = table.pretty()
        assert "name" in text and "NULL" in text

    def test_pretty_truncates(self):
        table = Table(["a"], [(i,) for i in range(50)])
        assert "(50 rows)" in table.pretty(limit=3)
