"""Aggregate accumulators (SQL NULL semantics)."""

import pytest

from repro.engine.aggregates import make_accumulator
from repro.errors import ExecutionError
from repro.expr import AggCall, ColumnRef


X = ColumnRef("t", "x")


def run(call, values):
    accumulator = make_accumulator(call)
    for value in values:
        accumulator.add(value)
    return accumulator.result()


class TestCount:
    def test_count_star_counts_everything(self):
        assert run(AggCall("count"), [1, None, 2]) == 3

    def test_count_skips_nulls(self):
        assert run(AggCall("count", X), [1, None, 2]) == 2

    def test_count_empty_is_zero(self):
        assert run(AggCall("count", X), []) == 0

    def test_count_distinct(self):
        assert run(AggCall("count", X, distinct=True), [1, 1, 2, None]) == 2


class TestSum:
    def test_sum(self):
        assert run(AggCall("sum", X), [1, 2, 3]) == 6

    def test_sum_skips_nulls(self):
        assert run(AggCall("sum", X), [1, None, 2]) == 3

    def test_sum_all_null_is_null(self):
        assert run(AggCall("sum", X), [None, None]) is None

    def test_sum_empty_is_null(self):
        assert run(AggCall("sum", X), []) is None

    def test_sum_distinct(self):
        assert run(AggCall("sum", X, distinct=True), [2, 2, 3]) == 5


class TestMinMax:
    def test_min_max(self):
        assert run(AggCall("min", X), [3, 1, 2]) == 1
        assert run(AggCall("max", X), [3, 1, 2]) == 3

    def test_min_max_skip_nulls(self):
        assert run(AggCall("min", X), [None, 5]) == 5
        assert run(AggCall("max", X), [None]) is None

    def test_strings(self):
        assert run(AggCall("min", X), ["b", "a"]) == "a"


class TestAvg:
    def test_avg(self):
        assert run(AggCall("avg", X), [1, 2, 3]) == 2

    def test_avg_skips_nulls(self):
        assert run(AggCall("avg", X), [2, None, 4]) == 3

    def test_avg_empty_is_null(self):
        assert run(AggCall("avg", X), []) is None


def test_unknown_aggregate_rejected():
    call = AggCall("sum", X)
    object.__setattr__(call, "func", "median")
    with pytest.raises(ExecutionError):
        make_accumulator(call)
