"""Grouping-sets execution semantics — reproduces the paper's Figure 12
sample table exactly."""

import datetime

from repro.catalog import credit_card_catalog
from repro.engine import Database


def figure_12_db() -> Database:
    """The sample Trans table of Figure 12 (flid, year, faid triples)."""
    db = Database(credit_card_catalog())
    db.load("Loc", [(1, "c1", "CA", "USA"), (2, "c2", "TX", "USA")])
    db.load("PGroup", [(1, "TV")])
    db.load("Cust", [(1, "A", "CA")])
    acct_ids = [100, 200, 300, 400]
    db.load("Acct", [(a, 1, "gold") for a in acct_ids])
    triples = [
        (1, 1990, 100),
        (1, 1991, 100),
        (1, 1991, 200),
        (1, 1991, 300),
        (1, 1992, 100),
        (1, 1992, 400),
        (2, 1991, 400),
        (2, 1991, 400),
    ]
    rows = [
        (tid, 1, flid, faid, datetime.date(year, 6, 15), 1, 10.0, 0.0)
        for tid, (flid, year, faid) in enumerate(triples, start=1)
    ]
    db.load("Trans", rows)
    return db


QUERY = """
select flid, year(date) as year, faid, count(*) as cnt
from Trans
group by grouping sets ((flid, year(date)), (faid))
"""

#: the paper's printed query result (Figure 12)
EXPECTED = {
    (1, 1990, None, 1),
    (1, 1991, None, 3),
    (1, 1992, None, 2),
    (2, 1991, None, 2),
    (None, None, 100, 3),
    (None, None, 200, 1),
    (None, None, 300, 1),
    (None, None, 400, 3),
}


def test_figure_12_sample_result():
    db = figure_12_db()
    result = db.execute(QUERY, use_summary_tables=False)
    assert set(result.rows) == EXPECTED
    assert len(result.rows) == len(EXPECTED)


def test_rollup_includes_grand_total():
    db = figure_12_db()
    result = db.execute(
        "select flid, year(date) as year, count(*) as cnt from Trans "
        "group by rollup(flid, year(date))",
        use_summary_tables=False,
    )
    rows = set(result.rows)
    assert (None, None, 8) in rows  # grand total
    assert (1, None, 6) in rows and (2, None, 2) in rows  # per-flid subtotals
    assert (1, 1991, 3) in rows  # finest level

    # |rollup| = finest + per-flid + grand total
    finest = {r for r in rows if r[0] is not None and r[1] is not None}
    assert len(rows) == len(finest) + 2 + 1


def test_cube_has_all_four_cuboids():
    db = figure_12_db()
    result = db.execute(
        "select flid, faid, count(*) as cnt from Trans group by cube(flid, faid)",
        use_summary_tables=False,
    )
    rows = result.rows
    patterns = {(r[0] is None, r[1] is None) for r in rows}
    assert patterns == {
        (False, False), (False, True), (True, False), (True, True),
    }


def test_duplicate_grouping_sets_are_canonicalized():
    db = figure_12_db()
    result = db.execute(
        "select flid, count(*) as cnt from Trans "
        "group by grouping sets ((flid), (flid))",
        use_summary_tables=False,
    )
    assert sorted(result.rows) == [(1, 6), (2, 2)]


def test_empty_grouping_set_on_empty_table():
    db = Database(credit_card_catalog())
    result = db.execute(
        "select count(*) as n from Trans group by grouping sets (())",
        use_summary_tables=False,
    )
    assert result.rows == [(0,)]
