"""Catalog mutation under concurrent queries (the epoch-atomicity fix).

Two historical races, both fixed in ``Database``:

* the rewrite decision cache stamped entries with the epoch read
  *after* matching, so a ``CREATE``/``DROP SUMMARY TABLE`` landing
  mid-decision could store a stale decision under the new epoch and
  replay a rewrite against a dropped AST forever;
* a query that matched a summary could reach the executor after a
  concurrent ``DROP`` removed the summary's backing table from the
  store, failing with a spurious lookup error. Matched summaries are
  now pinned via an execution overlay.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.table import tables_equal
from tests.conftest import fresh_small_db

SUMMARY_SQL = (
    "select faid, flid, year(date) as year, count(*) as cnt, "
    "sum(qty) as qty from Trans group by faid, flid, year(date)"
)
QUERY = (
    "select faid, year(date) as year, count(*) as cnt "
    "from Trans group by faid, year(date)"
)


@pytest.fixture
def db():
    return fresh_small_db()


class TestDroppedAstPinning:
    def test_prepared_rewrite_survives_concurrent_drop(self, db):
        """Deterministic replay of the race: decide the rewrite while
        the AST exists, drop the AST, then execute the decided graph.
        The overlay must pin the dropped summary's table."""
        db.create_summary_table("EpochAst", SUMMARY_SQL)
        expected = db.execute(QUERY, use_summary_tables=False)
        graph = db.bind(QUERY)
        exec_graph, overlay = db._rewrite_for_execution(QUERY, graph)
        assert overlay is not None and "epochast" in overlay
        db.drop_summary_table("EpochAst")
        assert "epochast" not in db.tables
        result = db.execute_graph(exec_graph, overlay=overlay)
        assert tables_equal(result, expected)

    def test_decision_cache_epoch_captured_before_match(self, db, monkeypatch):
        """A decision computed against epoch N must not be stored under
        epoch N+1 when DDL lands mid-decision. Simulated by bumping the
        epoch from inside the matcher itself."""
        import repro.rewrite.rewriter as rewriter_mod

        db.create_summary_table("EpochAst", SUMMARY_SQL)
        epoch_before = db._rewrite_epoch
        original = rewriter_mod.rewrite_query

        def ddl_mid_match(graph, summaries, **kwargs):
            db._bump_rewrite_epoch()  # concurrent DDL, mid-decision
            return original(graph, summaries, **kwargs)

        monkeypatch.setattr(rewriter_mod, "rewrite_query", ddl_mid_match)
        db.execute(QUERY)
        monkeypatch.undo()
        entry = next(iter(db._rewrite_cache._entries.values()), None)
        assert entry is not None
        # Stored under the epoch captured BEFORE matching: a lookup at
        # the post-DDL epoch must treat it as stale, not replay it.
        assert entry.epoch == epoch_before
        assert entry.epoch != db._rewrite_epoch
        stats_before = db._rewrite_stats.snapshot()
        result = db.execute(QUERY)
        delta = db._rewrite_stats.delta(stats_before)
        assert delta.get("cache_hits", 0) == 0
        assert tables_equal(result, db.execute(QUERY, use_summary_tables=False))


class TestConcurrentDdlStress:
    def test_queries_stay_correct_under_create_drop_storm(self, db):
        """Readers hammer one query while a writer creates and drops
        the matching AST; every result must equal base execution and no
        query may error."""
        expected = db.execute(QUERY, use_summary_tables=False)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    result = db.execute(QUERY)
                    if not tables_equal(result, expected):
                        errors.append(AssertionError("wrong result"))
                        return
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)
                    return

        def ddl_writer():
            try:
                for cycle in range(25):
                    db.create_summary_table(f"StormAst{cycle}", SUMMARY_SQL)
                    db.drop_summary_table(f"StormAst{cycle}")
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer = threading.Thread(target=ddl_writer)
        for thread in readers:
            thread.start()
        writer.start()
        writer.join(timeout=120)
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
        assert not errors, errors[0]
        assert writer.is_alive() is False
