"""Save/load round-trips for whole databases."""

import pytest

from repro.engine.persist import load_database, save_database
from repro.engine.table import tables_equal
from repro.errors import ReproError


class TestRoundTrip:
    def test_base_tables_round_trip(self, tiny_db, tmp_path):
        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        for name in ("Trans", "Loc", "PGroup", "Acct", "Cust"):
            assert tables_equal(tiny_db.table(name), loaded.table(name))

    def test_schema_round_trip(self, tiny_db, tmp_path):
        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        schema = loaded.catalog.table("Trans")
        assert schema.column_names == tiny_db.catalog.table("Trans").column_names
        assert schema.is_unique_key({"tid"})
        assert loaded.catalog.find_foreign_key("Trans", "Loc") is not None

    def test_date_values_retyped(self, tiny_db, tmp_path):
        import datetime

        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        value = loaded.table("Trans").rows[0][4]
        assert isinstance(value, datetime.date)

    def test_summary_tables_round_trip(self, tiny_db, tmp_path):
        tiny_db.create_summary_table(
            "S1", "select faid, count(*) as cnt from Trans group by faid"
        )
        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert "s1" in loaded.summary_tables
        # The restored AST is matched again, without re-materializing.
        result = loaded.rewrite(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert result is not None
        assert tables_equal(
            loaded.execute_graph(result.graph),
            tiny_db.execute(
                "select faid, count(*) as n from Trans group by faid",
                use_summary_tables=False,
            ),
        )

    def test_queries_agree_after_reload(self, tiny_db, tmp_path):
        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        sql = (
            "select faid, state, count(*) as n from Trans, Loc "
            "where flid = lid group by faid, state"
        )
        assert tables_equal(
            tiny_db.execute(sql, use_summary_tables=False),
            loaded.execute(sql, use_summary_tables=False),
        )

    def test_empty_database(self, tmp_path):
        from repro.engine import Database

        save_database(Database(), tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert not loaded.catalog.tables


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ReproError):
            load_database(tmp_path / "nope")

    def test_bad_format_version(self, tiny_db, tmp_path):
        import json

        target = save_database(tiny_db, tmp_path / "db")
        manifest = json.loads((target / "catalog.json").read_text())
        manifest["format_version"] = 99
        (target / "catalog.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError):
            load_database(target)

    def test_row_width_mismatch(self, tiny_db, tmp_path):
        from repro.engine.persist import _frame

        target = save_database(tiny_db, tmp_path / "db")
        # A checksummed-but-wrong-width row inside the file is genuine
        # corruption, not a torn tail — still fatal, with line context.
        lines = (target / "PGroup.jsonl").read_text().splitlines()
        lines[0] = _frame("[1]")
        (target / "PGroup.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError, match="width mismatch.*line 1"):
            load_database(target)


class TestShellIntegration:
    def test_save_and_open_commands(self, tiny_db, tmp_path):
        import io

        from repro.cli import Shell
        from repro.engine import Database

        out = io.StringIO()
        shell = Shell(tiny_db, out=out)
        assert shell.handle_line(f"\\save {tmp_path / 'snap'}")
        fresh = Shell(Database(), out=out)
        assert fresh.handle_line(f"\\open {tmp_path / 'snap'}")
        fresh.handle_line("select count(*) as n from Trans;")
        assert "(1 rows)" in out.getvalue()

    def test_open_missing_reports_error(self, tmp_path):
        import io

        from repro.cli import Shell
        from repro.engine import Database

        out = io.StringIO()
        shell = Shell(Database(), out=out)
        shell.handle_line(f"\\open {tmp_path / 'missing'}")
        assert "error:" in out.getvalue()

    def test_usage_messages(self):
        import io

        from repro.cli import Shell
        from repro.engine import Database

        out = io.StringIO()
        shell = Shell(Database(), out=out)
        shell.handle_line("\\save")
        shell.handle_line("\\open")
        text = out.getvalue()
        assert "usage: \\save" in text and "usage: \\open" in text


class TestRefreshStateRoundTrip:
    """Deferred-maintenance state survives save/load: refresh mode,
    staleness counters, and the staged delta log itself."""

    def _stage(self, database, row):
        from repro.asts.maintenance import MaintenanceReport

        with database._maintenance_lock:
            database.table("Trans").rows.append(row)
            database._stage_deferred("Trans", [row], +1, MaintenanceReport())

    def test_mode_and_staleness_round_trip(self, tiny_db, tmp_path):
        import datetime

        tiny_db.create_summary_table(
            "S1",
            "select faid, count(*) as cnt from Trans group by faid",
            refresh_mode="deferred",
        )
        row = (301, 1, 1, 10, datetime.date(1994, 3, 3), 1, 9.0, 0.0)
        self._stage(tiny_db, row)
        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        state = loaded.summary_tables["s1"].refresh
        assert state.mode == "deferred"
        assert state.pending_deltas == 1
        assert loaded.delta_log.lsn == tiny_db.delta_log.lsn
        assert loaded.delta_log.batches() == tiny_db.delta_log.batches()
        tiny_db.close()
        loaded.close()

    def test_loaded_database_can_drain_to_freshness(self, tiny_db, tmp_path):
        import datetime

        sql = "select faid, count(*) as cnt from Trans group by faid"
        tiny_db.create_summary_table("S1", sql, refresh_mode="deferred")
        row = (302, 2, 2, 20, datetime.date(1994, 4, 4), 2, 11.0, 0.1)
        self._stage(tiny_db, row)
        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        loaded.drain_refresh()
        summary = loaded.summary_tables["s1"]
        assert summary.refresh.pending_deltas == 0
        assert tables_equal(
            summary.table, loaded.execute(sql, use_summary_tables=False)
        )
        tiny_db.close()
        loaded.close()

    def test_old_format_loads_as_immediate(self, tiny_db, tmp_path):
        import json

        tiny_db.create_summary_table(
            "S1", "select faid, count(*) as cnt from Trans group by faid"
        )
        target = save_database(tiny_db, tmp_path / "db")
        # Strip the new keys, as a pre-refresh-subsystem save would be.
        manifest = json.loads((target / "catalog.json").read_text())
        manifest.pop("refresh_lsn")
        for entry in manifest["summary_tables"]:
            for key in ("refresh_mode", "pending_deltas", "last_refresh_lsn"):
                entry.pop(key)
        (target / "catalog.json").write_text(json.dumps(manifest))
        loaded = load_database(target)
        state = loaded.summary_tables["s1"].refresh
        assert state.mode == "immediate"
        assert state.pending_deltas == 0
        assert loaded.delta_log.lsn == 0

    def test_fresh_database_writes_no_delta_file(self, tiny_db, tmp_path):
        tiny_db.create_summary_table(
            "S1", "select faid, count(*) as cnt from Trans group by faid"
        )
        target = save_database(tiny_db, tmp_path / "db")
        assert not (target / "deltas.jsonl").exists()
