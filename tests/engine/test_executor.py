"""End-to-end executor behaviour over the tiny hand-checked database."""

import pytest

from repro.errors import ExecutionError


def rows(db, sql):
    return db.execute(sql, use_summary_tables=False).sorted_rows()


class TestScansAndFilters:
    def test_full_scan(self, tiny_db):
        assert len(rows(tiny_db, "select tid from Trans")) == 6

    def test_where_filter(self, tiny_db):
        result = rows(tiny_db, "select tid from Trans where qty > 1")
        assert result == [(1,), (3,), (5,)]

    def test_predicate_unknown_filters_row(self, tiny_db):
        # No NULLs in data, but constants can produce UNKNOWN.
        result = rows(tiny_db, "select tid from Trans where null = 1")
        assert result == []

    def test_projection_expression(self, tiny_db):
        result = rows(
            tiny_db, "select tid, qty * price as v from Trans where tid = 1"
        )
        assert result == [(1, 220.0)]

    def test_distinct(self, tiny_db):
        result = rows(tiny_db, "select distinct faid from Trans")
        assert result == [(10,), (20,)]


class TestJoins:
    def test_equi_join(self, tiny_db):
        result = rows(
            tiny_db,
            "select tid, city from Trans, Loc where flid = lid and tid = 3",
        )
        assert result == [(3, "Paris")]

    def test_three_way_join(self, tiny_db):
        result = rows(
            tiny_db,
            "select tid, pgname, status from Trans, PGroup, Acct "
            "where fpgid = pgid and faid = aid and tid = 4",
        )
        assert result == [(4, "TV", "silver")]

    def test_cross_join_counts(self, tiny_db):
        result = rows(tiny_db, "select tid, pgid from Trans cross join PGroup")
        assert len(result) == 12

    def test_self_join_with_aliases(self, tiny_db):
        result = rows(
            tiny_db,
            "select t1.tid, t2.tid from Trans t1, Trans t2 "
            "where t1.faid = t2.faid and t1.tid < t2.tid and t1.faid = 20",
        )
        assert result == [(4, 5), (4, 6), (5, 6)]

    def test_join_on_expression_is_residual(self, tiny_db):
        result = rows(
            tiny_db,
            "select tid from Trans, Loc where flid + 0 = lid and tid = 1",
        )
        assert result == [(1,)]

    def test_empty_join_result(self, tiny_db):
        result = rows(
            tiny_db, "select tid from Trans, Loc where flid = lid and lid > 99"
        )
        assert result == []


class TestAggregation:
    def test_group_by_counts(self, tiny_db):
        result = rows(
            tiny_db, "select faid, count(*) as c from Trans group by faid"
        )
        assert result == [(10, 3), (20, 3)]

    def test_group_by_expression(self, tiny_db):
        result = rows(
            tiny_db,
            "select year(date) as y, count(*) as c from Trans group by year(date)",
        )
        assert result == [(1990, 2), (1991, 3), (1992, 1)]

    def test_having(self, tiny_db):
        result = rows(
            tiny_db,
            "select year(date) as y, count(*) as c from Trans "
            "group by year(date) having count(*) >= 2",
        )
        assert result == [(1990, 2), (1991, 3)]

    def test_multiple_aggregates(self, tiny_db):
        result = rows(
            tiny_db,
            "select faid, sum(qty) as q, min(price) as lo, max(price) as hi, "
            "avg(disc) as d from Trans group by faid having faid = 10",
        )
        (row,) = result
        assert row[0:4] == (10, 6, 30.0, 150.0)
        assert abs(row[4] - 0.21666666) < 1e-6

    def test_count_distinct(self, tiny_db):
        result = rows(
            tiny_db,
            "select faid, count(distinct flid) as c from Trans group by faid",
        )
        assert result == [(10, 2), (20, 1)]

    def test_scalar_aggregate(self, tiny_db):
        assert rows(tiny_db, "select count(*) as n from Trans") == [(6,)]

    def test_scalar_aggregate_on_empty_filter(self, tiny_db):
        result = rows(
            tiny_db,
            "select count(*) as n, sum(qty) as s from Trans where qty > 99",
        )
        assert result == [(0, None)]

    def test_group_by_on_empty_input_no_rows(self, tiny_db):
        result = rows(
            tiny_db,
            "select faid, count(*) as n from Trans where qty > 99 group by faid",
        )
        assert result == []


class TestSubqueriesAndOrder:
    def test_scalar_subquery_value(self, tiny_db):
        result = rows(
            tiny_db,
            "select lid, (select count(*) from Trans) as n from Loc where lid = 1",
        )
        assert result == [(1, 6)]

    def test_subquery_in_predicate(self, tiny_db):
        result = rows(
            tiny_db,
            "select faid, count(*) as c from Trans group by faid "
            "having count(*) * 2 = (select count(*) from Trans)",
        )
        assert result == [(10, 3), (20, 3)]

    def test_order_by_applied(self, tiny_db):
        result = tiny_db.execute(
            "select tid, price from Trans order by price desc",
            use_summary_tables=False,
        )
        prices = [row[1] for row in result.rows]
        assert prices == sorted(prices, reverse=True)

    def test_missing_table_data(self, tiny_db):
        from repro.catalog import Column, DataType, TableSchema
        from repro.engine.executor import Executor
        from repro.qgm import build_graph

        tiny_db.catalog.add_table(
            TableSchema("Ghost", [Column("g", DataType.INTEGER)])
        )
        graph = build_graph("select g from Ghost", tiny_db.catalog)
        with pytest.raises(ExecutionError):
            Executor(tiny_db.tables).run(graph)


class TestDerivedTables:
    def test_nested_aggregation(self, tiny_db):
        result = rows(
            tiny_db,
            "select ycnt, count(*) as n from "
            "(select year(date) as y, count(*) as ycnt from Trans "
            " group by year(date)) as t group by ycnt",
        )
        assert result == [(1, 1), (2, 1), (3, 1)]

    def test_shared_subquery_memoized(self, tiny_db):
        # Two references to structurally identical subqueries share one
        # quantifier; execution should still be correct.
        result = rows(
            tiny_db,
            "select (select count(*) from Trans) as a, "
            "(select count(*) from Trans) as b from PGroup where pgid = 1",
        )
        assert result == [(6, 6)]


class TestLimit:
    def test_limit_truncates(self, tiny_db):
        result = tiny_db.execute(
            "select tid from Trans order by tid limit 3",
            use_summary_tables=False,
        )
        assert result.rows == [(1,), (2,), (3,)]

    def test_limit_larger_than_result(self, tiny_db):
        result = tiny_db.execute(
            "select tid from Trans limit 100", use_summary_tables=False
        )
        assert len(result) == 6

    def test_limit_survives_rewrite(self, tiny_db):
        tiny_db.create_summary_table(
            "S", "select faid, count(*) as cnt from Trans group by faid"
        )
        result = tiny_db.execute(
            "select faid, count(*) as n from Trans group by faid "
            "order by n desc limit 1"
        )
        assert len(result) == 1

    def test_limit_in_subquery_rejected(self, tiny_db):
        import pytest

        from repro.errors import UnsupportedSqlError

        with pytest.raises(UnsupportedSqlError):
            tiny_db.execute(
                "select x from (select tid as x from Trans limit 2) as d",
                use_summary_tables=False,
            )

    def test_limit_requires_integer(self, tiny_db):
        import pytest

        from repro.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            tiny_db.execute("select tid from Trans limit 2.5")


class TestHashJoinBuildSide:
    """The hash join must build on the smaller input by *actual*
    cardinality (post-filter), not by declared table order."""

    @staticmethod
    def _db(n_loc, n_trans):
        import datetime

        from repro.catalog import credit_card_catalog
        from repro.engine import Database

        db = Database(credit_card_catalog())
        db.load(
            "Loc",
            [(i, f"city{i}", "CA", "USA") for i in range(1, n_loc + 1)],
        )
        db.load("PGroup", [(1, "TV")])
        db.load("Cust", [(1, "Alice", "CA")])
        db.load("Acct", [(10, 1, "gold")])
        d = datetime.date(1995, 6, 15)
        db.load(
            "Trans",
            [
                (t, 1, (t % n_loc) + 1, 10, d, 1, 10.0, 0.1)
                for t in range(1, n_trans + 1)
            ],
        )
        return db

    @staticmethod
    def _join_builds(db, sql):
        from repro.engine import Executor
        from repro.qgm import build_graph

        executor = Executor(db.tables)
        executor.run(build_graph(sql, db.catalog))
        return executor.stats.join_builds

    def test_builds_on_smaller_side_either_orientation(self):
        sql = "select tid, city from Trans, Loc where flid = lid"
        for n_loc, n_trans in [(3, 50), (50, 3)]:
            builds = self._join_builds(self._db(n_loc, n_trans), sql)
            assert len(builds) == 1
            (build,) = builds
            assert build["build_rows"] == min(n_loc, n_trans)
            assert build["probe_rows"] == max(n_loc, n_trans)
            assert build["build_rows"] <= build["probe_rows"]

    def test_actual_cardinality_after_filter_wins(self):
        # Trans is the big table (50 rows) but the pushed-down filter
        # leaves only 2, so the build side must flip onto Trans.
        db = self._db(3, 50)
        builds = self._join_builds(
            db,
            "select tid, city from Trans, Loc where flid = lid and tid <= 2",
        )
        assert len(builds) == 1
        assert builds[0]["build_rows"] == 2
        assert builds[0]["probe_rows"] == 3
