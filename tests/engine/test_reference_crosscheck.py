"""Cross-validation: the optimized executor must agree with the naive
reference executor on randomly composed queries.

The two implementations share nothing beyond the expression evaluator:
hash joins + pushdown + hashing grouping vs cartesian products + sort
grouping. Agreement over the random family below is strong evidence both
implement the same (SQL) semantics.
"""

from __future__ import annotations

import datetime

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.catalog import credit_card_catalog
from repro.engine import Database, Executor, tables_equal
from repro.engine.reference import ReferenceExecutor
from repro.qgm import build_graph


def _db() -> Database:
    db = Database(credit_card_catalog())
    d = datetime.date
    db.load(
        "Loc",
        [(1, "SJ", "CA", "USA"), (2, "P", "X", "France"), (3, "A", "TX", "USA")],
    )
    db.load("PGroup", [(1, "TV"), (2, "Radio")])
    db.load("Cust", [(1, "A", "CA"), (2, "B", "TX")])
    db.load("Acct", [(10, 1, "gold"), (20, 2, "silver"), (30, 1, "gold")])
    rows = []
    for tid, (faid, flid, pgid, y, m, qty, price, disc) in enumerate(
        [
            (10, 1, 1, 1990, 1, 2, 110.0, 0.2),
            (10, 1, 2, 1990, 2, 1, 150.0, 0.3),
            (10, 2, 2, 1991, 3, 3, 30.0, 0.15),
            (20, 3, 1, 1991, 6, 1, 400.0, 0.15),
            (20, 3, 2, 1991, 7, 2, 50.0, 0.2),
            (20, 3, 1, 1992, 1, 1, 500.0, 0.3),
            (30, 2, 1, 1992, 8, 4, 25.0, 0.0),
            (30, 1, 2, 1990, 9, 2, 75.0, 0.05),
        ],
        start=1,
    ):
        rows.append((tid, pgid, flid, faid, d(y, m, 15), qty, price, disc))
    db.load("Trans", rows)
    return db


DB = _db()

SELECT_ITEMS = [
    "tid", "faid", "flid", "qty", "price", "qty * price as v",
    "year(date) as y", "month(date) as m", "price * (1 - disc) as net",
]
PREDICATES = [
    None,
    "qty > 1",
    "price >= 100",
    "year(date) = 1991",
    "disc in (0.0, 0.2)",
    "not (faid = 10)",
    "month(date) between 2 and 8",
    "price > 1000",  # empty result
]
JOIN_SHAPES = [
    ("Trans", None),
    ("Trans, Loc", "flid = lid"),
    ("Trans, Acct", "faid = aid"),
    ("Trans, Loc, Acct", "flid = lid and faid = aid"),
    ("Trans, PGroup", None),  # cross join
]
GROUPINGS = [
    None,
    ["faid"],
    ["faid", "year(date)"],
    ["flid"],
]
AGGREGATES = [
    "count(*) as cnt",
    "sum(qty) as sq",
    "min(price) as lo",
    "max(price) as hi",
    "avg(qty) as aq",
    "count(distinct flid) as df",
]


@st.composite
def queries(draw) -> str:
    tables, join_pred = draw(st.sampled_from(JOIN_SHAPES))
    predicate = draw(st.sampled_from(PREDICATES))
    grouping = draw(st.sampled_from(GROUPINGS))
    conjuncts = [p for p in (join_pred, predicate) if p]
    where = f" where {' and '.join(conjuncts)}" if conjuncts else ""
    if grouping is None:
        items = draw(
            st.lists(st.sampled_from(SELECT_ITEMS), min_size=1, max_size=4,
                     unique=True)
        )
        distinct = draw(st.booleans())
        head = "select distinct" if distinct else "select"
        return f"{head} {', '.join(items)} from {tables}{where}"
    aggregates = draw(
        st.lists(st.sampled_from(AGGREGATES), min_size=1, max_size=3, unique=True)
    )
    supergroup = draw(st.sampled_from(["plain", "rollup", "cube"]))
    keys = ", ".join(grouping)
    if supergroup == "rollup":
        clause = f"group by rollup({keys})"
    elif supergroup == "cube" and len(grouping) <= 2:
        clause = f"group by cube({keys})"
    else:
        clause = f"group by {keys}"
    select_keys = ", ".join(f"{g} as g{i}" for i, g in enumerate(grouping))
    having = draw(st.sampled_from([None, "count(*) > 1"]))
    having_clause = f" having {having}" if having else ""
    return (
        f"select {select_keys}, {', '.join(aggregates)} "
        f"from {tables}{where} {clause}{having_clause}"
    )


@settings(max_examples=120, deadline=None)
@given(sql=queries())
def test_executors_agree(sql):
    graph = build_graph(sql, DB.catalog)
    fast = Executor(DB.tables).run(graph)
    slow = ReferenceExecutor(DB.tables).run(graph)
    assert fast.columns == slow.columns
    assert tables_equal(fast, slow), sql


@pytest.mark.parametrize(
    "sql",
    [
        "select tid from Trans where null = 1",
        "select count(*) as n from Trans where price > 99999",
        "select faid, count(*) as n from Trans group by rollup(faid)",
        "select distinct faid, flid from Trans, Loc where flid = lid",
        "select lid, (select count(*) from Trans) as n from Loc",
        "select tid, price from Trans order by price desc, tid limit 3",
    ],
)
def test_executors_agree_on_known_tricky_cases(sql):
    graph = build_graph(sql, DB.catalog)
    fast = Executor(DB.tables).run(graph)
    slow = ReferenceExecutor(DB.tables).run(graph)
    assert tables_equal(fast, slow)


@settings(max_examples=60, deadline=None)
@given(sql=queries())
def test_unparse_round_trip_random(sql):
    """build -> to_sql -> re-bind must preserve semantics for the whole
    random query family."""
    from repro.qgm.unparse import to_sql

    graph = build_graph(sql, DB.catalog)
    rendered = to_sql(graph)
    reparsed = build_graph(rendered, DB.catalog)
    original = Executor(DB.tables).run(graph)
    round_tripped = Executor(DB.tables).run(reparsed)
    assert tables_equal(original, round_tripped), f"{sql}\n->\n{rendered}"
