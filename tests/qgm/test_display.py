"""QGM rendering (the paper's Figure 3)."""

from repro.catalog import credit_card_catalog
from repro.qgm import build_graph
from repro.qgm.display import render_graph

Q1 = """
select faid, state, year(date) as year, count(*) as cnt
from Trans, Loc
where flid = lid and country = 'USA'
group by faid, state, year(date)
having count(*) > 100
"""


def test_figure_3_structure():
    """The rendered graph shows the paper's Figure 3: a top SELECT with
    the HAVING predicate, a GROUP-BY over (faid, state, year), and a
    bottom SELECT joining Trans and Loc."""
    graph = build_graph(Q1, credit_card_catalog())
    text = render_graph(graph)
    lines = text.splitlines()
    assert lines[0].startswith("SELECT ")  # top box first
    assert any("cnt > 100" in line for line in lines)  # HAVING predicate
    assert any("group by: faid, state, year" in line for line in lines)
    assert any("Trans.flid = Loc.lid" in line for line in lines)
    assert any("country = 'USA'" in line for line in lines)
    assert any("[Trans]" in line for line in lines)
    assert any("[Loc]" in line for line in lines)
    # Indentation increases from root to leaves.
    trans_line = next(line for line in lines if "[Trans]" in line)
    assert trans_line.startswith("      ")


def test_grouping_sets_shown():
    graph = build_graph(
        "select flid, faid, count(*) as cnt from Trans "
        "group by grouping sets ((flid, faid), (flid))",
        credit_card_catalog(),
    )
    text = render_graph(graph)
    assert "grouping sets: (flid, faid), (flid)" in text


def test_shared_boxes_shown_once():
    graph = build_graph("select faid from Trans", credit_card_catalog())
    # Point two quantifiers at the same leaf to simulate a DAG.
    leaf = graph.root.children()[0]
    graph.root.add_quantifier("again", leaf)
    text = render_graph(graph)
    assert text.count("shared, shown above") == 1


def test_render_subsumer_ref():
    from repro.matching.framework import SubsumerRef

    graph = build_graph("select faid from Trans", credit_card_catalog())
    placeholder = SubsumerRef(graph.root)
    text = render_graph(placeholder)
    assert "SUBSUMER" in text and "faid" in text
