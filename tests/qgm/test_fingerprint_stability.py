"""Fingerprint stability across sessions, processes, and persist/reload.

The semantic result cache keys on ``fingerprint(graph).key`` plus the
session knobs that can change a query's answer. Those keys are only
sound if the fingerprint is a pure function of the query's structure —
identical for the same SQL no matter which ``Database`` instance bound
it — and if every answer-changing knob combination maps to a distinct
cache key.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.engine.persist import load_database, save_database
from repro.qgm.fingerprint import fingerprint
from repro.refresh.policy import RefreshAge
from repro.server.result_cache import cache_key

QUERIES = [
    "select faid, sum(price) as total from Trans group by faid",
    "select faid, flid, year(date) as year, count(*) as cnt "
    "from Trans group by faid, flid, year(date)",
    "select count(*) as cnt from Trans where year(date) = 1990",
]


def _fresh_db() -> Database:
    return Database(credit_card_catalog())


class TestCrossSessionStability:
    def test_two_sessions_agree(self):
        """Two independently constructed databases (separate catalogs,
        separate parses) fingerprint the same SQL identically."""
        first, second = _fresh_db(), _fresh_db()
        for sql in QUERIES:
            a = fingerprint(first.bind(sql))
            b = fingerprint(second.bind(sql))
            assert a.key == b.key
            assert a.hexdigest() == b.hexdigest()

    def test_rebind_in_one_session_agrees(self):
        db = _fresh_db()
        for sql in QUERIES:
            assert fingerprint(db.bind(sql)).key == fingerprint(db.bind(sql)).key

    def test_different_queries_differ(self):
        db = _fresh_db()
        keys = {fingerprint(db.bind(sql)).key for sql in QUERIES}
        assert len(keys) == len(QUERIES)

    def test_persist_reload_agrees(self, tmp_path, tiny_db):
        """A fingerprint computed before ``\\save`` equals one computed
        after ``\\open`` in a fresh process-equivalent database."""
        tiny_db.create_summary_table(
            "FPAst",
            "select faid, count(*) as cnt from Trans group by faid",
        )
        before = {
            sql: fingerprint(tiny_db.bind(sql)).key for sql in QUERIES
        }
        save_database(tiny_db, tmp_path / "db")
        reloaded = load_database(tmp_path / "db")
        for sql, key in before.items():
            assert fingerprint(reloaded.bind(sql)).key == key


class TestKnobKeys:
    """Property: cache keys split exactly on answer-changing knobs."""

    knob = st.tuples(
        st.sampled_from([None, 0, 1, 2, 5]),  # REFRESH AGE max_pending
        st.booleans(),  # use_summary_tables
    )

    @settings(max_examples=60, deadline=None)
    @given(left=knob, right=knob)
    def test_keys_equal_iff_knobs_equal(self, left, right):
        db = _fresh_db()
        fp = fingerprint(db.bind(QUERIES[0])).key
        key_left = cache_key(fp, RefreshAge(left[0]), left[1])
        key_right = cache_key(fp, RefreshAge(right[0]), right[1])
        assert (key_left == key_right) == (left == right)

    def test_same_knobs_different_query_differ(self):
        db = _fresh_db()
        age = RefreshAge.CURRENT
        keys = {
            cache_key(fingerprint(db.bind(sql)).key, age, True)
            for sql in QUERIES
        }
        assert len(keys) == len(QUERIES)
