"""SQL → QGM binder tests (the Figure 3 construction)."""

import pytest

from repro.catalog import credit_card_catalog
from repro.errors import BindError, UnsupportedSqlError
from repro.expr import AggCall, ColumnRef
from repro.qgm import BaseTableBox, GroupByBox, SelectBox, build_graph


CATALOG = credit_card_catalog()


def build(sql):
    return build_graph(sql, CATALOG)


class TestPlainBlocks:
    def test_single_select_box(self):
        graph = build("select faid, qty from Trans where qty > 1")
        assert isinstance(graph.root, SelectBox)
        assert graph.root.output_names == ["faid", "qty"]
        assert len(graph.root.predicates) == 1

    def test_base_table_leaf(self):
        graph = build("select faid from Trans")
        (leaf,) = graph.root.children()
        assert isinstance(leaf, BaseTableBox)
        assert leaf.table_name == "Trans"

    def test_select_star_expands(self):
        graph = build("select * from PGroup")
        assert graph.root.output_names == ["pgid", "pgname"]

    def test_join_predicates_and_quantifiers(self):
        graph = build("select faid from Trans, Loc where flid = lid")
        names = [q.name for q in graph.root.quantifiers()]
        assert names == ["Trans", "Loc"]

    def test_alias_scoping(self):
        graph = build("select t.faid from Trans as t")
        assert graph.root.quantifiers()[0].name == "t"

    def test_unqualified_resolution(self):
        graph = build("select pgname from Trans, PGroup where fpgid = pgid")
        ref = graph.root.output("pgname").expr
        assert ref == ColumnRef("PGroup", "pgname")

    def test_case_insensitive_names(self):
        graph = build("select FAID from TRANS")
        assert graph.root.output_names == ["faid"]

    def test_distinct_becomes_group_by(self):
        # Footnote 2: SELECT DISTINCT binds as GROUP BY over the outputs.
        graph = build("select distinct faid from Trans")
        groupby = graph.root.children()[0]
        assert isinstance(groupby, GroupByBox)
        assert groupby.grouping_items == ("faid",)

    def test_distinct_with_aggregation_keeps_flag(self):
        graph = build(
            "select distinct faid, count(*) as c from Trans group by faid, flid"
        )
        assert graph.root.distinct


class TestAggregatedBlocks:
    def test_sandwich_structure(self):
        graph = build(
            "select faid, count(*) as cnt from Trans group by faid having count(*) > 1"
        )
        upper = graph.root
        assert isinstance(upper, SelectBox)
        (groupby,) = upper.children()
        assert isinstance(groupby, GroupByBox)
        (lower,) = groupby.children()
        assert isinstance(lower, SelectBox)
        assert len(upper.predicates) == 1  # HAVING

    def test_grouping_expressions_live_in_lower_box(self):
        graph = build(
            "select year(date) as year, count(*) as cnt from Trans group by year(date)"
        )
        groupby = graph.root.children()[0]
        assert groupby.grouping_items == ("year",)
        lower = groupby.children()[0]
        assert lower.output("year").expr is not None

    def test_aggregate_args_are_simple_columns(self):
        graph = build("select sum(qty * price) as v from Trans group by flid")
        groupby = graph.root.children()[0]
        (agg,) = groupby.aggregate_outputs()
        assert isinstance(agg.expr, AggCall)
        assert isinstance(agg.expr.arg, ColumnRef)

    def test_aggregates_deduplicated(self):
        graph = build(
            "select count(*) as a, count(*) as b from Trans group by flid"
        )
        groupby = graph.root.children()[0]
        assert len(groupby.aggregate_outputs()) == 1

    def test_scalar_aggregate_without_group_by(self):
        graph = build("select count(*) as n from Trans")
        groupby = graph.root.children()[0]
        assert groupby.grouping_sets == ((),)

    def test_having_without_group_by(self):
        graph = build("select count(*) as n from Trans having count(*) > 0")
        assert len(graph.root.predicates) == 1

    def test_grouping_sets_canonicalized(self):
        graph = build(
            "select flid, year(date) as year, count(*) as cnt from Trans "
            "group by grouping sets ((flid, year(date)), (year(date)), (flid, year(date)))"
        )
        groupby = graph.root.children()[0]
        assert groupby.grouping_sets == (("flid", "year"), ("year",))

    def test_rollup_expansion(self):
        graph = build(
            "select flid, faid, count(*) as cnt from Trans group by rollup(flid, faid)"
        )
        groupby = graph.root.children()[0]
        assert groupby.grouping_sets == (("flid", "faid"), ("flid",), ())

    def test_cube_expansion(self):
        graph = build(
            "select flid, faid, count(*) as cnt from Trans group by cube(flid, faid)"
        )
        groupby = graph.root.children()[0]
        assert set(groupby.grouping_sets) == {
            ("flid", "faid"), ("flid",), ("faid",), (),
        }

    def test_mixed_supergroup_cross_product(self):
        graph = build(
            "select flid, faid, count(*) as cnt from Trans group by flid, rollup(faid)"
        )
        groupby = graph.root.children()[0]
        assert groupby.grouping_sets == (("flid", "faid"), ("flid",))

    def test_grouped_out_columns_nullable(self):
        graph = build(
            "select flid, faid, count(*) as cnt from Trans group by rollup(flid, faid)"
        )
        groupby = graph.root.children()[0]
        assert groupby.output("faid").nullable
        assert groupby.output("flid").nullable

    def test_select_expression_over_grouping_column(self):
        graph = build(
            "select year(date) % 100 as y2, count(*) as cnt from Trans "
            "group by year(date) % 100"
        )
        assert graph.root.output_names == ["y2", "cnt"]


class TestNestedBlocks:
    def test_derived_table(self):
        graph = build(
            "select year, tcnt from "
            "(select year(date) as year, count(*) as tcnt from Trans "
            "group by year(date)) as t"
        )
        assert isinstance(graph.root, SelectBox)

    def test_derived_table_auto_alias(self):
        graph = build(
            "select year from (select year(date) as year from Trans)"
        )
        assert graph.root.quantifiers()[0].name.startswith("dt")

    def test_scalar_subquery_becomes_quantifier(self):
        graph = build(
            "select lid, (select count(*) from Trans) as n from Loc"
        )
        names = [q.name for q in graph.root.quantifiers()]
        assert "Loc" in names and any(n.startswith("sq") for n in names)

    def test_identical_subqueries_share_quantifier(self):
        graph = build(
            "select (select count(*) from Trans) as a, "
            "(select count(*) from Trans) as b from Loc"
        )
        subqueries = [
            q for q in graph.root.quantifiers() if q.name.startswith("sq")
        ]
        assert len(subqueries) == 1

    def test_non_aggregate_scalar_subquery_rejected(self):
        with pytest.raises(UnsupportedSqlError):
            build("select (select lid from Loc) as x from Trans")

    def test_graph_validates(self):
        graph = build(
            "select tcnt, count(*) as ycnt from "
            "(select year(date) as y, count(*) as tcnt from Trans group by year(date))"
            " group by tcnt"
        )
        graph.validate()


class TestOrderBy:
    def test_order_by_output_name(self):
        graph = build("select faid, qty from Trans order by qty desc")
        assert graph.order_by == [("qty", False)]

    def test_order_by_unknown_name(self):
        with pytest.raises(BindError):
            build("select faid from Trans order by nope")

    def test_order_by_in_subquery_rejected(self):
        with pytest.raises(UnsupportedSqlError):
            build(
                "select x from (select faid as x from Trans order by faid) as d"
            )


class TestBindErrors:
    def test_unknown_table(self):
        with pytest.raises(Exception):
            build("select x from Nope")

    def test_unknown_column(self):
        with pytest.raises(BindError):
            build("select nope from Trans")

    def test_ambiguous_column(self):
        with pytest.raises(BindError):
            build(
                "select status from Acct as a1, Acct as a2 where a1.aid = a2.aid"
            )

    def test_duplicate_alias(self):
        with pytest.raises(BindError):
            build("select 1 as one from Trans t, Loc t")

    def test_non_grouped_column_rejected(self):
        with pytest.raises(BindError):
            build("select faid, count(*) from Trans group by flid")

    def test_non_grouped_column_in_having(self):
        with pytest.raises(BindError):
            build(
                "select flid, count(*) from Trans group by flid having faid > 1"
            )

    def test_select_star_in_grouped_query(self):
        with pytest.raises(BindError):
            build("select * from Trans group by flid")

    def test_nested_aggregate_rejected(self):
        with pytest.raises(BindError):
            build("select sum(count(*)) from Trans group by flid")

    def test_aggregate_without_grouping_context(self):
        with pytest.raises(BindError):
            build("select faid from Trans where count(*) > 1")


class TestOrderByExpressions:
    def test_order_by_aggregate_expression(self):
        graph = build(
            "select faid, count(*) as n from Trans group by faid "
            "order by count(*) desc"
        )
        assert graph.order_by == [("n", False)]

    def test_order_by_scalar_expression(self):
        graph = build(
            "select faid, qty * price as v from Trans order by price * qty"
        )
        assert graph.order_by == [("v", True)]  # commutativity normalized

    def test_order_by_grouping_expression(self):
        graph = build(
            "select year(date) as y, count(*) as n from Trans "
            "group by year(date) order by year(date)"
        )
        assert graph.order_by == [("y", True)]

    def test_order_by_non_output_expression_rejected(self):
        with pytest.raises(BindError):
            build("select faid from Trans order by qty + 1")
