"""Structural fingerprints: the rewrite decision cache's key."""

from repro.qgm.fingerprint import GraphFingerprint, fingerprint


def fp(db, sql):
    return fingerprint(db.bind(sql))


class TestStability:
    def test_equal_across_fresh_binds(self, tiny_db):
        sql = (
            "select faid, year(date) as year, count(*) as cnt "
            "from Trans where qty > 1 group by faid, year(date)"
        )
        first = fp(tiny_db, sql)
        second = fp(tiny_db, sql)
        assert first == second
        assert hash(first) == hash(second)
        assert first.hexdigest() == second.hexdigest()

    def test_whitespace_and_case_noise_ignored(self, tiny_db):
        a = fp(tiny_db, "select tid from Trans where qty > 1")
        b = fp(tiny_db, "SELECT tid\nFROM trans\nWHERE qty > 1")
        assert a == b

    def test_commutative_predicate_order_ignored(self, tiny_db):
        a = fp(tiny_db, "select tid from Trans where qty > 1 and price > 2")
        b = fp(tiny_db, "select tid from Trans where price > 2 and qty > 1")
        assert a == b

    def test_is_hashable_dict_key(self, tiny_db):
        key = fp(tiny_db, "select tid from Trans")
        assert isinstance(key, GraphFingerprint)
        assert {key: 1}[fp(tiny_db, "select tid from Trans")] == 1


class TestDiscrimination:
    def test_literal_change_differs(self, tiny_db):
        a = fp(tiny_db, "select tid from Trans where qty > 1")
        b = fp(tiny_db, "select tid from Trans where qty > 2")
        assert a != b

    def test_table_change_differs(self, tiny_db):
        a = fp(tiny_db, "select lid from Loc")
        b = fp(tiny_db, "select aid from Acct")
        assert a != b

    def test_grouping_differs_from_plain_select(self, tiny_db):
        a = fp(tiny_db, "select faid, count(*) as cnt from Trans group by faid")
        b = fp(tiny_db, "select faid, qty as cnt from Trans")
        assert a != b

    def test_grouping_columns_matter(self, tiny_db):
        a = fp(tiny_db, "select faid, count(*) as cnt from Trans group by faid")
        b = fp(tiny_db, "select flid, count(*) as cnt from Trans group by flid")
        assert a != b

    def test_distinct_matters(self, tiny_db):
        a = fp(tiny_db, "select faid from Trans")
        b = fp(tiny_db, "select distinct faid from Trans")
        assert a != b

    def test_order_by_and_limit_matter(self, tiny_db):
        plain = fp(tiny_db, "select tid from Trans")
        ordered = fp(tiny_db, "select tid from Trans order by tid")
        limited = fp(tiny_db, "select tid from Trans limit 3")
        assert len({plain, ordered, limited}) == 3

    def test_predicate_presence_matters(self, tiny_db):
        a = fp(tiny_db, "select tid from Trans")
        b = fp(tiny_db, "select tid from Trans where qty > 1")
        assert a != b
