"""QGM → SQL rendering and round-trips."""

import pytest

from repro.catalog import credit_card_catalog
from repro.engine.table import tables_equal
from repro.qgm import build_graph
from repro.qgm.unparse import render_expr, to_sql
from repro.sql import parse_expression


CATALOG = credit_card_catalog()

ROUND_TRIP_QUERIES = [
    "select faid, qty from Trans where qty > 1",
    "select distinct faid from Trans",
    "select faid, state, year(date) as year, count(*) as cnt "
    "from Trans, Loc where flid = lid and country = 'USA' "
    "group by faid, state, year(date) having count(*) > 1",
    "select year(date) % 100 as y2, sum(qty * price) as v "
    "from Trans where month(date) >= 6 group by year(date) % 100",
    "select flid, year(date) as year, count(*) as cnt from Trans "
    "group by grouping sets ((flid, year(date)), (year(date)), ())",
    "select tcnt, count(*) as ycnt from "
    "(select year(date) as y, count(*) as tcnt from Trans group by year(date))"
    " group by tcnt",
    "select lid, (select count(*) from Trans) as n from Loc",
    "select count(*) as n from Trans",
    "select flid, count(*) as cnt, (select count(*) from Trans) as tot "
    "from Trans group by flid having count(*) > 1",
    "select faid, qty from Trans order by qty desc, faid",
    "select aid, qty * price * (1 - disc) as amt from Trans, Acct "
    "where faid = aid and not (qty > 3 or disc in (0.0, 0.1))",
]


class TestExpressionRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "a + b * c",
            "(a + b) * c",
            "a - b - c",
            "a - (b - c)",
            "a / b / c",
            "-a + b",
            "not (a > 1 and b < 2)",
            "a in (1, 2, 3)",
            "a not in (1)",
            "a is not null",
            "case when a > 0 then 'p' else 'n' end",
            "year(d) % 100",
            "count(distinct x)",
            "sum(a * (1 - b))",
            "'it''s'",
            "date '1991-06-15'",
            "a >= 1 and (b <= 2 or c <> 3)",
        ],
    )
    def test_expression_round_trip(self, text):
        expr = parse_expression(text)
        rendered = render_expr(expr)
        assert parse_expression(rendered) == expr

    def test_precedence_parentheses_minimal(self):
        expr = parse_expression("a + b * c")
        assert "(" not in render_expr(expr)

    def test_subtraction_right_operand_parenthesized(self):
        expr = parse_expression("a - (b - c)")
        assert render_expr(expr) == "a - (b - c)"


def _tiny_rows(db):
    import datetime

    d = datetime.date
    db.load("Loc", [(1, "SJ", "CA", "USA"), (2, "P", "X", "France")])
    db.load("PGroup", [(1, "TV")])
    db.load("Cust", [(1, "A", "CA")])
    db.load("Acct", [(10, 1, "gold")])
    db.load(
        "Trans",
        [
            (1, 1, 1, 10, d(1990, 1, 5), 2, 10.0, 0.1),
            (2, 1, 2, 10, d(1990, 7, 5), 1, 20.0, 0.0),
            (3, 1, 1, 10, d(1991, 3, 5), 3, 30.0, 0.2),
        ],
    )


class TestStatementRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_sql_round_trips_semantically(self, sql):
        from repro.engine import Database

        db = Database(credit_card_catalog())
        _tiny_rows(db)
        graph = build_graph(sql, db.catalog)
        rendered = to_sql(graph)
        original = db.execute(sql, use_summary_tables=False)
        reparsed = db.execute(rendered, use_summary_tables=False)
        assert tables_equal(original, reparsed), rendered

    def test_order_by_rendered(self):
        graph = build_graph("select faid, qty from Trans order by qty desc", CATALOG)
        assert to_sql(graph).endswith("ORDER BY qty DESC")

    def test_sandwich_collapses_to_single_block(self):
        graph = build_graph(
            "select faid, count(*) as cnt from Trans group by faid", CATALOG
        )
        rendered = to_sql(graph)
        assert rendered.count("SELECT") == 1
        assert "GROUP BY" in rendered


class TestPrettyFormatting:
    def test_breaks_at_clause_keywords(self):
        graph = build_graph(
            "select faid, count(*) as cnt from Trans "
            "where qty > 1 group by faid having count(*) > 2 "
            "order by cnt desc limit 5",
            CATALOG,
        )
        pretty = to_sql(graph, pretty=True)
        lines = pretty.splitlines()
        assert lines[0].startswith("SELECT")
        starts = [line.split()[0] for line in lines[1:]]
        assert starts == ["FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT"]

    def test_pretty_still_parses(self):
        from repro.sql import parse

        graph = build_graph(
            "select y, n from (select year(date) as y, count(*) as n "
            "from Trans group by year(date)) as d where n > 1",
            CATALOG,
        )
        parse(to_sql(graph, pretty=True))

    def test_nested_from_not_broken(self):
        graph = build_graph(
            "select y from (select year(date) as y from Trans where qty > 1) as d",
            CATALOG,
        )
        pretty = to_sql(graph, pretty=True)
        # The inner WHERE stays inside its parentheses (depth > 0).
        first_line = pretty.splitlines()[0]
        assert first_line.startswith("SELECT")
        assert "FROM" not in first_line

    def test_string_with_keyword_untouched(self):
        from repro.qgm.unparse import format_sql

        sql = "SELECT 'WHERE ORDER BY' AS s FROM T"
        formatted = format_sql(sql)
        assert "'WHERE ORDER BY'" in formatted.splitlines()[0]
