"""QGM box primitives: grouping-set canonicalization, nullability,
equivalence lifting, graph utilities."""

import pytest

from repro.catalog import credit_card_catalog
from repro.errors import ReproError
from repro.expr import AggCall, ColumnRef, FuncCall, IsNull, Literal, NaryOp
from repro.qgm import build_graph, canonical_grouping_sets, expand_cube, expand_rollup
from repro.qgm.boxes import cross_combine, expr_nullable


class TestSupergroupExpansion:
    def test_rollup(self):
        assert expand_rollup(("a", "b", "c")) == (
            ("a", "b", "c"), ("a", "b"), ("a",), (),
        )

    def test_rollup_empty(self):
        assert expand_rollup(()) == ((),)

    def test_cube(self):
        assert set(expand_cube(("a", "b"))) == {("a", "b"), ("a",), ("b",), ()}
        assert len(expand_cube(("a", "b", "c"))) == 8

    def test_cross_combine(self):
        left = (("a",),)
        right = (("b",), ())
        assert cross_combine(left, right) == (("a", "b"), ("a",))

    def test_cross_combine_dedupes_shared_columns(self):
        assert cross_combine((("a",),), (("a",),)) == (("a",),)


class TestCanonicalGroupingSets:
    def test_dedupe_and_order(self):
        result = canonical_grouping_sets(
            ("a", "b"), (("b", "a"), ("a", "b"), ("a",), ())
        )
        assert result == (("a", "b"), ("a",), ())

    def test_set_internal_order_follows_items(self):
        result = canonical_grouping_sets(("x", "y", "z"), (("z", "x"),))
        assert result == (("x", "z"),)

    def test_unknown_item_rejected(self):
        with pytest.raises(ReproError):
            canonical_grouping_sets(("a",), (("b",),))

    def test_larger_sets_first(self):
        result = canonical_grouping_sets(("a", "b", "c"), ((), ("b",), ("a", "c")))
        assert result == (("a", "c"), ("b",), ())


class TestNullability:
    def resolve_never_null(self, ref):
        return False

    def resolve_always_null(self, ref):
        return True

    def test_literal(self):
        assert expr_nullable(Literal(None), self.resolve_never_null)
        assert not expr_nullable(Literal(5), self.resolve_never_null)

    def test_column_delegates(self):
        ref = ColumnRef("t", "x")
        assert expr_nullable(ref, self.resolve_always_null)
        assert not expr_nullable(ref, self.resolve_never_null)

    def test_is_null_never_nullable(self):
        expr = IsNull(ColumnRef("t", "x"))
        assert not expr_nullable(expr, self.resolve_always_null)

    def test_count_never_nullable(self):
        assert not expr_nullable(AggCall("count"), self.resolve_always_null)

    def test_sum_follows_argument(self):
        agg = AggCall("sum", ColumnRef("t", "x"))
        assert expr_nullable(agg, self.resolve_always_null)
        assert not expr_nullable(agg, self.resolve_never_null)

    def test_function_propagates(self):
        expr = FuncCall("year", (ColumnRef("t", "d"),))
        assert expr_nullable(expr, self.resolve_always_null)

    def test_coalesce_needs_all_null(self):
        expr = FuncCall("coalesce", (ColumnRef("t", "x"), Literal(0)))
        assert not expr_nullable(expr, self.resolve_always_null)

    def test_arithmetic_any_child(self):
        expr = NaryOp("+", (ColumnRef("t", "x"), Literal(1)))
        assert expr_nullable(expr, self.resolve_always_null)


class TestGraphUtilities:
    def setup_method(self):
        self.catalog = credit_card_catalog()

    def test_boxes_topological(self):
        graph = build_graph(
            "select faid, count(*) as c from Trans group by faid", self.catalog
        )
        boxes = graph.boxes()
        positions = {id(box): i for i, box in enumerate(boxes)}
        for box in boxes:
            for child in box.children():
                assert positions[id(child)] < positions[id(box)]

    def test_base_tables(self):
        graph = build_graph(
            "select faid from Trans, Loc where flid = lid", self.catalog
        )
        assert graph.base_tables() == {"trans", "loc"}

    def test_parents_of(self):
        graph = build_graph("select faid from Trans", self.catalog)
        leaf = graph.root.children()[0]
        parents = graph.parents_of(leaf)
        assert len(parents) == 1 and parents[0][0] is graph.root

    def test_validate_catches_bad_reference(self):
        graph = build_graph("select faid from Trans", self.catalog)
        graph.root.outputs[0].expr = ColumnRef("Nope", "faid")
        with pytest.raises(ReproError):
            graph.validate()

    def test_duplicate_output_rejected(self):
        graph = build_graph("select faid from Trans", self.catalog)
        from repro.qgm.boxes import QCL

        with pytest.raises(ReproError):
            graph.root.add_output(QCL("faid", Literal(1)))

    def test_duplicate_quantifier_rejected(self):
        graph = build_graph("select faid from Trans", self.catalog)
        child = graph.root.children()[0]
        with pytest.raises(ReproError):
            graph.root.add_quantifier("Trans", child)

    def test_missing_output_raises(self):
        graph = build_graph("select faid from Trans", self.catalog)
        with pytest.raises(ReproError):
            graph.root.output("nope")

    def test_join_pairs_between(self):
        graph = build_graph(
            "select faid from Trans, Loc where flid = lid", self.catalog
        )
        trans, loc = graph.root.quantifiers()
        assert graph.root.join_pairs_between(trans, loc) == {("flid", "lid")}
