"""Greedy lattice advisor (related problem (a))."""

import pytest

from repro.asts.advisor import Advisor


ATTRIBUTES = {
    "faid": "faid",
    "flid": "flid",
    "year": "year(date)",
}


@pytest.fixture
def advisor(tiny_db):
    return Advisor(tiny_db, "Trans", ATTRIBUTES)


class TestLattice:
    def test_all_cuboids_enumerated(self, advisor):
        candidates = advisor.candidates()
        assert len(candidates) == 8  # 2^3 subsets
        sizes = {len(view.attributes) for view in candidates}
        assert sizes == {0, 1, 2, 3}

    def test_sizes_measured_exactly(self, advisor, tiny_db):
        by_attrs = {view.attributes: view for view in advisor.candidates()}
        assert by_attrs[frozenset()].rows == 1  # grand total
        assert by_attrs[frozenset({"faid"})].rows == 2
        assert by_attrs[frozenset({"year"})].rows == 3

    def test_answers_relation(self, advisor):
        by_attrs = {view.attributes: view for view in advisor.candidates()}
        top = by_attrs[frozenset({"faid", "flid", "year"})]
        small = by_attrs[frozenset({"faid"})]
        assert top.answers(small)
        assert not small.answers(top)


class TestGreedySelection:
    def test_respects_budget(self, advisor):
        result = advisor.select(budget_rows=5)
        assert result.total_rows <= 5
        assert result.selected

    def test_zero_budget_selects_nothing(self, advisor):
        assert advisor.select(budget_rows=0).selected == []

    def test_max_views_cap(self, advisor):
        result = advisor.select(budget_rows=10**6, max_views=2)
        assert len(result.selected) <= 2

    def test_benefits_monotonically_decrease(self, advisor):
        result = advisor.select(budget_rows=10**6, max_views=4)
        benefits = [benefit for _, benefit in result.steps]
        assert benefits == sorted(benefits, reverse=True)

    def test_first_pick_is_high_benefit(self, advisor, tiny_db):
        # With a generous budget the top cuboid (which answers every
        # query at 6 rows instead of 6 base rows... tiny data) is chosen
        # by total benefit; just assert determinism and a describe().
        result = advisor.select(budget_rows=10**6, max_views=3)
        text = result.describe()
        assert "total materialized rows" in text

    def test_selected_views_materialize_and_match(self, tiny_db):
        advisor = Advisor(tiny_db, "Trans", ATTRIBUTES)
        result = advisor.select(budget_rows=100, max_views=2)
        names = advisor.create_selected(result)
        assert names
        # The advisor's output plugs straight into the matcher.
        rewrite = tiny_db.rewrite(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert rewrite is not None

    def test_deterministic(self, tiny_db):
        first = Advisor(tiny_db, "Trans", ATTRIBUTES).select(100)
        second = Advisor(tiny_db, "Trans", ATTRIBUTES).select(100)
        assert [v.attributes for v in first.selected] == [
            v.attributes for v in second.selected
        ]


class TestStackedSummaries:
    def test_coarse_ast_built_from_fine_ast(self, tiny_db):
        """AST-over-AST: materializing a rollup from a finer summary."""
        tiny_db.create_summary_table(
            "Fine",
            "select faid, flid, count(*) as cnt from Trans group by faid, flid",
        )
        coarse = tiny_db.create_summary_table(
            "Coarse",
            "select faid, count(*) as cnt from Trans group by faid",
            use_summary_tables=True,
        )
        from repro.engine.table import tables_equal

        direct = tiny_db.execute(
            "select faid, count(*) as cnt from Trans group by faid",
            use_summary_tables=False,
        )
        assert tables_equal(coarse.table, direct)
