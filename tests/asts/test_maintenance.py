"""Incremental summary-table maintenance (related problem (c))."""

import datetime

import pytest

from repro.asts.maintenance import maintain_delete, maintain_insert
from repro.engine.table import tables_equal
from repro.errors import MaintenanceError


D = datetime.date
AST = (
    "select faid, year(date) as year, count(*) as cnt, sum(qty) as sqty, "
    "max(price) as hi from Trans group by faid, year(date)"
)
NEW_ROWS = [
    (101, 1, 1, 10, D(1990, 5, 1), 4, 999.0, 0.0),
    (102, 1, 2, 10, D(1993, 6, 1), 2, 5.0, 0.1),
    (103, 2, 3, 20, D(1991, 7, 1), 1, 50.0, 0.2),
]


def recomputed_copy(db, sql):
    return db.execute(sql, use_summary_tables=False)


class TestInsert:
    def test_incremental_matches_recompute(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", AST)
        report = maintain_insert(tiny_db, "Trans", NEW_ROWS)
        assert report.was_incremental("S1")
        assert tables_equal(summary.table, recomputed_copy(tiny_db, AST))

    def test_new_group_appended(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", AST)
        before = summary.row_count
        maintain_insert(tiny_db, "Trans", NEW_ROWS)
        # (10,1990) and (20,1991) already exist; only (10,1993) is new.
        assert summary.row_count == before + 1

    def test_max_updated_on_insert(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", AST)
        maintain_insert(tiny_db, "Trans", NEW_ROWS)
        rows = {(r[0], r[1]): r for r in summary.table.rows}
        assert rows[(10, 1990)][4] == 999.0

    def test_base_table_actually_loaded(self, tiny_db):
        tiny_db.create_summary_table("S1", AST)
        maintain_insert(tiny_db, "Trans", NEW_ROWS)
        assert len(tiny_db.table("Trans")) == 9

    def test_empty_insert_is_noop(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", AST)
        before = list(summary.table.rows)
        maintain_insert(tiny_db, "Trans", [])
        assert summary.table.rows == before

    def test_unaffected_summary_skipped(self, tiny_db):
        tiny_db.create_summary_table(
            "SP", "select pgid, count(*) as c from PGroup group by pgid"
        )
        report = maintain_insert(tiny_db, "Trans", NEW_ROWS)
        assert "SP" in report.unaffected


class TestDelete:
    def test_incremental_delete(self, tiny_db):
        summary = tiny_db.create_summary_table(
            "S1",
            "select faid, year(date) as year, count(*) as cnt, sum(qty) as s "
            "from Trans group by faid, year(date)",
        )
        victim = tiny_db.table("Trans").rows[0]
        report = maintain_delete(tiny_db, "Trans", [victim])
        assert report.was_incremental("S1")
        fresh = recomputed_copy(
            tiny_db,
            "select faid, year(date) as year, count(*) as cnt, sum(qty) as s "
            "from Trans group by faid, year(date)",
        )
        assert tables_equal(summary.table, fresh)

    def test_emptied_group_removed(self, tiny_db):
        summary = tiny_db.create_summary_table(
            "S1",
            "select faid, year(date) as year, count(*) as cnt "
            "from Trans group by faid, year(date)",
        )
        before = summary.row_count
        # tid 6 is the only 1992 transaction.
        victim = [r for r in tiny_db.table("Trans").rows if r[0] == 6][0]
        maintain_delete(tiny_db, "Trans", [victim])
        assert summary.row_count == before - 1

    def test_delete_with_max_recomputes(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", AST)
        victim = tiny_db.table("Trans").rows[0]
        report = maintain_delete(tiny_db, "Trans", [victim])
        assert "S1" in report.recomputed
        assert tables_equal(summary.table, recomputed_copy(tiny_db, AST))

    def test_delete_missing_row_raises(self, tiny_db):
        tiny_db.create_summary_table("S1", AST)
        ghost = (999, 1, 1, 10, D(1990, 1, 1), 1, 1.0, 0.0)
        with pytest.raises(MaintenanceError):
            maintain_delete(tiny_db, "Trans", [ghost])


class TestFallbacks:
    def check_reason(self, tiny_db, sql, needle):
        tiny_db.create_summary_table("S1", sql)
        report = maintain_insert(tiny_db, "Trans", NEW_ROWS[:1])
        assert "S1" in report.recomputed
        assert needle in report.recomputed["S1"]
        fresh = recomputed_copy(tiny_db, sql)
        assert tables_equal(tiny_db.summary_tables["s1"].table, fresh)

    def test_avg_falls_back(self, tiny_db):
        self.check_reason(
            tiny_db,
            "select faid, avg(qty) as a from Trans group by faid",
            "AVG",
        )

    def test_distinct_aggregate_falls_back(self, tiny_db):
        self.check_reason(
            tiny_db,
            "select faid, count(distinct flid) as c from Trans group by faid",
            "DISTINCT",
        )

    def test_having_falls_back(self, tiny_db):
        self.check_reason(
            tiny_db,
            "select faid, count(*) as c from Trans group by faid "
            "having count(*) > 0",
            "HAVING",
        )

    def test_self_join_falls_back(self, tiny_db):
        self.check_reason(
            tiny_db,
            "select t1.faid, count(*) as c from Trans t1, Trans t2 "
            "where t1.faid = t2.faid group by t1.faid",
            "more than once",
        )

    def test_join_view_is_maintainable(self, tiny_db):
        # Dimension joins are fine: the delta joins against full tables.
        sql = (
            "select state, count(*) as c from Trans, Loc where flid = lid "
            "group by state"
        )
        summary = tiny_db.create_summary_table("S1", sql)
        report = maintain_insert(tiny_db, "Trans", NEW_ROWS)
        assert report.was_incremental("S1")
        assert tables_equal(summary.table, recomputed_copy(tiny_db, sql))


class TestDimensionTableChanges:
    SQL = (
        "select state, count(*) as c from Trans, Loc where flid = lid "
        "group by state"
    )

    def test_insert_into_dimension_table(self, tiny_db):
        """The delta of a join view w.r.t. a dimension insert joins the
        new dimension rows against the full fact table."""
        summary = tiny_db.create_summary_table("S1", self.SQL)
        report = maintain_insert(tiny_db, "Loc", [(4, "Lyon", "XX", "France")])
        assert report.was_incremental("S1")
        fresh = recomputed_copy(tiny_db, self.SQL)
        assert tables_equal(summary.table, fresh)

    def test_insert_referenced_dimension_rows_update_groups(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", self.SQL)
        # A new city plus transactions in it.
        maintain_insert(tiny_db, "Loc", [(5, "Kyoto", "KY", "Japan")])
        report = maintain_insert(
            tiny_db,
            "Trans",
            [(50, 1, 5, 10, datetime.date(1992, 3, 3), 1, 10.0, 0.0)],
        )
        assert report.was_incremental("S1")
        assert tables_equal(summary.table, recomputed_copy(tiny_db, self.SQL))


class TestFallbackReasonsOnDelete:
    def test_min_max_delete_reason(self, tiny_db):
        sql = (
            "select faid, count(*) as cnt, max(price) as hi "
            "from Trans group by faid"
        )
        summary = tiny_db.create_summary_table("S1", sql)
        victim = tiny_db.table("Trans").rows[0]
        report = maintain_delete(tiny_db, "Trans", [victim])
        assert "S1" in report.recomputed
        assert "MAX" in report.recomputed["S1"]
        assert tables_equal(summary.table, recomputed_copy(tiny_db, sql))

    def test_missing_count_delete_reason(self, tiny_db):
        sql = "select faid, sum(qty) as s from Trans group by faid"
        summary = tiny_db.create_summary_table("S1", sql)
        victim = tiny_db.table("Trans").rows[0]
        report = maintain_delete(tiny_db, "Trans", [victim])
        assert "S1" in report.recomputed
        assert "COUNT(*)" in report.recomputed["S1"]
        assert tables_equal(summary.table, recomputed_copy(tiny_db, sql))


class TestTargetedMaintenance:
    """maintain_insert/maintain_delete accept a subset of summaries to
    maintain, leaving the rest untouched (used by deferred refresh)."""

    OTHER = "select flid, count(*) as cnt from Trans group by flid"

    def test_insert_subset_only(self, tiny_db):
        touched = tiny_db.create_summary_table("S1", AST)
        skipped = tiny_db.create_summary_table("S2", self.OTHER)
        before = list(skipped.table.rows)
        report = maintain_insert(
            tiny_db, "Trans", NEW_ROWS, summaries=[touched]
        )
        assert report.was_incremental("S1")
        assert "S2" not in report.incremental
        assert "S2" not in report.recomputed
        assert skipped.table.rows == before
        assert tables_equal(touched.table, recomputed_copy(tiny_db, AST))

    def test_delete_subset_only(self, tiny_db):
        # AST uses MAX (not deletable); use a COUNT-only view instead.
        sql = "select faid, count(*) as cnt from Trans group by faid"
        touched = tiny_db.create_summary_table("S1", sql)
        skipped = tiny_db.create_summary_table("S2", self.OTHER)
        before = list(skipped.table.rows)
        victim = tiny_db.table("Trans").rows[0]
        report = maintain_delete(
            tiny_db, "Trans", [victim], summaries=[touched]
        )
        assert report.was_incremental("S1")
        assert skipped.table.rows == before
        assert tables_equal(touched.table, recomputed_copy(tiny_db, sql))

    def test_empty_subset_is_noop(self, tiny_db):
        summary = tiny_db.create_summary_table("S1", AST)
        before = list(summary.table.rows)
        report = maintain_insert(tiny_db, "Trans", NEW_ROWS, summaries=[])
        assert not report.incremental and not report.recomputed
        assert summary.table.rows == before
