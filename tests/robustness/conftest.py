"""Chaos-suite fixtures: every test starts and ends with the
process-global fault injector fully disarmed, so a failing test can
never poison its neighbours."""

from __future__ import annotations

import pytest

from repro.testing import INJECTOR


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.disarm()
    yield INJECTOR
    INJECTOR.disarm()
