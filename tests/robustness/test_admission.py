"""Admission-control tests: the bounded semaphore + wait queue, typed
rejection, queue-overflow chaos under real concurrency, and the
``governor.admit`` fault-injection point."""

import threading

import pytest

from repro.errors import QueryRejected
from repro.governor import AdmissionController
from repro.testing import INJECTOR, InjectedFault
from repro.workloads.tpcd import QUERIES, build_tpcd_db


# ----------------------------------------------------------------------
# Controller units
# ----------------------------------------------------------------------
def test_disabled_controller_admits_everything():
    gate = AdmissionController()
    assert not gate.enabled
    with gate.admit():
        with gate.admit():
            assert gate.running == 0  # ungated: nothing tracked


def test_full_queue_rejects_immediately():
    gate = AdmissionController(max_concurrent=1, max_queue=0)
    with gate.admit():
        with pytest.raises(QueryRejected, match="admission queue full"):
            gate.admit()
    # slot released: admissible again
    with gate.admit():
        pass
    assert gate.running == 0


def test_waiter_gets_slot_when_released():
    gate = AdmissionController(
        max_concurrent=1, max_queue=1, queue_timeout_ms=5000.0
    )
    first = gate.admit()
    got_in = threading.Event()

    def contender():
        with gate.admit():
            got_in.set()

    thread = threading.Thread(target=contender)
    with first:
        thread.start()
        # the contender parks in the wait queue behind the held slot
        deadline = threading.Event()
        deadline.wait(0.05)
        assert not got_in.is_set()
        assert gate.waiting == 1
    thread.join(timeout=5.0)
    assert got_in.is_set()
    assert gate.running == 0
    assert gate.waiting == 0


def test_queue_wait_times_out_with_typed_rejection():
    gate = AdmissionController(
        max_concurrent=1, max_queue=1, queue_timeout_ms=30.0
    )
    with gate.admit():
        with pytest.raises(QueryRejected, match="timed out"):
            gate.admit()
    assert gate.waiting == 0


def test_configure_wakes_waiters():
    gate = AdmissionController(
        max_concurrent=1, max_queue=2, queue_timeout_ms=5000.0
    )
    held = gate.admit()
    admitted = threading.Event()

    def contender():
        with gate.admit():
            admitted.set()

    thread = threading.Thread(target=contender)
    thread.start()
    try:
        threading.Event().wait(0.05)
        gate.configure(max_concurrent=2)  # raised limit frees a slot
        thread.join(timeout=5.0)
        assert admitted.is_set()
    finally:
        held.__exit__(None, None, None)


# ----------------------------------------------------------------------
# Database integration
# ----------------------------------------------------------------------
@pytest.fixture()
def tpcd():
    db = build_tpcd_db(orders=60)
    yield db
    db.close()


def test_database_rejects_beyond_queue(tpcd):
    tpcd.governor.admission.configure(
        max_concurrent=1, max_queue=0, queue_timeout_ms=50.0
    )
    held = tpcd.governor.admission.admit()
    try:
        with pytest.raises(QueryRejected):
            tpcd.execute(QUERIES["q6_forecast"], use_summary_tables=False)
    finally:
        held.__exit__(None, None, None)
    # slot free again: the same query is admitted and answers
    result = tpcd.execute(QUERIES["q6_forecast"], use_summary_tables=False)
    assert len(result.columns) >= 1
    metrics = tpcd.metrics.to_dict()
    assert metrics["governor.rejected"]["value"] == 1
    assert metrics["governor.admitted"]["value"] >= 1
    assert metrics["governor.running"]["value"] == 0


def test_admission_overflow_chaos(tpcd):
    """Many threads storm a 1-slot gate: every attempt either runs to a
    correct answer or is shed with QueryRejected, the counters account
    for all of them, and the gate drains back to idle."""
    tpcd.governor.admission.configure(
        max_concurrent=1, max_queue=1, queue_timeout_ms=200.0
    )
    attempts = 12
    outcomes = []
    lock = threading.Lock()

    def worker():
        try:
            result = tpcd.execute(
                QUERIES["q6_forecast"], use_summary_tables=False
            )
            with lock:
                outcomes.append(("ok", len(result.rows)))
        except QueryRejected:
            with lock:
                outcomes.append(("rejected", None))

    threads = [threading.Thread(target=worker) for _ in range(attempts)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert len(outcomes) == attempts  # nothing hung, nothing vanished
    ok = [o for o in outcomes if o[0] == "ok"]
    assert ok, "at least the first arrival must be admitted"
    assert len({rows for _, rows in ok}) == 1  # admitted answers agree
    snapshot = tpcd.governor.admission.snapshot()
    assert snapshot["running"] == 0
    assert snapshot["waiting"] == 0
    metrics = tpcd.metrics.to_dict()
    admitted = metrics["governor.admitted"]["value"]
    rejected = metrics["governor.rejected"]["value"]
    assert admitted + rejected == attempts
    assert metrics["governor.running"]["value"] == 0
    assert metrics["governor.waiting"]["value"] == 0


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def test_admit_fault_point_fires_and_leaves_gate_clean(tpcd):
    tpcd.governor.admission.configure(max_concurrent=2, max_queue=1)
    with INJECTOR.injected("governor.admit"):
        with pytest.raises(InjectedFault):
            tpcd.execute("select orderkey from Orders")
    # the fault fired before any slot was taken: state is untouched
    assert tpcd.governor.admission.running == 0
    result = tpcd.execute("select orderkey from Orders")
    assert len(result.rows) > 0
