"""Memory-broker units and the coordinated-shedding surface.

Covers the :mod:`repro.resources.broker` accounting (charge, release,
headroom, close-drains-everything), the shedding callback protocol, the
two pressure signals (:meth:`should_defer`, :meth:`admission_blocked`)
and their consumers — the refresh scheduler deferring fallback
recomputes and admission control refusing new queries with a structured
load snapshot — plus the byte-weighted bound on the result cache.
"""

from __future__ import annotations

import datetime
import time

import pytest

from repro.engine.table import Table, tables_equal
from repro.errors import MemoryBudgetExceeded, QueryRejected
from repro.governor import AdmissionController
from repro.refresh.log import DeltaLog
from repro.refresh.policy import RefreshAge
from repro.resources.broker import DEFER_FRACTION, BROKER, MemoryBroker
from repro.server.result_cache import ResultCache, cache_key
from repro.testing import INJECTOR


@pytest.fixture(autouse=True)
def _clean_broker():
    BROKER.reset()
    yield
    BROKER.reset()


# ----------------------------------------------------------------------
# Broker and reservation accounting
# ----------------------------------------------------------------------
class TestReservation:
    def test_unlimited_reservation_tracks_but_never_denies(self):
        broker = MemoryBroker()
        reservation = broker.reserve()
        reservation.charge(1 << 40)
        assert broker.reserved() == 1 << 40
        assert reservation.peak == 1 << 40
        reservation.close()
        assert broker.reserved() == 0

    def test_per_query_limit_denial_is_typed(self):
        broker = MemoryBroker()
        reservation = broker.reserve(limit=100)
        reservation.charge(80)
        with pytest.raises(MemoryBudgetExceeded, match="QUERY MAXMEM"):
            reservation.charge(40)
        # the denied charge committed nothing
        assert reservation.used == 80
        assert broker.reserved() == 80
        reservation.close()
        assert broker.reserved() == 0

    def test_global_limit_denial_counts(self):
        broker = MemoryBroker(limit=100)
        reservation = broker.reserve()
        reservation.charge(90)
        with pytest.raises(MemoryBudgetExceeded, match="global"):
            reservation.charge(20)
        assert broker.denials == 1
        reservation.close()

    def test_release_returns_bytes_to_both_ledgers(self):
        broker = MemoryBroker(limit=100)
        reservation = broker.reserve(limit=100)
        reservation.charge(90)
        reservation.release(50)
        assert reservation.used == 40
        assert broker.reserved() == 40
        reservation.charge(50)  # fits again after the release
        reservation.close()

    def test_close_is_idempotent_and_drains(self):
        broker = MemoryBroker()
        reservation = broker.reserve()
        reservation.charge(1000)
        reservation.close()
        reservation.close()
        assert broker.reserved() == 0

    def test_headroom_is_min_of_query_and_global(self):
        broker = MemoryBroker(limit=200)
        other = broker.reserve()
        other.charge(40)
        reservation = broker.reserve(limit=80)
        reservation.charge(30)
        # query bound: 80-30=50 left; global: 200-70=130 left
        assert reservation.headroom() == 50
        other.charge(100)  # global down to 30 left: now binding
        assert reservation.headroom() == 30
        other.close()
        reservation.close()

    def test_headroom_none_means_unbounded(self):
        assert MemoryBroker().reserve().headroom() is None

    def test_peak_survives_release(self):
        broker = MemoryBroker()
        reservation = broker.reserve()
        reservation.charge(500)
        reservation.release(500)
        assert broker.peak() == 500
        assert reservation.peak == 500
        reservation.close()

    def test_set_limit_validates(self):
        broker = MemoryBroker()
        with pytest.raises(ValueError):
            broker.set_limit(0)
        broker.set_limit(None)  # clearing is always fine

    def test_mem_reserve_fault_point(self):
        broker = MemoryBroker()
        reservation = broker.reserve()
        with INJECTOR.injected("mem.reserve", times=1):
            with pytest.raises(MemoryBudgetExceeded, match="injected"):
                reservation.charge(10)
        reservation.charge(10)  # disarmed: charges normally again
        reservation.close()


# ----------------------------------------------------------------------
# Shedding and pressure signals
# ----------------------------------------------------------------------
class TestShedding:
    def test_shedder_consulted_before_denial(self):
        broker = MemoryBroker(limit=100)
        freed_requests = []

        def shedder(target):
            freed_requests.append(target)
            return target  # pretend we freed exactly what was asked

        broker.add_shedder(shedder)
        reservation = broker.reserve()
        reservation.charge(90)
        reservation.charge(20)  # over the limit — shedding saves it
        assert freed_requests == [10]
        assert broker.sheds == 1
        assert broker.shed_bytes == 10
        assert broker.denials == 0
        reservation.close()

    def test_insufficient_shedding_still_denies(self):
        broker = MemoryBroker(limit=100)
        broker.add_shedder(lambda target: 0)
        reservation = broker.reserve()
        reservation.charge(90)
        with pytest.raises(MemoryBudgetExceeded):
            reservation.charge(20)
        assert broker.denials == 1
        reservation.close()

    def test_broken_shedder_is_ignored(self):
        broker = MemoryBroker(limit=100)

        def broken(target):
            raise RuntimeError("boom")

        broker.add_shedder(broken)
        broker.add_shedder(lambda target: target)
        reservation = broker.reserve()
        reservation.charge(90)
        reservation.charge(20)  # the healthy shedder still rescues it
        reservation.close()

    def test_should_defer_at_fraction(self):
        broker = MemoryBroker(limit=1000)
        reservation = broker.reserve()
        reservation.charge(int(1000 * DEFER_FRACTION) - 1)
        assert not broker.should_defer()
        reservation.charge(1)
        assert broker.should_defer()
        assert not broker.admission_blocked()  # defer is the softer signal
        reservation.close()
        assert not broker.should_defer()

    def test_admission_blocked_at_limit(self):
        broker = MemoryBroker(limit=100)
        reservation = broker.reserve()
        reservation.charge(100)
        assert broker.admission_blocked()
        reservation.close()
        assert not broker.admission_blocked()

    def test_unlimited_broker_never_signals(self):
        broker = MemoryBroker()
        reservation = broker.reserve()
        reservation.charge(1 << 40)
        assert not broker.should_defer()
        assert not broker.admission_blocked()
        reservation.close()

    def test_snapshot_shape(self):
        broker = MemoryBroker(limit=100)
        reservation = broker.reserve()
        reservation.charge(60)
        snapshot = broker.snapshot()
        assert snapshot == {
            "limit": 100,
            "reserved_bytes": 60,
            "peak_bytes": 60,
            "denials": 0,
            "sheds": 0,
            "shed_bytes": 0,
        }
        reservation.close()


# ----------------------------------------------------------------------
# Admission control under memory pressure
# ----------------------------------------------------------------------
class TestAdmissionGating:
    def test_blocked_broker_rejects_with_load_details(self):
        gate = AdmissionController(max_concurrent=4, max_queue=2)
        BROKER.set_limit(100)
        reservation = BROKER.reserve()
        reservation.charge(100)
        try:
            with pytest.raises(QueryRejected, match="memory broker") as info:
                gate.admit()
            details = info.value.details
            assert details["reserved_bytes"] == 100
            assert details["mem_limit"] == 100
            assert details["running"] == 0
        finally:
            reservation.close()
        # pressure gone: admission resumes
        with gate.admit():
            pass

    def test_queue_full_rejection_carries_details(self):
        gate = AdmissionController(max_concurrent=1, max_queue=0)
        with gate.admit():
            with pytest.raises(QueryRejected) as info:
                gate.admit()
        details = info.value.details
        assert details["running"] == 1
        assert details["max_concurrent"] == 1
        assert details["max_queue"] == 0
        assert details["reserved_bytes"] == 0
        assert details["mem_limit"] is None

    def test_snapshot_reports_broker_state(self):
        gate = AdmissionController(max_concurrent=2, max_queue=2)
        BROKER.set_limit(256)
        snapshot = gate.snapshot()
        assert snapshot["mem_limit"] == 256
        assert snapshot["reserved_bytes"] == 0


# ----------------------------------------------------------------------
# Scheduler deferral under memory pressure
# ----------------------------------------------------------------------
class TestSchedulerDeferral:
    def test_fallback_recompute_deferred_then_applied(self, tiny_db):
        try:
            # AVG has no derivation rule, so every deferred batch for
            # this summary needs a fallback recompute — deferrable work.
            sql = "select faid, avg(qty) as a from Trans group by faid"
            summary = tiny_db.create_summary_table(
                "S1", sql, refresh_mode="deferred"
            )
            BROKER.set_limit(1000)
            pressure = BROKER.reserve()
            pressure.charge(900)  # past the defer threshold
            tiny_db.insert_rows(
                "Trans",
                [(101, 1, 1, 10, datetime.date(1990, 5, 1), 4, 999.0, 0.0)],
            )
            scheduler = tiny_db.refresh_scheduler
            deadline = time.monotonic() + 5.0
            while (
                scheduler.deferred_recomputes == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert scheduler.deferred_recomputes >= 1
            # deferral is not failure: no attempts burned, no quarantine
            assert scheduler.quarantines == 0
            # pressure eases: the deferred recompute goes through
            pressure.close()
            BROKER.reset()
            tiny_db.drain_refresh()
            assert tables_equal(
                summary.table,
                tiny_db.execute(sql, use_summary_tables=False),
            )
        finally:
            tiny_db.close()

    def test_drain_forces_recompute_through_pressure(self, tiny_db):
        try:
            sql = "select faid, avg(qty) as a from Trans group by faid"
            summary = tiny_db.create_summary_table(
                "S1", sql, refresh_mode="deferred"
            )
            BROKER.set_limit(1000)
            pressure = BROKER.reserve()
            pressure.charge(999)
            tiny_db.insert_rows(
                "Trans",
                [(101, 1, 1, 10, datetime.date(1990, 5, 1), 4, 999.0, 0.0)],
            )
            # drain() must not deadlock behind the deferral loop: the
            # determinism hook forces deferred work through pressure.
            tiny_db.drain_refresh()
            pressure.close()
            assert tables_equal(
                summary.table,
                tiny_db.execute(sql, use_summary_tables=False),
            )
        finally:
            tiny_db.close()


# ----------------------------------------------------------------------
# Byte-weighted result cache
# ----------------------------------------------------------------------
def _wide_table(rows: int) -> Table:
    return Table(["x", "s"], [(i, "v" * 32) for i in range(rows)])


class TestCacheBytes:
    def _key(self, name: str) -> tuple:
        return cache_key((name,), RefreshAge.CURRENT, True)

    def test_bytes_tracked_and_bounded(self):
        log = DeltaLog()
        one = _wide_table(10).nbytes_estimate()
        cache = ResultCache(log, max_bytes=int(one * 2.5))
        for name in ("q1", "q2", "q3"):
            assert cache.store(
                self._key(name), _wide_table(10), ["trans"],
                log.change_counts(["trans"]), RefreshAge.CURRENT,
            )
        # three entries exceed the byte budget: the oldest was evicted
        assert len(cache) == 2
        assert cache.lookup(self._key("q1")) is None
        assert cache.lookup(self._key("q3")) is not None
        assert cache.nbytes <= int(one * 2.5)

    def test_oversized_result_never_cached(self):
        log = DeltaLog()
        cache = ResultCache(log, max_bytes=64)
        stored = cache.store(
            self._key("big"), _wide_table(100), ["trans"],
            log.change_counts(["trans"]), RefreshAge.CURRENT,
        )
        assert not stored
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_shed_frees_oldest_first(self):
        log = DeltaLog()
        cache = ResultCache(log)
        one = _wide_table(10).nbytes_estimate()
        for name in ("q1", "q2", "q3"):
            cache.store(
                self._key(name), _wide_table(10), ["trans"],
                log.change_counts(["trans"]), RefreshAge.CURRENT,
            )
        freed = cache.shed(one + 1)  # needs two evictions
        assert freed == 2 * one
        assert len(cache) == 1
        assert cache.lookup(self._key("q3")) is not None
        assert cache.nbytes == one

    def test_shed_empty_cache_frees_nothing(self):
        cache = ResultCache(DeltaLog())
        assert cache.shed(1 << 20) == 0

    def test_remove_paths_settle_byte_ledger(self):
        log = DeltaLog()
        cache = ResultCache(log)
        cache.store(
            self._key("q1"), _wide_table(10), ["trans"],
            log.change_counts(["trans"]), RefreshAge.CURRENT,
        )
        assert cache.nbytes > 0
        log.note_write("Trans")
        cache.invalidate_table("Trans")
        assert len(cache) == 0
        assert cache.nbytes == 0
