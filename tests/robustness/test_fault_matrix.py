"""Seeded fault-matrix smoke: fire every injection point at least once
against a live database and assert the system survives — answers stay
correct, state stays consistent, and recovery paths engage.

This file is the CI chaos job's quick gate; the deeper per-subsystem
behavior lives in the sibling test modules.
"""

import datetime

import pytest

from repro.engine import Database
from repro.engine.persist import load_database, save_database, verify_database
from repro.engine.table import tables_equal
from repro.catalog import credit_card_catalog
from repro.testing import INJECTOR, POINTS, InjectedFault

D = datetime.date
SUMMARY_SQL = (
    "select faid, count(*) as cnt, sum(qty) as sqty from Trans group by faid"
)
QUERY = "select faid, count(*) as n from Trans group by faid"
NEW_ROW = (900, 1, 1, 10, D(1992, 4, 4), 2, 25.0, 0.1)


def checked_answer(db, retries=0):
    """Assert summary-rewritten and base-table answers agree.

    ``retries`` tolerates admission-layer faults (``governor.admit``
    fires *before* the query runs, so an injected fault there rejects
    the statement outright — the survival contract is that the *next*
    admission is clean, not that a rejected query answers).
    """
    for attempt in range(retries + 1):
        try:
            got = db.execute(QUERY)
            want = db.execute(QUERY, use_summary_tables=False)
        except InjectedFault:
            if attempt == retries:
                raise
            continue
        assert tables_equal(got, want)
        return


def exercise(db, tmp_path):
    """Touch every injection point's code path once."""
    db.create_summary_table("M1", SUMMARY_SQL, refresh_mode="deferred")
    db.insert_rows("Trans", [NEW_ROW])  # delta.append
    db.drain_refresh()  # scheduler.apply / scheduler.recompute
    checked_answer(db, retries=8)  # rewrite.match / governor.admit
    try:
        save_database(db, tmp_path / "db")  # persist.write / persist.rename
    except InjectedFault:
        pass  # a crashed save must still leave a loadable directory
    else:
        loaded = load_database(tmp_path / "db")
        try:
            verify_database(loaded)
            assert tables_equal(
                loaded.execute(QUERY),
                loaded.execute(QUERY, use_summary_tables=False),
            )
        finally:
            loaded.close()


@pytest.mark.parametrize("point", sorted(POINTS))
def test_single_fault_at_each_point_survives(tiny_db, tmp_path, point):
    with INJECTOR.injected(point):
        exercise(tiny_db, tmp_path)
    # Whatever failed, the live database still answers correctly ...
    checked_answer(tiny_db)
    tiny_db.drain_refresh()
    summary = tiny_db.summary_tables["m1"]
    if not summary.refresh.quarantined:
        assert tables_equal(
            summary.table, tiny_db.execute(SUMMARY_SQL, use_summary_tables=False)
        )
    # ... and a post-fault save/load round-trip is clean.
    save_database(tiny_db, tmp_path / "after")
    loaded = load_database(tmp_path / "after")
    try:
        assert verify_database(loaded).clean
        assert tables_equal(
            loaded.execute(QUERY), tiny_db.execute(QUERY, use_summary_tables=False)
        )
    finally:
        loaded.close()
    tiny_db.close()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_fault_storm_survives(tmp_path, seed):
    """Probabilistic faults at every point simultaneously: no matter
    which subset fires, the system never returns a wrong answer."""
    db = Database(credit_card_catalog())
    db.load("Acct", [(10, 1, "gold"), (20, 2, "silver")])
    db.load(
        "Trans",
        [
            (1, 1, 1, 10, D(1990, 1, 15), 2, 110.0, 0.2),
            (2, 2, 2, 20, D(1991, 3, 15), 3, 30.0, 0.15),
        ],
    )
    db._scheduler.retry_base_delay = 0.001
    for index, point in enumerate(sorted(POINTS)):
        INJECTOR.arm(point, probability=0.3, seed=seed * 100 + index)
    try:
        exercise(db, tmp_path)
        checked_answer(db, retries=8)
    finally:
        INJECTOR.disarm()
    # With the storm over, the system settles back to a correct state.
    db.drain_refresh()
    checked_answer(db)
    db.close()
