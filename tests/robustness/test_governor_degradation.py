"""Property test: graceful degradation never changes answers.

A query whose match phase runs out of budget (deadline expired or
pairing budget exhausted) falls back to base tables — so across the
whole TPC-D workload, for *any* budget, the governed result must be
bit-identical to a governor-off run of the same query on base tables
(and tolerance-equal to the summary-rewritten answer, which sums floats
in a different order)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.table import tables_equal
from repro.workloads.tpcd import QUERIES, build_tpcd_db, install_asts


@pytest.fixture(scope="module")
def workload():
    db = build_tpcd_db(orders=150)
    install_asts(db)
    baselines = {
        name: db.execute(sql, use_summary_tables=False)
        for name, sql in QUERIES.items()
    }
    yield db, baselines
    db.governor.match_budget = None
    db.governor.timeout_ms = None
    db.close()


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(QUERIES)),
    budget=st.integers(min_value=1, max_value=12),
)
def test_degraded_results_match_governor_off(workload, name, budget):
    db, baselines = workload
    db.governor.breaker.reset()  # each example judges the budget alone
    db.governor.match_budget = budget
    try:
        got = db.execute(QUERIES[name])
    finally:
        db.governor.match_budget = None
    want = baselines[name]
    assert got.columns == want.columns
    # Degraded executions reuse the base-table plan, so rows agree
    # exactly; a budget generous enough to finish matching legitimately
    # answers from the summary, where only float round-off may differ.
    assert tables_equal(got, want)
    if db.last_governor_event and "degraded" in db.last_governor_event:
        assert sorted(got.rows) == sorted(want.rows)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_pre_expired_timeout_degrades_every_query(workload, name):
    """The ISSUE's acceptance shape, across the whole workload: a
    timeout that cannot survive the match phase still answers — from
    base tables, bit-identically, without raising."""
    db, baselines = workload
    db.governor.breaker.reset()
    db.run_sql("SET QUERY TIMEOUT 0.000001;")
    try:
        got = db.execute(QUERIES[name])
    finally:
        db.run_sql("SET QUERY TIMEOUT OFF;")
    assert sorted(got.rows) == sorted(baselines[name].rows)
    assert "degraded to base tables" in (db.last_governor_event or "")
