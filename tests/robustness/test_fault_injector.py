"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.testing import INJECTOR, FaultInjector, InjectedFault
from repro.testing import faults


class TestArming:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            INJECTOR.arm("no.such.point")

    def test_conflicting_modes_rejected(self):
        with pytest.raises(ValueError, match="pick one"):
            INJECTOR.arm("rewrite.match", times=1, every=2)

    def test_bad_mode_values_rejected(self):
        with pytest.raises(ValueError):
            INJECTOR.arm("rewrite.match", times=0)
        with pytest.raises(ValueError):
            INJECTOR.arm("rewrite.match", every=0)
        with pytest.raises(ValueError):
            INJECTOR.arm("rewrite.match", probability=1.5)

    def test_disarm_all(self):
        INJECTOR.arm("rewrite.match")
        INJECTOR.arm("persist.write")
        INJECTOR.disarm()
        assert INJECTOR.armed == frozenset()


class TestFiring:
    def test_disabled_fire_is_noop(self):
        faults.fire("rewrite.match")  # nothing armed anywhere

    def test_unarmed_point_passes_while_other_armed(self):
        INJECTOR.arm("persist.write")
        faults.fire("rewrite.match")  # different point: no raise

    def test_fail_once_disarms_itself(self):
        INJECTOR.arm("rewrite.match")
        with pytest.raises(InjectedFault) as excinfo:
            faults.fire("rewrite.match")
        assert excinfo.value.point == "rewrite.match"
        faults.fire("rewrite.match")  # second traversal passes
        assert "rewrite.match" not in INJECTOR.armed

    def test_fail_k_times(self):
        INJECTOR.arm("rewrite.match", times=3)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                faults.fire("rewrite.match")
        faults.fire("rewrite.match")

    def test_fail_every_n(self):
        spec = INJECTOR.arm("rewrite.match", every=3)
        outcomes = []
        for _ in range(9):
            try:
                faults.fire("rewrite.match")
                outcomes.append(False)
            except InjectedFault:
                outcomes.append(True)
        assert outcomes == [False, False, True] * 3
        assert spec.hits == 9 and spec.triggers == 3

    def test_seeded_probability_is_deterministic(self):
        def pattern(seed):
            INJECTOR.disarm()
            INJECTOR.arm("rewrite.match", probability=0.5, seed=seed)
            result = []
            for _ in range(32):
                try:
                    faults.fire("rewrite.match")
                    result.append(False)
                except InjectedFault:
                    result.append(True)
            return result

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert any(pattern(7)) and not all(pattern(7))

    def test_custom_error_factory(self):
        INJECTOR.arm("persist.write", error=lambda point: OSError(point))
        with pytest.raises(OSError):
            faults.fire("persist.write")


class TestContextManager:
    def test_injected_disarms_on_exit(self):
        with INJECTOR.injected("rewrite.match", every=2) as spec:
            assert "rewrite.match" in INJECTOR.armed
            faults.fire("rewrite.match")
            assert spec.hits == 1
        assert "rewrite.match" not in INJECTOR.armed

    def test_injected_disarms_on_exception(self):
        with pytest.raises(RuntimeError):
            with INJECTOR.injected("rewrite.match"):
                raise RuntimeError("boom")
        assert "rewrite.match" not in INJECTOR.armed


class TestIsolation:
    def test_private_injector_does_not_touch_global(self):
        private = FaultInjector()
        private.arm("rewrite.match")
        assert "rewrite.match" not in INJECTOR.armed
        with pytest.raises(InjectedFault):
            private.fire("rewrite.match")
