"""Scheduler fault tolerance: transient failures retry with backoff,
persistent failures quarantine the summary, quarantined summaries never
serve queries, and a successful manual refresh re-admits them."""

import datetime
import io

import pytest

from repro.engine.table import tables_equal
from repro.refresh.policy import RefreshAge
from repro.testing import INJECTOR

D = datetime.date
SUMMARY_SQL = (
    "select faid, count(*) as cnt, sum(qty) as sqty from Trans group by faid"
)
AVG_SQL = "select faid, avg(qty) as a from Trans group by faid"
NEW_ROWS = [
    (101, 1, 1, 10, D(1990, 5, 1), 4, 999.0, 0.0),
    (102, 1, 2, 10, D(1993, 6, 1), 2, 5.0, 0.1),
]


def recompute(db, sql):
    return db.execute(sql, use_summary_tables=False)


@pytest.fixture
def fast_db(tiny_db):
    """A database whose scheduler retries quickly (tests stay snappy
    even when a backoff ladder runs to quarantine)."""
    tiny_db._scheduler.retry_base_delay = 0.001
    yield tiny_db
    tiny_db.close()


class TestRetry:
    def test_transient_failure_retries_to_success(self, fast_db):
        summary = fast_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        with INJECTOR.injected("scheduler.apply", times=2):
            fast_db.insert_rows("Trans", NEW_ROWS)
            fast_db.drain_refresh()
        scheduler = fast_db.refresh_scheduler
        assert not summary.refresh.quarantined
        assert summary.refresh.pending_deltas == 0
        assert tables_equal(summary.table, recompute(fast_db, SUMMARY_SQL))
        assert scheduler.retries_scheduled == 2
        assert scheduler.quarantines == 0
        assert len(scheduler.errors) == 2
        # success cleared the failure history
        assert scheduler.pending_retries == 0

    def test_error_ring_buffer_is_bounded(self, fast_db):
        scheduler = fast_db.refresh_scheduler
        limit = scheduler.errors.maxlen
        assert limit is not None
        for index in range(limit + 25):
            scheduler.errors.append(f"error {index}")
        assert len(scheduler.errors) == limit
        assert scheduler.errors[0] == "error 25"  # oldest evicted


class TestQuarantine:
    def test_persistent_failure_quarantines(self, fast_db):
        summary = fast_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        with INJECTOR.injected("scheduler.apply", every=1):
            fast_db.insert_rows("Trans", NEW_ROWS)
            fast_db.drain_refresh()
        scheduler = fast_db.refresh_scheduler
        assert summary.refresh.quarantined
        assert "refresh failed" in summary.refresh.quarantine_reason
        assert scheduler.quarantines == 1
        assert scheduler.retries_scheduled == scheduler.max_attempts - 1
        stats = fast_db.rewrite_stats()
        assert stats["refresh_quarantines"] == 1
        assert stats["quarantined_summaries"] == 1

    def test_quarantined_summary_never_routes(self, fast_db):
        fast_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        with INJECTOR.injected("scheduler.apply", every=1):
            fast_db.insert_rows("Trans", NEW_ROWS)
            fast_db.drain_refresh()
        # At every freshness tolerance — even ANY — the quarantined
        # summary is excluded, and answers come correctly from base.
        for tolerance in (RefreshAge.CURRENT, RefreshAge(5), RefreshAge.ANY):
            assert fast_db.rewrite(SUMMARY_SQL, tolerance=tolerance) is None
            result = fast_db.execute(SUMMARY_SQL, tolerance=tolerance)
            assert tables_equal(result, recompute(fast_db, SUMMARY_SQL))
        assert fast_db.rewrite_stats()["quarantined_rejections"] >= 3

    def test_recompute_fallback_fault_quarantines(self, fast_db):
        # AVG is not self-maintainable → incremental apply refuses →
        # recompute fallback runs — and that's what we poison.
        summary = fast_db.create_summary_table(
            "S1", AVG_SQL, refresh_mode="deferred"
        )
        with INJECTOR.injected("scheduler.recompute", every=1):
            fast_db.insert_rows("Trans", NEW_ROWS)
            fast_db.drain_refresh()
        assert summary.refresh.quarantined
        assert tables_equal(
            fast_db.execute(AVG_SQL), recompute(fast_db, AVG_SQL)
        )

    def test_quarantine_surfaces_in_explain(self, fast_db):
        fast_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        with INJECTOR.injected("scheduler.apply", every=1):
            fast_db.insert_rows("Trans", NEW_ROWS)
            fast_db.drain_refresh()
        text = fast_db.explain(SUMMARY_SQL)
        assert "quarantined summaries excluded: 1" in text

    def test_quarantine_surfaces_in_refresh_command(self, fast_db):
        from repro.cli import Shell

        fast_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        with INJECTOR.injected("scheduler.apply", every=1):
            fast_db.insert_rows("Trans", NEW_ROWS)
            fast_db.drain_refresh()
        out = io.StringIO()
        shell = Shell(fast_db, out=out)
        shell.handle_line("\\refresh")
        text = out.getvalue()
        assert "QUARANTINED" in text
        assert "1 quarantine(s)" in text

    def test_refresh_status_reports_quarantine(self, fast_db):
        fast_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        with INJECTOR.injected("scheduler.apply", every=1):
            fast_db.insert_rows("Trans", NEW_ROWS)
            fast_db.drain_refresh()
        (entry,) = fast_db.refresh_status()
        assert entry["quarantined"] is True
        assert "refresh failed" in entry["quarantine_reason"]


class TestReadmission:
    def _poison_and_quarantine(self, db):
        db.create_summary_table("S1", SUMMARY_SQL, refresh_mode="deferred")
        with INJECTOR.injected("scheduler.apply", every=1):
            db.insert_rows("Trans", NEW_ROWS)
            db.drain_refresh()
        assert db.summary_tables["s1"].refresh.quarantined

    def test_manual_refresh_readmits(self, fast_db):
        self._poison_and_quarantine(fast_db)
        fast_db.run_sql("refresh summary table S1")
        summary = fast_db.summary_tables["s1"]
        assert not summary.refresh.quarantined
        assert summary.refresh.quarantine_reason == ""
        assert tables_equal(summary.table, recompute(fast_db, SUMMARY_SQL))
        # ... and it serves queries again.
        result = fast_db.rewrite(SUMMARY_SQL)
        assert result is not None
        assert result.summary_tables[0].name == "S1"

    def test_readmitted_summary_maintains_again(self, fast_db):
        self._poison_and_quarantine(fast_db)
        fast_db.refresh_summary_tables(["S1"])
        summary = fast_db.summary_tables["s1"]
        # With the fault gone and history reset, deferred maintenance
        # works normally after re-admission.
        fast_db.insert_rows(
            "Trans", [(103, 2, 3, 20, D(1991, 7, 1), 1, 50.0, 0.2)]
        )
        fast_db.drain_refresh()
        assert not summary.refresh.quarantined
        assert tables_equal(summary.table, recompute(fast_db, SUMMARY_SQL))

    def test_degraded_ingest_when_delta_log_fails(self, fast_db):
        # A failing delta log must not lose maintenance work: ingest
        # degrades to recomputing affected deferred summaries inline.
        summary = fast_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        with INJECTOR.injected("delta.append", every=1):
            report = fast_db.insert_rows("Trans", NEW_ROWS)
        assert "S1" in report.recomputed
        assert "S1" not in report.deferred
        assert summary.refresh.pending_deltas == 0
        assert len(fast_db.delta_log) == 0  # failed append left no batch
        assert tables_equal(summary.table, recompute(fast_db, SUMMARY_SQL))
        # ... and it can still serve queries immediately.
        result = fast_db.rewrite(SUMMARY_SQL)
        assert result is not None
        # The degradation is surfaced in the scheduler's error ring.
        assert any(
            "delta" in entry for entry in fast_db.refresh_scheduler.errors
        )

    def test_ingest_skips_quarantined_summary(self, fast_db):
        self._poison_and_quarantine(fast_db)
        before = fast_db.delta_log.lsn
        report = fast_db.insert_rows(
            "Trans", [(104, 2, 3, 20, D(1991, 8, 1), 1, 50.0, 0.2)]
        )
        # No staging for a quarantined summary: re-admission recomputes,
        # so delta rows would only pin the log. The write still advances
        # the table's high-water LSN (note_write) so freshness consumers
        # — the staleness gate, the server's result cache — see it.
        assert "S1" in report.unaffected
        assert fast_db.delta_log.lsn > before
        assert fast_db.delta_log.high_water("trans") == fast_db.delta_log.lsn
        assert len(fast_db.delta_log) == 0
