"""Query-governor tests: the Budget/Deadline/token primitives, the
``SET QUERY`` grammar, the degradation ladder (timeout during match
falls back to base tables; timeout during execute kills the query),
MAXROWS, and the per-shape circuit breaker."""

import io

import pytest

from repro.cli import Shell
from repro.errors import (
    BudgetExhausted,
    MatchBudgetExceeded,
    SqlSyntaxError,
    QueryCancelled,
    QueryTimeout,
)
from repro.governor import (
    CancellationToken,
    CircuitBreaker,
    Deadline,
    QueryBudget,
    activate,
    current,
)
from repro.sql.statements import (
    SetQueryMaxRows,
    SetQueryTimeout,
    parse_statement,
)
from repro.engine.table import tables_equal
from repro.workloads.tpcd import QUERIES, build_tpcd_db, install_asts


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_token_is_one_shot_and_keeps_reason():
    token = CancellationToken()
    token.check()  # not cancelled: no-op
    assert not token.cancelled
    token.cancel("operator asked")
    with pytest.raises(QueryCancelled, match="operator asked"):
        token.check()


def test_deadline_uses_injected_clock():
    clock = FakeClock()
    deadline = Deadline(100.0, clock=clock)
    assert not deadline.expired
    assert deadline.remaining_ms() == pytest.approx(100.0)
    clock.now = 0.2
    assert deadline.expired
    assert deadline.remaining_ms() == 0.0
    deadline.disarm()
    assert not deadline.expired  # disarmed deadlines never fire


def test_ticks_batch_until_check_every():
    token = CancellationToken()
    budget = QueryBudget(token=token, check_every=4)
    token.cancel("late")
    budget.tick(1, "execute")
    budget.tick(1, "execute")
    budget.tick(1, "execute")  # 3 < 4: no checkpoint yet
    with pytest.raises(QueryCancelled):
        budget.tick(1, "execute")
    assert budget.phase_ticks["execute"] == 4


def test_deadline_never_kills_parse_or_bind():
    clock = FakeClock()
    budget = QueryBudget(deadline=Deadline(1.0, clock=clock), check_every=1)
    clock.now = 1.0  # long expired
    budget.tick(1, "parse")
    budget.tick(1, "bind")
    with pytest.raises(MatchBudgetExceeded):
        budget.checkpoint("match")
    with pytest.raises(QueryTimeout):
        budget.checkpoint("execute")


def test_enter_match_degrades_a_pre_expired_deadline():
    clock = FakeClock()
    budget = QueryBudget(deadline=Deadline(1.0, clock=clock))
    clock.now = 5.0
    with pytest.raises(MatchBudgetExceeded):
        budget.enter_match()
    budget.mark_degraded("expired before match")
    assert budget.degraded
    assert not budget.deadline.armed
    budget.checkpoint("execute")  # disarmed: execution runs to completion


def test_match_pairing_budget_exhausts():
    budget = QueryBudget(match_budget=2)
    budget.tick_match()
    budget.tick_match()
    with pytest.raises(MatchBudgetExceeded, match="match budget of 2"):
        budget.tick_match()


def test_check_rows_is_a_high_water_mark():
    budget = QueryBudget(max_rows=10)
    budget.check_rows(10, "joined rows")
    with pytest.raises(BudgetExhausted, match="MAXROWS 10"):
        budget.check_rows(11, "joined rows")


def test_scope_activation_nests_and_restores():
    assert current() is None
    outer = QueryBudget()
    inner = QueryBudget()
    with activate(outer):
        assert current() is outer
        with activate(inner):
            assert current() is inner
        assert current() is outer
    assert current() is None
    with activate(None):  # passthrough: no scope created
        assert current() is None


# ----------------------------------------------------------------------
# SET QUERY grammar
# ----------------------------------------------------------------------
def test_set_query_timeout_parses():
    assert parse_statement("set query timeout 250") == SetQueryTimeout(250.0)
    assert parse_statement("SET QUERY TIMEOUT OFF") == SetQueryTimeout(None)


def test_set_query_maxrows_parses():
    assert parse_statement("set query maxrows 1000") == SetQueryMaxRows(1000)
    assert parse_statement("SET QUERY MAXROWS OFF") == SetQueryMaxRows(None)


@pytest.mark.parametrize(
    "sql",
    [
        "set query timeout -5",
        "set query timeout zero",
        "set query maxrows 0.5",
        "set query maxrows -1",
        "set query bogus 1",
    ],
)
def test_set_query_rejects_bad_values(sql):
    with pytest.raises(SqlSyntaxError):
        parse_statement(sql)


@pytest.fixture(scope="module")
def tpcd():
    db = build_tpcd_db(orders=200)
    install_asts(db)
    yield db
    db.close()


def test_set_query_round_trips_through_run_sql(tpcd):
    assert "250" in tpcd.run_sql("SET QUERY TIMEOUT 250;")
    assert tpcd.governor.timeout_ms == 250.0
    assert "disabled" in tpcd.run_sql("SET QUERY TIMEOUT OFF;")
    assert tpcd.governor.timeout_ms is None
    assert "500" in tpcd.run_sql("SET QUERY MAXROWS 500;")
    assert tpcd.governor.max_rows == 500
    assert "disabled" in tpcd.run_sql("SET QUERY MAXROWS OFF;")
    assert tpcd.governor.max_rows is None


# ----------------------------------------------------------------------
# Degradation ladder, end to end
# ----------------------------------------------------------------------
def test_tiny_timeout_degrades_never_errors():
    """The acceptance criterion: a timeout that expires during (or
    before) the match phase completes via base tables — it never hangs
    and never raises."""
    db = build_tpcd_db(orders=120)
    install_asts(db)
    want = db.execute(QUERIES["q1_pricing"], use_summary_tables=False)
    db.run_sql("SET QUERY TIMEOUT 0.000001;")
    got = db.execute(QUERIES["q1_pricing"])  # must not raise
    assert sorted(got.rows) == sorted(want.rows)
    assert db.last_governor_event is not None
    assert "degraded to base tables" in db.last_governor_event
    assert db.metrics.to_dict()["governor.degradations"]["value"] >= 1
    db.close()


def test_match_budget_degradation_traces_budget_exhausted():
    db = build_tpcd_db(orders=120)
    install_asts(db)
    db.governor.match_budget = 1
    out = db.run_sql("EXPLAIN ANALYZE " + QUERIES["q1_pricing"].rstrip(";\n") + ";")
    assert "budget-exhausted" in out
    assert "ran on base tables" in out
    assert "-- governor --" in out
    db.close()


def test_execute_phase_timeout_raises_query_timeout():
    db = build_tpcd_db(orders=600)
    db.run_sql("SET QUERY TIMEOUT 0.001;")
    with pytest.raises(QueryTimeout, match="expired during execute"):
        db.execute(QUERIES["q6_forecast"], use_summary_tables=False)
    assert db.metrics.to_dict()["governor.timeouts"]["value"] == 1
    db.close()


def test_maxrows_kills_oversized_materialization():
    db = build_tpcd_db(orders=600)
    db.run_sql("SET QUERY MAXROWS 50;")
    with pytest.raises(BudgetExhausted, match="MAXROWS 50"):
        db.execute("select orderkey, ocustkey from Orders", use_summary_tables=False)
    assert db.metrics.to_dict()["governor.maxrows_exceeded"]["value"] == 1
    db.close()


def test_caller_token_cancels_without_any_limits_set():
    db = build_tpcd_db(orders=600)
    token = CancellationToken()
    token.cancel("shutting down")
    with pytest.raises(QueryCancelled, match="shutting down"):
        db.execute(
            QUERIES["q6_forecast"], use_summary_tables=False, token=token
        )
    assert db.metrics.to_dict()["governor.cancellations"]["value"] == 1
    db.close()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_opens_probes_and_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=2, cooldown_s=10.0, clock=clock)
    assert not breaker.should_skip("shape")
    breaker.record_timeout("shape")
    assert not breaker.should_skip("shape")  # 1 < threshold
    breaker.record_timeout("shape")
    assert breaker.should_skip("shape")  # open
    clock.now = 5.0
    assert breaker.should_skip("shape")  # still cooling down
    clock.now = 10.0
    assert not breaker.should_skip("shape")  # half-open probe runs
    breaker.record_timeout("shape")  # probe failed: re-open
    assert breaker.should_skip("shape")
    clock.now = 25.0
    assert not breaker.should_skip("shape")
    breaker.record_success("shape")  # probe succeeded: closed
    assert not breaker.active
    assert breaker.snapshot()["tracked"] == 0


def test_breaker_skips_matching_after_consecutive_degradations():
    db = build_tpcd_db(orders=120)
    install_asts(db)
    clock = FakeClock()
    db.governor.breaker = CircuitBreaker(threshold=2, cooldown_s=10.0, clock=clock)
    db.governor.match_budget = 1
    base = db.execute(QUERIES["q1_pricing"], use_summary_tables=False)
    for _ in range(3):
        got = db.execute(QUERIES["q1_pricing"])
        assert sorted(got.rows) == sorted(base.rows)
    assert db.governor.breaker.snapshot()["open"] == 1
    assert db.metrics.to_dict()["governor.breaker_skips"]["value"] >= 1
    assert "circuit breaker open" in db.last_governor_event
    out = db.run_sql("EXPLAIN ANALYZE " + QUERIES["q1_pricing"].rstrip(";\n") + ";")
    assert "circuit-open" in out
    # cool-down elapses and the shape behaves again: circuit closes
    db.governor.match_budget = None
    db.governor.timeout_ms = None
    clock.now = 20.0
    rewritten = db.execute(QUERIES["q1_pricing"])
    assert tables_equal(rewritten, base)
    assert db.governor.breaker.snapshot()["tracked"] == 0
    db.close()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_governor_cli_command():
    db = build_tpcd_db(orders=50)
    out = io.StringIO()
    shell = Shell(database=db, out=out)
    shell.handle_line("SET QUERY TIMEOUT 750;")
    shell.handle_line("\\governor")
    text = out.getvalue()
    assert "query governor:" in text
    assert "query timeout   750 ms" in text
    assert "circuit breaker" in text
    assert "admission       off" in text
    db.close()
