"""Chaos tests for the governor's scheduler integration: cooperative
cancellation mid-refresh (forced recompute convergence), load-shedding
shutdown, ``REFRESH`` preemption plumbing, the snapshot-and-swap metrics
reset, and the scheduler's spurious-wakeup/batch-window timing fix."""

import datetime
import threading
import time

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.engine.table import tables_equal
from repro.errors import QueryCancelled
from repro.obs.metrics import MetricsRegistry
from repro.refresh.scheduler import RefreshScheduler
from repro.testing import INJECTOR

D = datetime.date
#: AVG is not self-maintainable, so every deferred refresh of this
#: summary takes the full-recompute path — which scans all of Trans
#: through the governed executor, guaranteeing ``executor.tick`` fires.
AVG_SUMMARY = "select faid, avg(qty) as aq, count(*) as cnt from Trans group by faid"


def big_trans_db(rows=1500):
    db = Database(credit_card_catalog())
    db.load("Acct", [(10, 1, "gold"), (20, 2, "silver")])
    db.load(
        "Trans",
        [
            (
                i,
                1,
                1,
                10 if i % 2 else 20,
                D(1995, 1 + i % 12, 1 + i % 28),
                2,
                float(i % 97),
                0.1,
            )
            for i in range(1, rows + 1)
        ],
    )
    return db


NEW_ROW = (9001, 1, 1, 10, D(1995, 5, 5), 2, 44.0, 0.1)


# ----------------------------------------------------------------------
# Cancellation mid-refresh
# ----------------------------------------------------------------------
def test_cancelled_refresh_forces_recompute_and_converges():
    db = big_trans_db()
    db.create_summary_table("M1", AVG_SUMMARY, refresh_mode="deferred")
    # The first recompute pass is cancelled at its first executor tick;
    # the worker must treat that as a yield (not a failure), flag the
    # summary for a forced recompute, requeue it, and converge.
    INJECTOR.arm("executor.tick", times=1, error=QueryCancelled)
    db.insert_rows("Trans", [NEW_ROW])
    db.drain_refresh()
    INJECTOR.disarm()
    scheduler = db._scheduler
    assert any("refresh cancelled" in err for err in scheduler.errors)
    assert scheduler.last_fallbacks["M1"] == (
        "recompute forced after cancelled refresh"
    )
    assert not scheduler._force_recompute  # satisfied by the second pass
    assert scheduler.quarantines == 0  # a cancel is not a failure
    want = db.execute(AVG_SUMMARY, use_summary_tables=False)
    assert tables_equal(db.summary_tables["m1"].table, want)
    db.close()


def test_load_shedding_stop_discards_queue_promptly():
    db = big_trans_db(rows=64)
    db.create_summary_table("M1", AVG_SUMMARY, refresh_mode="deferred")
    # poison the apply/recompute so the refresh climbs the retry ladder
    INJECTOR.arm("scheduler.recompute", times=50)
    db.insert_rows("Trans", [NEW_ROW])
    scheduler = db._scheduler
    deadline = time.monotonic() + 5.0
    while scheduler.pending_retries == 0 and time.monotonic() < deadline:
        time.sleep(0.005)
    INJECTOR.disarm()
    started = time.monotonic()
    scheduler.stop(cancel_inflight=True)
    assert time.monotonic() - started < 5.0  # never blocks behind retries
    assert scheduler.queued == 0
    assert scheduler.pending_retries == 0
    db.close()


def test_interrupt_filters_by_summary_name():
    db = big_trans_db(rows=32)
    scheduler = db._scheduler
    assert scheduler.interrupt() is False  # nothing in flight
    from repro.governor import CancellationToken

    token = CancellationToken()
    with scheduler._condition:
        scheduler._inflight_token = token
        scheduler._inflight_name = "m1"
    try:
        assert scheduler.interrupt(["Other"]) is False
        assert not token.cancelled
        assert scheduler.interrupt(["M1"]) is True
        assert token.cancelled
        assert token.reason == "refresh interrupted"
    finally:
        with scheduler._condition:
            scheduler._inflight_token = None
            scheduler._inflight_name = None
    db.close()


def test_manual_refresh_preempts_and_recomputes():
    """REFRESH SUMMARY TABLE interrupts a same-name background refresh
    (here: one flagged mid-cancel) and leaves the summary fresh."""
    db = big_trans_db()
    db.create_summary_table("M1", AVG_SUMMARY, refresh_mode="deferred")
    INJECTOR.arm("executor.tick", times=1, error=QueryCancelled)
    db.insert_rows("Trans", [NEW_ROW])
    db.drain_refresh()
    INJECTOR.disarm()
    db.refresh_summary_tables(["M1"])  # must not block or raise
    want = db.execute(AVG_SUMMARY, use_summary_tables=False)
    assert tables_equal(db.summary_tables["m1"].table, want)
    assert not db._scheduler._force_recompute
    db.close()


# ----------------------------------------------------------------------
# Metrics reset vs. a racing worker (snapshot-and-swap)
# ----------------------------------------------------------------------
def test_metrics_reset_never_loses_racing_increments():
    registry = MetricsRegistry()
    counter = registry.counter("scheduler_refreshes_applied", "test")
    increments = 20000

    def hammer():
        for _ in range(increments):
            counter.inc()

    worker = threading.Thread(target=hammer)
    worker.start()
    recovered = 0
    while worker.is_alive():
        snapshot = registry.reset()
        recovered += snapshot["scheduler_refreshes_applied"]["value"]
    worker.join()
    recovered += registry.reset()["scheduler_refreshes_applied"]["value"]
    # every inc lands in exactly one epoch: nothing lost, nothing doubled
    assert recovered == increments


def test_scheduler_counters_survive_mid_apply_reset():
    """\\metrics reset while the worker is applying refreshes must not
    resurrect pre-reset values or corrupt the registry."""
    db = big_trans_db(rows=64)
    db.create_summary_table(
        "M1",
        "select faid, count(*) as cnt, sum(qty) as sq from Trans group by faid",
        refresh_mode="deferred",
    )
    stop = threading.Event()

    def resetter():
        while not stop.is_set():
            db.metrics.reset()

    thread = threading.Thread(target=resetter)
    thread.start()
    try:
        for i in range(20):
            db.insert_rows("Trans", [(20000 + i, 1, 1, 10, D(1995, 6, 6), 2, 1.0, 0.1)])
            db.drain_refresh()
    finally:
        stop.set()
        thread.join()
    want = db.execute(
        "select faid, count(*) as cnt, sum(qty) as sq from Trans group by faid",
        use_summary_tables=False,
    )
    assert tables_equal(db.summary_tables["m1"].table, want)
    # the registry still coheres after the storm of swaps
    value = db.metrics.to_dict()["scheduler_refreshes_applied"]["value"]
    assert value >= 0
    db.close()


# ----------------------------------------------------------------------
# Spurious wakeups and the batch-window cap
# ----------------------------------------------------------------------
def test_wait_timeout_recomputes_remaining_time():
    db = big_trans_db(rows=8)
    scheduler = db._scheduler
    with scheduler._condition:
        scheduler._retries["m1"] = time.monotonic() + 0.5
    first = scheduler._wait_timeout()
    time.sleep(0.1)
    second = scheduler._wait_timeout()
    assert second < first  # a re-entered wait sleeps only the remainder
    with scheduler._condition:
        scheduler._retries.clear()
    db.close()


def test_batch_window_never_delays_a_due_retry():
    """A long batch window must be capped by the next retry deadline —
    otherwise a queued ingest burst makes every pending retry wait the
    full window before being considered."""
    db = big_trans_db(rows=64)
    scheduler = db._scheduler
    scheduler.retry_base_delay = 0.4
    db.create_summary_table("M1", AVG_SUMMARY, refresh_mode="deferred")
    # M1's first refresh fails once -> a retry is scheduled ~0.4s out
    # (the batch window is still its tiny default here, so the failing
    # pass itself runs promptly)
    INJECTOR.arm("scheduler.recompute", times=1)
    db.insert_rows("Trans", [NEW_ROW])
    deadline = time.monotonic() + 5.0
    while scheduler.pending_retries == 0 and time.monotonic() < deadline:
        time.sleep(0.005)
    INJECTOR.disarm()
    assert scheduler.pending_retries == 1
    # Now raise the window and keep the queue busy: the worker's batch
    # sleep must be capped by the retry's remaining delay, so the retry
    # still lands at ~0.4s — uncapped it would wait the full 2s.
    started = time.monotonic()
    scheduler.batch_window = 2.0
    db.insert_rows(
        "Trans", [(30000, 1, 1, 20, D(1995, 7, 7), 2, 2.0, 0.1)]
    )
    while scheduler.pending_retries and time.monotonic() < deadline:
        time.sleep(0.005)
    elapsed = time.monotonic() - started
    assert scheduler.pending_retries == 0, "retry starved by batch window"
    assert elapsed < 1.5  # far below the uncapped 2s window
    scheduler.batch_window = 0.005
    db.drain_refresh()
    want = db.execute(AVG_SUMMARY, use_summary_tables=False)
    assert tables_equal(db.summary_tables["m1"].table, want)
    db.close()
