"""Crash-safe persistence: injected crashes mid-save, torn log tails,
generation mismatches — load + verify always recovers to a state where
base tables are intact and every summary is consistent or quarantined.
"""

import datetime
import json

import pytest

from repro.asts.maintenance import MaintenanceReport
from repro.engine.persist import (
    _frame,
    load_database,
    save_database,
    verify_database,
)
from repro.engine.table import tables_equal
from repro.errors import ReproError
from repro.testing import INJECTOR, InjectedFault

SUMMARY_SQL = "select faid, count(*) as cnt, sum(qty) as sqty from Trans group by faid"
NEW_ROW = (301, 1, 1, 10, datetime.date(1994, 3, 3), 1, 9.0, 0.0)


def stage(database, row=NEW_ROW):
    """Append a base row and stage it for deferred maintenance without
    waking the scheduler (keeps the delta pending deterministically)."""
    with database._maintenance_lock:
        database.table("Trans").rows.append(row)
        database._stage_deferred("Trans", [row], +1, MaintenanceReport())


class TestCrashMidSave:
    @pytest.mark.parametrize("point", ["persist.write", "persist.rename"])
    def test_crash_leaves_previous_save_loadable(self, tiny_db, tmp_path, point):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")

        # Mutate, then crash partway through the second save. The fault
        # fires on the 3rd file so some files are already re-written.
        tiny_db.insert_rows("Trans", [NEW_ROW])
        with INJECTOR.injected(point, every=3):
            with pytest.raises(InjectedFault):
                save_database(tiny_db, tmp_path / "db")

        loaded = load_database(target)
        report = verify_database(loaded)
        # Whatever generation each file landed on, recovery leaves every
        # summary consistent with the loaded base tables.
        assert not report.quarantined
        for summary in loaded.summary_tables.values():
            assert tables_equal(
                summary.table,
                loaded.execute(summary.sql, use_summary_tables=False),
            )
        loaded.close()
        tiny_db.close()

    @pytest.mark.parametrize("point", ["persist.write", "persist.rename"])
    def test_crash_on_first_save_keeps_directory_unusable_not_corrupt(
        self, tiny_db, tmp_path, point
    ):
        # Crash before the manifest commit of the very first save: the
        # directory has no catalog.json, so loading reports that plainly.
        with INJECTOR.injected(point):
            with pytest.raises(InjectedFault):
                save_database(tiny_db, tmp_path / "db")
        with pytest.raises(ReproError, match="does not contain"):
            load_database(tmp_path / "db")

    def test_generation_mismatch_rebuilds_summary(self, tiny_db, tmp_path):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")
        first_manifest = (target / "catalog.json").read_text()

        # Second save crashes after Trans.jsonl was replaced but before
        # the manifest commit: new base data under the old manifest.
        tiny_db.insert_rows("Trans", [NEW_ROW])
        tiny_db.drain_refresh()
        with INJECTOR.injected(
            "persist.write", every=3
        ):  # catalog is written last; fail before reaching it
            with pytest.raises(InjectedFault):
                save_database(tiny_db, tmp_path / "db")
        assert (target / "catalog.json").read_text() == first_manifest

        loaded = load_database(target)
        report = verify_database(loaded)
        for summary in loaded.summary_tables.values():
            assert tables_equal(
                summary.table,
                loaded.execute(summary.sql, use_summary_tables=False),
            )
        # If any file did land from the new generation, the mismatch was
        # noticed rather than silently trusted.
        if report.rebuilt:
            assert report.anomalies
        loaded.close()
        tiny_db.close()


class TestTornTails:
    def test_torn_delta_tail_truncated_and_repaired(self, tiny_db, tmp_path):
        tiny_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        stage(tiny_db)
        stage(tiny_db, (302, 2, 2, 20, datetime.date(1994, 4, 4), 2, 11.0, 0.1))
        target = save_database(tiny_db, tmp_path / "db")

        # Tear the last delta record in half, as a crashed OS would.
        text = (target / "deltas.jsonl").read_text()
        (target / "deltas.jsonl").write_text(text[: len(text) - 25])

        loaded = load_database(target)
        assert any("torn tail" in a for a in loaded._load_anomalies)
        assert len(loaded.delta_log) == 1  # intact prefix survived
        report = verify_database(loaded)
        assert report.rebuilt  # the deferred summary was recomputed
        summary = loaded.summary_tables["s1"]
        assert summary.refresh.pending_deltas == 0
        assert not summary.refresh.quarantined
        assert tables_equal(
            summary.table, loaded.execute(SUMMARY_SQL, use_summary_tables=False)
        )
        loaded.close()
        tiny_db.close()

    def test_torn_summary_snapshot_rebuilt(self, tiny_db, tmp_path):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")
        text = (target / "S1.jsonl").read_text()
        (target / "S1.jsonl").write_text(text[: len(text) - 7])

        loaded = load_database(target)
        report = verify_database(loaded)
        assert any("S1" in entry for entry in report.rebuilt)
        assert tables_equal(
            loaded.summary_tables["s1"].table,
            loaded.execute(SUMMARY_SQL, use_summary_tables=False),
        )
        loaded.close()
        tiny_db.close()

    def test_torn_base_table_keeps_prefix_and_flags_summaries(
        self, tiny_db, tmp_path
    ):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")
        lines = (target / "Trans.jsonl").read_text().splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][:10]
        (target / "Trans.jsonl").write_text(torn)

        loaded = load_database(target)
        assert len(loaded.table("Trans")) == len(lines) - 1
        report = verify_database(loaded)
        # Summaries over the damaged base table are rebuilt against the
        # surviving rows — consistent, not silently wrong.
        assert any("S1" in entry for entry in report.rebuilt)
        assert tables_equal(
            loaded.summary_tables["s1"].table,
            loaded.execute(SUMMARY_SQL, use_summary_tables=False),
        )
        loaded.close()
        tiny_db.close()

    def test_interior_corruption_is_fatal_with_context(self, tiny_db, tmp_path):
        target = save_database(tiny_db, tmp_path / "db")
        lines = (target / "Trans.jsonl").read_text().splitlines()
        lines[1] = "deadbeef {corrupt}"
        (target / "Trans.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError, match="Trans.jsonl.*line 2"):
            load_database(target)


class TestManifestErrors:
    def test_invalid_manifest_json_wrapped(self, tiny_db, tmp_path):
        target = save_database(tiny_db, tmp_path / "db")
        (target / "catalog.json").write_text("{not json")
        with pytest.raises(ReproError, match="catalog.json.*line 1"):
            load_database(target)

    def test_missing_manifest_key_wrapped(self, tiny_db, tmp_path):
        target = save_database(tiny_db, tmp_path / "db")
        manifest = json.loads((target / "catalog.json").read_text())
        del manifest["tables"]
        (target / "catalog.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="missing required key 'tables'"):
            load_database(target)

    def test_summary_without_schema_entry_wrapped(self, tiny_db, tmp_path):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")
        manifest = json.loads((target / "catalog.json").read_text())
        manifest["tables"] = [
            t for t in manifest["tables"] if t["name"] != "S1"
        ]
        (target / "catalog.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="S1.*no schema entry"):
            load_database(target)

    def test_missing_summary_snapshot_wrapped(self, tiny_db, tmp_path):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")
        (target / "S1.jsonl").unlink()
        with pytest.raises(ReproError, match="S1.jsonl"):
            load_database(target)

    def test_summary_entry_missing_sql_wrapped(self, tiny_db, tmp_path):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")
        manifest = json.loads((target / "catalog.json").read_text())
        del manifest["summary_tables"][0]["sql"]
        (target / "catalog.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="missing required key 'sql'"):
            load_database(target)


class TestFormatCompatibility:
    def _downgrade_to_v1(self, target):
        """Rewrite a v2 save as the v1 format: raw JSON lines, no
        checksums, format_version 1."""
        for path in target.glob("*.jsonl"):
            lines = path.read_text().splitlines()
            path.write_text(
                "".join(line.split(" ", 1)[1] + "\n" for line in lines if line)
            )
        manifest = json.loads((target / "catalog.json").read_text())
        manifest["format_version"] = 1
        manifest.pop("checksums", None)
        (target / "catalog.json").write_text(json.dumps(manifest))

    def test_v1_database_loads_unchanged(self, tiny_db, tmp_path):
        tiny_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        stage(tiny_db)
        target = save_database(tiny_db, tmp_path / "db")
        self._downgrade_to_v1(target)
        loaded = load_database(target)
        for name in ("Trans", "Loc", "PGroup", "Acct", "Cust"):
            assert tables_equal(tiny_db.table(name), loaded.table(name))
        assert loaded.summary_tables["s1"].refresh.pending_deltas == 1
        assert loaded.delta_log.lsn == tiny_db.delta_log.lsn
        assert verify_database(loaded).clean
        loaded.close()
        tiny_db.close()

    def test_future_format_rejected(self, tiny_db, tmp_path):
        target = save_database(tiny_db, tmp_path / "db")
        manifest = json.loads((target / "catalog.json").read_text())
        manifest["format_version"] = 99
        (target / "catalog.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="unsupported save format"):
            load_database(target)

    def test_v2_round_trip_preserves_quarantine(self, tiny_db, tmp_path):
        tiny_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        tiny_db.quarantine_summary("S1", "poisoned in a previous life")
        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        state = loaded.summary_tables["s1"].refresh
        assert state.quarantined
        assert "previous life" in state.quarantine_reason
        # ... and the loaded quarantined summary stays out of routing.
        assert loaded.rewrite(SUMMARY_SQL) is None
        loaded.close()
        tiny_db.close()


class TestVerifyDatabase:
    def test_clean_database_verifies_clean(self, tiny_db, tmp_path):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        save_database(tiny_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert verify_database(loaded).clean
        loaded.close()
        tiny_db.close()

    def test_lsn_ahead_of_log_rebuilds(self, tiny_db, tmp_path):
        tiny_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        target = save_database(tiny_db, tmp_path / "db")
        manifest = json.loads((target / "catalog.json").read_text())
        manifest["summary_tables"][0]["last_refresh_lsn"] = 999
        (target / "catalog.json").write_text(json.dumps(manifest))
        loaded = load_database(target)
        report = verify_database(loaded)
        assert any("ahead of delta log" in entry for entry in report.rebuilt)
        assert loaded.summary_tables["s1"].refresh.last_refresh_lsn == 0
        loaded.close()
        tiny_db.close()

    def test_pending_counter_repaired_from_log(self, tiny_db, tmp_path):
        tiny_db.create_summary_table(
            "S1", SUMMARY_SQL, refresh_mode="deferred"
        )
        stage(tiny_db)
        target = save_database(tiny_db, tmp_path / "db")
        manifest = json.loads((target / "catalog.json").read_text())
        manifest["summary_tables"][0]["pending_deltas"] = 7
        (target / "catalog.json").write_text(json.dumps(manifest))
        loaded = load_database(target)
        report = verify_database(loaded)
        assert any("pending_deltas" in fix for fix in report.repaired)
        assert loaded.summary_tables["s1"].refresh.pending_deltas == 1
        loaded.close()
        tiny_db.close()

    def test_repair_false_only_reports(self, tiny_db, tmp_path):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")
        text = (target / "S1.jsonl").read_text()
        (target / "S1.jsonl").write_text(text[: len(text) - 7])
        loaded = load_database(target)
        before = list(loaded.summary_tables["s1"].table.rows)
        report = verify_database(loaded, repair=False)
        assert not report.rebuilt and not report.quarantined
        assert any("inconsistent" in a for a in report.anomalies)
        assert loaded.summary_tables["s1"].table.rows == before
        loaded.close()
        tiny_db.close()

    def test_unrebuildable_summary_quarantined(self, tiny_db, tmp_path):
        tiny_db.create_summary_table("S1", SUMMARY_SQL)
        target = save_database(tiny_db, tmp_path / "db")
        text = (target / "S1.jsonl").read_text()
        (target / "S1.jsonl").write_text(text[: len(text) - 7])
        loaded = load_database(target)
        # Recompute itself is poisoned: recovery must quarantine, and
        # queries must still answer correctly from base tables.
        original = loaded.execute_graph

        def broken(graph):
            raise RuntimeError("exec broken")

        loaded.execute_graph = broken
        report = verify_database(loaded)
        loaded.execute_graph = original
        assert report.quarantined == ["S1"]
        assert loaded.summary_tables["s1"].refresh.quarantined
        assert loaded.rewrite(SUMMARY_SQL) is None
        result = loaded.execute(SUMMARY_SQL)
        assert tables_equal(
            result, loaded.execute(SUMMARY_SQL, use_summary_tables=False)
        )
        loaded.close()
        tiny_db.close()
