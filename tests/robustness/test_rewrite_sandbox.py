"""The rewrite sandbox: a broken matcher/rewriter can never fail or
corrupt a query answer — execution falls back to base tables and the
failure is counted."""

import pytest

from repro.engine.table import tables_equal
from repro.testing import INJECTOR, InjectedFault

AST_SQL = (
    "select faid, flid, count(*) as cnt, sum(qty) as sqty "
    "from Trans group by faid, flid"
)
QUERY = "select faid, count(*) as n from Trans group by faid"
QUERIES = [
    QUERY,
    "select faid, sum(qty) as q from Trans group by faid",
    "select flid, count(*) as n from Trans group by flid",
    "select count(*) as n from Trans",
]


@pytest.fixture
def ast_db(tiny_db):
    tiny_db.create_summary_table("A1", AST_SQL)
    yield tiny_db
    tiny_db.close()


class TestExecuteFallback:
    def test_faulted_match_still_answers_correctly(self, ast_db):
        expected = [
            ast_db.execute(sql, use_summary_tables=False) for sql in QUERIES
        ]
        with INJECTOR.injected("rewrite.match", every=1):
            for sql, want in zip(QUERIES, expected):
                got = ast_db.execute(sql)
                assert tables_equal(got, want)
        stats = ast_db.rewrite_stats()
        assert stats["rewrite_errors"] >= len(QUERIES)
        assert ast_db.last_rewrite_error is not None
        assert "InjectedFault" in ast_db.last_rewrite_error

    def test_run_sql_path_is_sandboxed_too(self, ast_db):
        want = ast_db.execute(QUERY, use_summary_tables=False)
        with INJECTOR.injected("rewrite.match"):
            got = ast_db.run_sql(QUERY + ";")
        assert tables_equal(got, want)
        assert ast_db.rewrite_stats()["rewrite_errors"] == 1

    def test_rewrite_recovers_after_fault_clears(self, ast_db):
        with INJECTOR.injected("rewrite.match"):
            ast_db.execute(QUERY)
        # The failure must not have been cached as a negative decision.
        result = ast_db.rewrite(QUERY)
        assert result is not None
        assert result.summary_tables[0].name == "A1"

    def test_library_rewrite_api_still_raises(self, ast_db):
        # The sandbox guards *query execution*; the explicit rewrite()
        # API keeps reporting failures to library callers.
        with INJECTOR.injected("rewrite.match"):
            with pytest.raises(InjectedFault):
                ast_db.rewrite(QUERY)


class TestExplainFallback:
    def test_explain_reports_sandboxed_failure(self, ast_db):
        with INJECTOR.injected("rewrite.match"):
            text = ast_db.explain(QUERY)
        assert "rewrite failed" in text
        assert "base tables" in text
        assert ast_db.rewrite_stats()["rewrite_errors"] == 1

    def test_explain_counter_line_shows_errors(self, ast_db):
        with INJECTOR.injected("rewrite.match"):
            text = ast_db.explain(QUERY)
        assert "rewrite errors sandboxed: 1" in text


class TestCreateSummaryFallback:
    def test_stacked_materialization_survives_fault(self, ast_db):
        # Building a rollup *from* an existing AST goes through the
        # rewriter; a fault there degrades to base-table materialization.
        with INJECTOR.injected("rewrite.match", every=1):
            summary = ast_db.create_summary_table(
                "A2",
                "select faid, count(*) as cnt from Trans group by faid",
                use_summary_tables=True,
            )
        assert tables_equal(
            summary.table,
            ast_db.execute(
                "select faid, count(*) as cnt from Trans group by faid",
                use_summary_tables=False,
            ),
        )
        assert ast_db.rewrite_stats()["rewrite_errors"] >= 1
