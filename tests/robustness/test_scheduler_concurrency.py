"""Concurrency stress for the refresh scheduler: ingest, notify, drain
and stop interleaved from many threads must neither deadlock nor lose a
refresh, and the post-drain summaries must be bit-identical to a full
recompute."""

import datetime
import threading

import pytest

from repro.engine.table import tables_equal

D = datetime.date
SUMMARY_SQLS = {
    "C1": "select faid, count(*) as cnt, sum(qty) as sqty from Trans group by faid",
    "C2": "select flid, count(*) as cnt, sum(price) as sp from Trans group by flid",
    "C3": "select fpgid, count(*) as cnt from Trans group by fpgid",
}
JOIN_TIMEOUT = 30.0  # generous; a deadlock would hang far longer


def make_row(index):
    return (
        1000 + index,
        1 + index % 2,
        1 + index % 3,
        10 * (1 + index % 2),
        D(1990 + index % 4, 1 + index % 12, 1 + index % 28),
        1 + index % 5,
        float(10 + index),
        0.1,
    )


@pytest.fixture
def stress_db(tiny_db):
    for name, sql in SUMMARY_SQLS.items():
        tiny_db.create_summary_table(name, sql, refresh_mode="deferred")
    yield tiny_db
    tiny_db.close()


def join_all(threads):
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"deadlocked threads: {stuck}"


def assert_summaries_consistent(db):
    for name, sql in SUMMARY_SQLS.items():
        summary = db.summary_tables[name.lower()]
        assert summary.refresh.pending_deltas == 0, name
        assert not summary.refresh.quarantined, name
        expected = db.execute(sql, use_summary_tables=False)
        assert tables_equal(summary.table, expected), name


class TestConcurrentIngest:
    def test_parallel_writers_with_drains(self, stress_db):
        errors = []
        start = threading.Barrier(6)

        def writer(worker):
            try:
                start.wait()
                for i in range(25):
                    stress_db.insert_rows(
                        "Trans", [make_row(worker * 1000 + i)]
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def drainer():
            try:
                start.wait()
                for _ in range(10):
                    stress_db.drain_refresh()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(w,), name=f"writer-{w}")
            for w in range(4)
        ] + [
            threading.Thread(target=drainer, name=f"drainer-{d}")
            for d in range(2)
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        assert errors == []
        stress_db.drain_refresh()
        assert len(stress_db.tables["trans"]) == 6 + 4 * 25
        assert_summaries_consistent(stress_db)

    def test_notify_storm_does_not_lose_refreshes(self, stress_db):
        stress_db.insert_rows("Trans", [make_row(0)])
        scheduler = stress_db.refresh_scheduler
        names = list(SUMMARY_SQLS)
        start = threading.Barrier(8)

        def notifier(worker):
            start.wait()
            for _ in range(50):
                scheduler.notify(names)

        threads = [
            threading.Thread(target=notifier, args=(w,), name=f"notify-{w}")
            for w in range(8)
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        stress_db.drain_refresh()
        assert_summaries_consistent(stress_db)


class TestStopAndRestart:
    def test_stop_races_with_ingest(self, stress_db):
        errors = []
        start = threading.Barrier(3)

        def writer():
            try:
                start.wait()
                for i in range(30):
                    stress_db.insert_rows("Trans", [make_row(i)])
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def stopper():
            try:
                start.wait()
                stress_db.refresh_scheduler.stop()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=writer, name="writer"),
            threading.Thread(target=writer, name="writer-2"),
            threading.Thread(target=stopper, name="stopper"),
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        assert errors == []
        # notify() restarts the worker on demand, so draining after a
        # racing stop still converges.
        stress_db.drain_refresh()
        assert_summaries_consistent(stress_db)

    def test_concurrent_drain_stop_drain(self, stress_db):
        stress_db.insert_rows("Trans", [make_row(i) for i in range(10)])
        start = threading.Barrier(4)

        def action(fn, name):
            def run():
                start.wait()
                fn()

            return threading.Thread(target=run, name=name)

        scheduler = stress_db.refresh_scheduler
        threads = [
            action(stress_db.drain_refresh, "drain-1"),
            action(stress_db.drain_refresh, "drain-2"),
            action(scheduler.stop, "stop"),
            action(lambda: scheduler.notify(list(SUMMARY_SQLS)), "notify"),
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        stress_db.drain_refresh()
        assert_summaries_consistent(stress_db)
