"""Regression tests for replication-correctness fixes.

Each test pins one way a standby could silently diverge from (or a
client silently change semantics against) its primary:

* the bootstrap snapshot reporting an LSN below the state it captured
  (staged-but-not-yet-fsynced mutations would be re-shipped and
  double-applied);
* the journal serving a gapped backlog after checkpoint compaction
  (skipped mutations the tailer's overlap filter cannot detect) — the
  stream must refuse and the standby must re-bootstrap from a fresh
  snapshot;
* an unjournaled server forgetting idempotency tokens (a retry after a
  lost ACK would double-apply);
* a reconnecting client silently dropping session SETs whose replay
  failed.
"""

from __future__ import annotations

import time

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.engine.persist import database_from_payload
from repro.engine.table import tables_equal
from repro.errors import WalGapError
from repro.replication import StandbyServer, WriteAheadLog, wait_for_catchup
from repro.server.client import ConnectionLost, ReproClient
from repro.server.server import QueryServer


def insert_sql(aid: int) -> str:
    return f"INSERT INTO Acct VALUES ({aid}, 1, 'open')"


def make_primary(tmp_path, checkpoint_every: int = 512) -> QueryServer:
    db = Database(credit_card_catalog())
    wal = WriteAheadLog(
        tmp_path / "wal-primary", sync="os", checkpoint_every=checkpoint_every
    )
    wal.begin(db)
    server = QueryServer(db, port=0, wal=wal)
    server.start_in_thread()
    return server


def make_standby(tmp_path, address) -> StandbyServer:
    return StandbyServer(
        address,
        wal_dir=str(tmp_path / "wal-standby"),
        sync="os",
        reconnect_backoff=0.05,
        reconnect_cap=0.5,
    )


def stop_server(server: QueryServer) -> None:
    server.stop()
    if server.wal is not None:
        server.wal.close()


# ----------------------------------------------------------------------
class TestSnapshotLsn:
    def test_snapshot_drains_staged_records(self, tmp_path):
        """A mutation applied+staged but whose group-commit fsync has
        not finished is part of the snapshot state — so the snapshot
        LSN must cover it, or the stream re-ships the record and the
        standby double-applies."""
        db = Database(credit_card_catalog())
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(db)
        server = QueryServer(db, wal=wal)
        sql = insert_sql(1)
        db.run_sql(sql)
        staged = wal.stage("insert", sql)  # fsync still in flight
        assert wal.durable_lsn < staged
        response = server._snapshot_response()
        # the drain made the staged record durable under the lock, and
        # the reported LSN covers it
        assert wal.durable_lsn == staged
        assert response["lsn"] == staged
        rebuilt = database_from_payload(response["state"])
        assert sorted(rebuilt.table("Acct").rows) == sorted(
            db.table("Acct").rows
        )
        wal.close()


# ----------------------------------------------------------------------
class TestBacklogGap:
    def test_records_after_refuses_gapped_backlog(self, tmp_path):
        db = Database(credit_card_catalog())
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(db)
        for i in range(6):
            sql = insert_sql(i)
            db.run_sql(sql)
            wal.append("insert", sql)
        wal.checkpoint(db)
        assert wal.checkpoint_lsn == 6
        # the live ring still reaches back past the checkpoint
        assert wal.covers(0)
        assert [r.lsn for r in wal.records_after(0)] == [1, 2, 3, 4, 5, 6]
        wal.close()
        # after a restart the ring is empty and the pre-checkpoint
        # segments are deleted: position 0 cannot be served gap-free
        reopened = WriteAheadLog(tmp_path / "wal", sync="os")
        reopened.recover()
        assert not reopened.covers(0)
        with pytest.raises(WalGapError, match="bootstrap"):
            reopened.records_after(0)
        assert reopened.covers(reopened.checkpoint_lsn)
        assert reopened.records_after(reopened.checkpoint_lsn) == []
        reopened.close()

    def test_standby_rebootstraps_after_backlog_gap(self, tmp_path):
        """A standby reconnecting below the primary's checkpoint (long
        outage + compaction, ring too short to bridge) must not consume
        a gapped stream: the primary refuses with WalGapError and the
        standby falls back to a fresh snapshot bootstrap, re-anchoring
        its local journal at the snapshot LSN."""
        primary = make_primary(tmp_path, checkpoint_every=8)
        primary.wal._recent_cap = 4  # force the ring not to bridge
        host, port = primary.address
        standby = make_standby(tmp_path, (host, port))
        try:
            with ReproClient(host, port) as client:
                client.query(insert_sql(700))
            standby.start()
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)
            stalled_lsn = standby.applied_lsn
            standby.stop()
            # while the standby is down: enough writes to checkpoint
            # past its position and age it out of the ring
            with ReproClient(host, port) as client:
                for i in range(12):
                    client.query(insert_sql(701 + i))
            assert primary.wal.checkpoint_lsn > stalled_lsn
            assert not primary.wal.covers(stalled_lsn)
            standby = make_standby(tmp_path, (host, port))
            standby.start()
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)
            assert tables_equal(
                primary.db.table("Acct"), standby.server.db.table("Acct")
            )
            # the stream resumed after the re-bootstrap: new primary
            # writes keep flowing
            with ReproClient(host, port) as client:
                client.query(insert_sql(750))
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)
            assert tables_equal(
                primary.db.table("Acct"), standby.server.db.table("Acct")
            )
            # and the rebased local journal recovers cleanly on the
            # next restart (no pre-gap tail left to replay wrongly)
            standby.stop()
            standby = make_standby(tmp_path, (host, port))
            standby.start()
            assert standby.recovery is not None
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)
            assert tables_equal(
                primary.db.table("Acct"), standby.server.db.table("Acct")
            )
        finally:
            standby.stop()
            stop_server(primary)


# ----------------------------------------------------------------------
class TestUnjournaledDedup:
    def test_unjournaled_server_dedups_tokens(self):
        """Idempotency tokens protect retries even without a journal: a
        second attempt with the same token replays the recorded status
        instead of applying twice."""
        db = Database(credit_card_catalog())
        server = QueryServer(db, port=0)
        server.start_in_thread()
        try:
            with ReproClient(*server.address) as client:
                first = client.query(insert_sql(42), token="tok-1")
                assert not first.deduped
                second = client.query(insert_sql(42), token="tok-1")
                assert second.deduped
                assert second.status == first.status
            rows = [r for r in db.table("Acct").rows if r[0] == 42]
            assert len(rows) == 1
        finally:
            server.stop()


# ----------------------------------------------------------------------
class TestPromoteStopsTailer:
    def test_promote_closes_the_stream_and_joins_the_tailer(self, tmp_path):
        primary = make_primary(tmp_path)
        host, port = primary.address
        standby = make_standby(tmp_path, (host, port))
        try:
            with ReproClient(host, port) as client:
                client.query(insert_sql(800))
            standby.start()
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)
            started = time.monotonic()
            promoted = standby.promote()
            # closing the stream socket unblocks a readline parked in
            # its socket timeout; the join must not eat that timeout
            assert time.monotonic() - started < 5.0
            assert standby._tailer is None
            assert promoted["role"] == "primary"
            with ReproClient(*standby.address) as client:
                client.query(insert_sql(801))
            rows = [
                r for r in standby.server.db.table("Acct").rows
                if r[0] == 801
            ]
            assert len(rows) == 1
        finally:
            standby.stop()
            stop_server(primary)


# ----------------------------------------------------------------------
class TestSetReplay:
    def test_failed_set_replay_fails_the_connection(self, tmp_path):
        """A reconnect whose session-SET replay is rejected must not
        hand back a connection silently missing knobs — with no other
        address to rotate to, the request fails."""
        primary = make_primary(tmp_path)
        host, port = primary.address
        try:
            client = ReproClient(host, port)
            client.set("SET QUERY MAXROWS 10")
            # simulate a knob the next server refuses to accept
            client._session_sets.append("THIS IS NOT A SET")
            client._disconnect()
            with pytest.raises(ConnectionLost):
                client.request("ping")
            client.close()
        finally:
            stop_server(primary)
