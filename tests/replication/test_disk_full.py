"""Disk exhaustion: ENOSPC during group commit degrades to read-only.

The contract (docs/ROBUSTNESS.md, "Resource exhaustion"):

* a journal write that fails with ENOSPC rolls the in-memory apply
  back — the mutation is **not** acknowledged and its row does not
  survive recovery;
* the server flips into a disk-full degradation mode: further
  mutations are refused with the typed :class:`ReadOnlyError` (the
  same wire path a standby uses), while reads keep being served;
* the episode is observable: one ``wal.disk_full`` event, a
  ``disk_full`` flag in the ``status`` op;
* when space returns the next mutation probes the volume, lifts the
  degradation, emits ``wal.disk_recovered``, and writes flow again;
* across the whole episode, zero acknowledged writes are lost — the
  recovered journal replays to exactly the ACKed rows.

The fault point ``wal.disk_full`` injects ENOSPC at the journal's
write/probe sites; ``every=1`` keeps the volume "full" until the test
disarms it (space freed).
"""

from __future__ import annotations

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.errors import ReadOnlyError, ReproError
from repro.replication import WriteAheadLog
from repro.server.client import ReproClient
from repro.server.server import QueryServer
from repro.obs import events
from repro.testing import INJECTOR


def insert_sql(aid: int) -> str:
    return f"INSERT INTO Acct VALUES ({aid}, 1, 'open')"


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.disarm()
    yield
    INJECTOR.disarm()


@pytest.fixture
def primary(tmp_path):
    db = Database(credit_card_catalog())
    wal = WriteAheadLog(tmp_path / "wal", sync="os")
    wal.begin(db)
    server = QueryServer(db, port=0, wal=wal)
    server.start_in_thread()
    yield server
    server.stop()
    wal.close()


def _events_named(name: str) -> list[dict]:
    return [e for e in events.tail(200) if e["event"] == name]


def test_enospc_episode_end_to_end(primary, tmp_path):
    events.LOG.clear()
    host, port = primary.address
    acked: list[int] = []
    with ReproClient(host, port) as client:
        # --- healthy baseline -----------------------------------------
        for aid in (9001, 9002):
            client.query(insert_sql(aid))
            acked.append(aid)

        # --- the disk fills mid-commit --------------------------------
        INJECTOR.arm("wal.disk_full", every=1)
        with pytest.raises(ReproError) as failure:
            client.query(insert_sql(9100))
        # not a ReadOnlyError yet: this was the commit that *discovered*
        # the full disk, reported as the journal failure it is
        assert not isinstance(failure.value, ReadOnlyError)

        # one wal.disk_full event, status shows the degradation
        assert len(_events_named("wal.disk_full")) == 1
        status = client.status()
        assert status["wal"]["disk_full"] is True

        # --- degraded mode: mutations refused, reads served -----------
        with pytest.raises(ReadOnlyError, match="disk is full"):
            client.query(insert_sql(9101))
        # still exactly one disk_full event (once per episode)
        assert len(_events_named("wal.disk_full")) == 1
        rows = client.query("SELECT aid, acid FROM Acct").value.rows
        assert (9001, 1) in rows
        # the failed mutations were rolled back, not half-applied
        assert all(aid not in {r[0] for r in rows} for aid in (9100, 9101))

        # --- space returns --------------------------------------------
        INJECTOR.disarm()
        client.query(insert_sql(9200))
        acked.append(9200)
        assert len(_events_named("wal.disk_recovered")) == 1
        assert client.status()["wal"]["disk_full"] is False
        rows = {r[0] for r in client.query("SELECT aid FROM Acct").value.rows}
        assert 9200 in rows and 9100 not in rows

    # --- zero acknowledged writes lost across the episode -------------
    primary.stop()
    primary.wal.close()
    wal = WriteAheadLog(tmp_path / "wal", sync="os")
    recovery = wal.recover()
    wal.close()
    recovered = {row[0] for row in recovery.database.table("Acct").rows}
    for aid in acked:
        assert aid in recovered
    assert 9100 not in recovered
    assert 9101 not in recovered


def test_checkpoint_enospc_does_not_fail_the_mutation(tmp_path):
    """A checkpoint that hits ENOSPC must not fail the mutation that
    triggered it — the record is already durable; compaction waits."""
    db = Database(credit_card_catalog())
    wal = WriteAheadLog(tmp_path / "wal", sync="os", checkpoint_every=2)
    wal.begin(db)
    server = QueryServer(db, port=0, wal=wal)
    server.start_in_thread()
    try:
        host, port = server.address
        events.LOG.clear()
        with ReproClient(host, port) as client:
            client.query(insert_sql(9001))
            # The 2nd mutation crosses checkpoint_every. ``every=2``
            # lets its group-commit flush through (hit 1) and fails the
            # checkpoint write (hit 2) — the mutation itself succeeds:
            # its record is already durable, compaction can wait.
            with INJECTOR.injected("wal.disk_full", every=2):
                reply = client.query(insert_sql(9002))
            assert reply.status is not None
            assert len(_events_named("wal.disk_full")) == 1
            # space is back (fault disarmed): the next mutation's probe
            # lifts the degradation and the write goes through
            client.query(insert_sql(9003))
            assert len(_events_named("wal.disk_recovered")) == 1
            rows = {
                r[0] for r in client.query("SELECT aid FROM Acct").value.rows
            }
            assert {9001, 9002, 9003} <= rows
    finally:
        server.stop()
        wal.close()


def test_wal_probe_writable_direct(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal", sync="os")
    wal.begin(Database(credit_card_catalog()))
    wal.probe_writable()  # healthy volume: no error, no residue
    assert not (tmp_path / "wal" / ".space-probe").exists()
    with INJECTOR.injected("wal.disk_full", times=1):
        with pytest.raises(OSError):
            wal.probe_writable()
    wal.close()
