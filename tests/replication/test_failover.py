"""Client failover, idempotency-token dedup, standby replication, and
promotion under load.

The exactly-once story under test: a retried mutation whose ACK was
lost (injected at ``client.send``) never double-applies — on the same
primary (dedup window), across a primary restart (tokens ride the
journal), and across a promotion (tokens ship with the records)."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.engine.table import tables_equal
from repro.errors import (
    BudgetExhausted,
    ReadOnlyError,
    ReplicaLagExceeded,
    ReproError,
)
from repro.replication import StandbyServer, WriteAheadLog, wait_for_catchup
from repro.server.client import ConnectionLost, ReproClient
from repro.server.server import QueryServer
from repro.testing import INJECTOR


def make_primary(tmp_path, name="wal-primary", **kwargs):
    db = Database(credit_card_catalog())
    wal = WriteAheadLog(tmp_path / name, sync="os")
    wal.begin(db)
    server = QueryServer(db, port=0, wal=wal, **kwargs)
    server.start_in_thread()
    return server


def stop_server(server: QueryServer) -> None:
    server.stop()
    if server.wal is not None:
        server.wal.close()


def insert_sql(aid: int) -> str:
    return f"INSERT INTO Acct VALUES ({aid}, 1, 'open')"


def acct_rows(db: Database):
    return sorted(db.table("Acct").rows)


# ----------------------------------------------------------------------
# satellite (a): a timed-out reply must never leave a half-read socket
class TestTimeoutHygiene:
    @staticmethod
    def stalling_server(stop: threading.Event):
        """A fake server whose FIRST connection replies with a partial
        line and stalls; later connections answer properly."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        counter = {"n": 0}

        def handle(conn, n):
            try:
                reader = conn.makefile("rb")
                line = reader.readline()
                while line:
                    if n == 1:
                        conn.sendall(b'{"ok": tru')  # cut mid-reply
                        stop.wait(10)
                        return
                    conn.sendall(b'{"ok": true, "status": "pong"}\n')
                    line = reader.readline()
            except OSError:
                pass
            finally:
                conn.close()

        def serve():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                counter["n"] += 1
                threading.Thread(
                    target=handle, args=(conn, counter["n"]), daemon=True
                ).start()

        threading.Thread(target=serve, daemon=True).start()
        return listener, listener.getsockname()

    def test_timeout_discards_the_connection(self):
        """Without retries the caller sees ConnectionLost — and the next
        request runs on a FRESH socket instead of reading the stalled
        reply's leftover bytes (the pre-fix desync)."""
        stop = threading.Event()
        listener, (host, port) = self.stalling_server(stop)
        try:
            client = ReproClient(host, port, timeout=0.4)
            with pytest.raises(ConnectionLost, match="timed out"):
                client.request("ping")
            reply = client.request("ping")  # transparently reconnects
            assert reply["status"] == "pong"
            assert client.reconnects == 1
            client.close()
        finally:
            stop.set()
            listener.close()

    def test_timeout_retries_on_a_fresh_connection(self):
        stop = threading.Event()
        listener, (host, port) = self.stalling_server(stop)
        try:
            client = ReproClient(host, port, timeout=0.4, retries=2, seed=1)
            reply = client.request("ping")
            assert reply["status"] == "pong"
            assert client.retried == 1 and client.reconnects == 1
            client.close()
        finally:
            stop.set()
            listener.close()


# ----------------------------------------------------------------------
class TestIdempotency:
    def test_lost_ack_never_double_applies(self, tmp_path):
        """The canonical retry hazard: the INSERT is applied, the ACK is
        lost in flight, the client retries the same token — the dedup
        window answers, the row exists once."""
        server = make_primary(tmp_path)
        host, port = server.address
        try:
            client = ReproClient(host, port, retries=3, seed=7)
            with INJECTOR.injected("client.send", times=1):
                reply = client.query(insert_sql(999001))
            assert reply.deduped, "the retry should hit the dedup window"
            table = client.query(
                "SELECT aid FROM Acct WHERE aid = 999001"
            ).table
            assert len(table.rows) == 1
            assert server.deduped.value >= 1
            client.close()
        finally:
            stop_server(server)

    def test_concurrent_same_token_applies_once(self, tmp_path):
        """A retry racing the ORIGINAL request (client gave up early)
        parks on the in-flight claim instead of double-applying."""
        server = make_primary(tmp_path)
        host, port = server.address
        replies = []

        def fire():
            with ReproClient(host, port) as racer:
                replies.append(racer.query(insert_sql(999002),
                                           token="race-1").raw)

        try:
            racers = [threading.Thread(target=fire) for _ in range(4)]
            for t in racers:
                t.start()
            for t in racers:
                t.join()
            assert sum(1 for r in replies if r.get("deduped")) == 3
            with ReproClient(host, port) as client:
                table = client.query(
                    "SELECT aid FROM Acct WHERE aid = 999002"
                ).table
                assert len(table.rows) == 1
        finally:
            stop_server(server)

    def test_failed_mutation_token_is_retryable(self, tmp_path):
        """A journal failure rolls the apply back and must NOT poison
        the token: the client's retry (same token) applies for real."""
        server = make_primary(tmp_path)
        host, port = server.address
        try:
            with ReproClient(host, port) as client:
                with INJECTOR.injected("wal.fsync", times=1):
                    with pytest.raises(ReproError):
                        client.query(insert_sql(999003), token="t-fail")
                reply = client.query(insert_sql(999003), token="t-fail")
                assert not reply.deduped
                table = client.query(
                    "SELECT aid FROM Acct WHERE aid = 999003"
                ).table
                assert len(table.rows) == 1
        finally:
            stop_server(server)


# ----------------------------------------------------------------------
class TestStandby:
    def test_bootstrap_catchup_and_lag_gated_reads(self, tmp_path):
        primary = make_primary(tmp_path)
        host, port = primary.address
        standby = StandbyServer(
            (host, port), wal_dir=str(tmp_path / "wal-standby"), sync="os",
            reconnect_backoff=0.05, reconnect_cap=0.5,
        )
        try:
            with ReproClient(host, port) as client:
                for i in range(5):
                    client.query(insert_sql(500 + i))
            sb_host, sb_port = standby.start()
            with ReproClient(host, port) as client:
                client.query(insert_sql(505))  # lands after the snapshot
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)
            assert tables_equal(
                primary.db.table("Acct"), standby.server.db.table("Acct")
            )
            with ReproClient(sb_host, sb_port) as reader:
                # caught up: lag 0 satisfies the default REFRESH AGE 0
                table = reader.query(
                    "SELECT aid FROM Acct WHERE aid >= 500"
                ).table
                assert len(table.rows) == 6
                status = reader.repl_status()
                assert status["role"] == "standby"
                assert status["lag"] == 0
                with pytest.raises(ReadOnlyError, match="read-only standby"):
                    reader.query(insert_sql(999))
        finally:
            standby.stop()
            stop_server(primary)

    def test_replica_lag_gate_honors_refresh_age(self, tiny_db):
        """A standby that knows it is N records behind refuses reads
        whose session tolerance is tighter than N — SET REFRESH AGE is
        the single staleness dial for summaries AND replicas."""
        server = QueryServer(tiny_db, port=0, read_only=True,
                             primary="127.0.0.1:1")
        host, port = server.start_in_thread()
        server.note_primary_durable(server.applied_lsn + 3)
        try:
            with ReproClient(host, port) as client:
                with pytest.raises(ReplicaLagExceeded, match="3 record"):
                    client.query("SELECT aid FROM Acct")
                client.set("SET REFRESH AGE 3")
                assert len(client.query("SELECT aid FROM Acct").table.rows)
                client.set("SET REFRESH AGE ANY")
                assert len(client.query("SELECT aid FROM Acct").table.rows)
        finally:
            server.stop()

    def test_standby_restart_resumes_from_local_journal(self, tmp_path):
        primary = make_primary(tmp_path)
        host, port = primary.address
        standby = StandbyServer(
            (host, port), wal_dir=str(tmp_path / "wal-standby"), sync="os",
            reconnect_backoff=0.05, reconnect_cap=0.5,
        )
        try:
            with ReproClient(host, port) as client:
                client.query(insert_sql(600))
            standby.start()
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)
            standby.stop()
            with ReproClient(host, port) as client:
                client.query(insert_sql(601))  # while the standby is down
            standby = StandbyServer(
                (host, port), wal_dir=str(tmp_path / "wal-standby"),
                sync="os", reconnect_backoff=0.05, reconnect_cap=0.5,
            )
            standby.start()
            assert standby.recovery is not None, "restart must recover"
            wait_for_catchup(standby, primary.applied_lsn, timeout=15)
            assert tables_equal(
                primary.db.table("Acct"), standby.server.db.table("Acct")
            )
        finally:
            standby.stop()
            stop_server(primary)


# ----------------------------------------------------------------------
class TestFailover:
    def test_mutation_redirects_to_primary(self, tmp_path):
        """A client pointed at the standby rotates on the ReadOnlyError
        redirect hint and lands the write on the primary."""
        primary = make_primary(tmp_path)
        host, port = primary.address
        standby = StandbyServer(
            (host, port), wal_dir=str(tmp_path / "wal-standby"), sync="os",
            reconnect_backoff=0.05, reconnect_cap=0.5,
        )
        try:
            sb_addr = standby.start()
            client = ReproClient(*sb_addr, failover=((host, port),),
                                 retries=2, seed=3)
            reply = client.query(insert_sql(700))
            assert reply.raw.get("lsn") == 1
            assert client.address == (host, port)
            client.close()
            wait_for_catchup(standby, 1, timeout=15)
            assert (700, 1, "open") in standby.server.db.table("Acct").rows
        finally:
            standby.stop()
            stop_server(primary)

    def test_session_sets_replayed_across_failover(self, tmp_path):
        """Session knobs survive a failover: the client replays its SETs
        on the fresh connection, so MAXROWS still bites on server B."""
        a = make_primary(tmp_path, name="wal-a")
        b = make_primary(tmp_path, name="wal-b")
        for server in (a, b):
            with ReproClient(*server.address) as seeder:
                seeder.query(insert_sql(800))
                seeder.query(insert_sql(801))
        client = ReproClient(*a.address, failover=(b.address,),
                             retries=3, seed=5)
        try:
            client.set("SET QUERY MAXROWS 1")
            with pytest.raises(BudgetExhausted):
                client.query("SELECT aid FROM Acct")
            stop_server(a)
            with pytest.raises(BudgetExhausted):
                client.query("SELECT aid FROM Acct")  # failed over to B
            assert client.address == b.address
            table = client.query(
                "SELECT aid FROM Acct WHERE aid = 800"
            ).table
            assert len(table.rows) == 1
        finally:
            client.close()
            stop_server(b)
            if a.wal is not None:
                a.wal.close()

    def test_promote_under_load_exactly_once(self, tmp_path):
        """Writers hammer the primary through failover clients; the
        primary dies mid-storm and the standby is promoted. Every write
        eventually succeeds, and every acknowledged write is applied
        exactly once on the promoted server — the journal's tokens and
        the semi-sync ship made the handoff lossless."""
        primary = make_primary(tmp_path, repl_ack=1,
                               repl_ack_timeout_ms=10_000.0)
        host, port = primary.address
        standby = StandbyServer(
            (host, port), wal_dir=str(tmp_path / "wal-standby"), sync="os",
            reconnect_backoff=0.05, reconnect_cap=0.3,
        )
        try:
            sb_addr = standby.start()
            acked: list[int] = []
            lock = threading.Lock()
            enough = threading.Event()
            failures: list[Exception] = []
            threads_n, each = 4, 15

            def writer(tid: int):
                client = ReproClient(
                    host, port, failover=(sb_addr,), retries=10,
                    backoff=0.05, backoff_cap=0.5, seed=tid, timeout=15,
                )
                for i in range(each):
                    aid = 900_000 + tid * 1000 + i
                    try:
                        client.query(insert_sql(aid))
                    except Exception as error:  # noqa: BLE001
                        failures.append(error)
                        break
                    with lock:
                        acked.append(aid)
                        if len(acked) >= 12:
                            enough.set()
                client.close()

            writers = [
                threading.Thread(target=writer, args=(t,))
                for t in range(threads_n)
            ]
            for w in writers:
                w.start()
            assert enough.wait(timeout=30)
            stop_server(primary)  # the primary dies mid-storm
            standby.promote()
            for w in writers:
                w.join(timeout=60)
            assert not failures, failures[:3]
            assert len(acked) == threads_n * each

            promoted = standby.server
            assert not promoted.read_only
            rows = [r[0] for r in promoted.db.table("Acct").rows]
            for aid in acked:
                assert rows.count(aid) == 1, f"aid {aid} x{rows.count(aid)}"
            assert len(rows) == len(acked)
            # the promoted server keeps journaling: it can itself crash
            # and recover every row it acknowledged
            with ReproClient(*sb_addr) as client:
                status = client.repl_status()
                assert status["role"] == "primary"
        finally:
            standby.stop()
            if standby.server is not None and standby.server.wal is not None:
                standby.server.wal.close()

    def test_unreachable_cluster_raises_connection_lost(self):
        dead = socket.socket()
        dead.bind(("127.0.0.1", 0))  # bound but never listening
        host, port = dead.getsockname()
        try:
            with pytest.raises(ConnectionLost, match="cannot reach"):
                ReproClient(host, port, timeout=0.5, retries=1)
        finally:
            dead.close()
