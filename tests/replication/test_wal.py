"""Write-ahead journal unit tests: record framing, group commit,
checkpoint-compaction, torn-tail recovery, the idempotency-token
window, and the journal's fault-injection points."""

from __future__ import annotations

import threading

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database
from repro.engine.table import tables_equal
from repro.errors import WalError
from repro.replication import (
    DedupWindow,
    WalRecord,
    WriteAheadLog,
    mutation_kind,
)
from repro.sql.statements import parse_statement
from repro.testing import INJECTOR, InjectedFault
from repro.testing.faults import arm_from_env


def empty_db() -> Database:
    return Database(credit_card_catalog())


def insert_sql(aid: int) -> str:
    return f"INSERT INTO Acct VALUES ({aid}, 1, 'open')"


def assert_same_database(left: Database, right: Database) -> None:
    """Bit-identity across every base table."""
    assert sorted(left.catalog.tables) == sorted(right.catalog.tables)
    for name in left.catalog.tables:
        assert tables_equal(left.table(name), right.table(name)), name


# ----------------------------------------------------------------------
class TestMutationKind:
    @pytest.mark.parametrize(
        "sql,kind",
        [
            ("INSERT INTO Acct VALUES (1, 1, 'x')", "insert"),
            ("DELETE FROM Acct VALUES (1, 1, 'x')", "delete"),
            ("CREATE TABLE T (a INTEGER NOT NULL)", "ddl"),
            (
                "CREATE SUMMARY TABLE S AS select faid, count(*) as cnt "
                "from Trans group by faid",
                "ddl",
            ),
            ("DROP SUMMARY TABLE S", "ddl"),
            ("REFRESH SUMMARY TABLES", "refresh"),
            ("SELECT aid FROM Acct", None),
            ("SET REFRESH AGE ANY", None),
        ],
    )
    def test_classification(self, sql, kind):
        assert mutation_kind(parse_statement(sql)) == kind


class TestWalRecord:
    def test_payload_round_trip(self):
        record = WalRecord(7, "insert", insert_sql(1), "tok-1", "1 row")
        back = WalRecord.from_payload(record.payload())
        assert back == record

    def test_token_free_round_trip(self):
        record = WalRecord(1, "ddl", "CREATE TABLE T (a INTEGER)", None, "ok")
        assert WalRecord.from_payload(record.payload()) == record


# ----------------------------------------------------------------------
class TestDedupWindow:
    def test_put_get(self):
        window = DedupWindow()
        assert window.get("t1") is None
        window.put("t1", "1 row inserted")
        assert window.get("t1") == "1 row inserted"

    def test_lru_eviction(self):
        window = DedupWindow(max_tokens=3)
        for i in range(4):
            window.put(f"t{i}", str(i))
        assert window.get("t0") is None  # oldest evicted
        assert window.get("t3") == "3"
        assert len(window) == 3

    def test_put_refreshes_recency(self):
        """Aging is by insertion order: re-putting a token keeps it
        alive, reads deliberately do not (a token read once more is a
        retry that just completed — it will not come back)."""
        window = DedupWindow(max_tokens=2)
        window.put("a", "1")
        window.put("b", "2")
        window.put("a", "1")  # refresh: "b" becomes the eviction candidate
        window.put("c", "3")
        assert window.get("a") == "1"
        assert window.get("b") is None

    def test_seed_and_snapshot(self):
        window = DedupWindow()
        window.seed({"a": "1", "b": "2"})
        assert window.snapshot() == {"a": "1", "b": "2"}
        window.discard("a")
        assert window.get("a") is None and window.get("b") == "2"


# ----------------------------------------------------------------------
class TestJournalLifecycle:
    def test_round_trip_recovery(self, tmp_path):
        """Apply + journal a mix of mutations, recover, and get back a
        bit-identical database plus the token window."""
        db = empty_db()
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(db)
        statements = [
            insert_sql(100),
            insert_sql(101),
            "DELETE FROM Acct VALUES (100, 1, 'open')",
            "CREATE TABLE Audit (entry INTEGER NOT NULL)",
            "INSERT INTO Audit VALUES (1)",
        ]
        for i, sql in enumerate(statements):
            status = str(db.run_sql(sql))
            kind = mutation_kind(parse_statement(sql))
            wal.append(kind, sql, token=f"tok-{i}", status=status)
        assert wal.durable_lsn == len(statements)
        wal.close()

        recovered = WriteAheadLog(tmp_path / "wal", sync="os").recover()
        assert recovered.replayed == len(statements)
        assert not recovered.anomalies
        assert_same_database(recovered.database, db)
        assert set(recovered.tokens) == {f"tok-{i}" for i in range(5)}

    def test_begin_refuses_existing_journal(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(empty_db())
        wal.close()
        fresh = WriteAheadLog(tmp_path / "wal", sync="os")
        assert fresh.exists()
        with pytest.raises(WalError, match="already contains"):
            fresh.begin(empty_db())

    def test_base_lsn_offsets_the_sequence(self, tmp_path):
        """A standby seeds the sequence at its snapshot's primary LSN,
        so shipped records keep their primary numbering."""
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(empty_db(), base_lsn=40)
        assert wal.append("insert", insert_sql(1)) == 41
        lsn = wal.stage_record(
            WalRecord(50, "insert", insert_sql(2), None, "")
        )
        wal.commit(lsn)
        assert wal.durable_lsn == 50
        with pytest.raises(WalError, match="behind the journal"):
            wal.stage_record(WalRecord(7, "insert", insert_sql(3), None, ""))
        wal.close()

    def test_sync_mode_validated(self, tmp_path):
        with pytest.raises(ValueError, match="sync must be"):
            WriteAheadLog(tmp_path / "wal", sync="yolo")

    def test_closed_journal_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(empty_db())
        wal.close()
        with pytest.raises(WalError):
            wal.append("insert", insert_sql(1))


class TestGroupCommit:
    def test_concurrent_appends_all_durable(self, tmp_path):
        """A thread storm of appends: every record becomes durable, and
        on_durable ships each exactly once."""
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(empty_db())
        shipped: list[int] = []
        ship_lock = threading.Lock()

        def on_durable(records):
            with ship_lock:
                shipped.extend(r.lsn for r in records)

        wal.on_durable = on_durable
        threads_n, each = 8, 25

        def worker(tid: int):
            for i in range(each):
                wal.append("insert", insert_sql(tid * 1000 + i))

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * each
        assert wal.durable_lsn == total
        assert sorted(shipped) == list(range(1, total + 1))
        records = wal.records_after(0)
        assert [r.lsn for r in records] == list(range(1, total + 1))
        wal.close()

    def test_records_after_serves_backlog_from_disk(self, tmp_path):
        """After recovery the in-memory ring is empty; a standby asking
        for an old LSN is served by scanning the segments."""
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(empty_db())
        for i in range(10):
            wal.append("insert", insert_sql(i))
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal", sync="os")
        reopened.recover()
        tail = reopened.records_after(6)
        assert [r.lsn for r in tail] == [7, 8, 9, 10]
        assert tail[0].sql == insert_sql(6)
        reopened.close()


# ----------------------------------------------------------------------
class TestTornTail:
    def write_journal(self, tmp_path, count=5):
        db = empty_db()
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(db)
        for i in range(count):
            db.run_sql(insert_sql(100 + i))
            wal.append("insert", insert_sql(100 + i))
        wal.close()
        segments = sorted((tmp_path / "wal").glob("journal-*.jsonl"))
        assert segments
        return db, segments[-1]

    def test_torn_tail_truncated(self, tmp_path):
        """A partial final line (the classic torn write) is truncated
        away: the un-acked record is lost, everything before survives."""
        db, segment = self.write_journal(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data + b'deadbeef {"half a rec')  # no newline
        recovered = WriteAheadLog(tmp_path / "wal", sync="os").recover()
        assert any("torn" in a or "truncat" in a for a in recovered.anomalies)
        assert recovered.replayed == 5
        assert_same_database(recovered.database, db)
        # the torn bytes are gone from disk as well
        assert segment.read_bytes() == data

    def test_corrupt_crc_tail_truncated(self, tmp_path):
        """A complete final line whose CRC does not match its payload is
        equally a tail anomaly, not a fatal error."""
        _, segment = self.write_journal(tmp_path)
        lines = segment.read_bytes().splitlines(keepends=True)
        bad = b"00000000" + lines[-1][8:]
        segment.write_bytes(b"".join(lines[:-1]) + bad)
        recovered = WriteAheadLog(tmp_path / "wal", sync="os").recover()
        assert recovered.anomalies
        assert recovered.replayed == 4

    def test_interior_corruption_is_fatal(self, tmp_path):
        """Corruption BEFORE the tail means acknowledged history is gone;
        recovery must refuse rather than silently drop records."""
        _, segment = self.write_journal(tmp_path)
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"00000000" + lines[1][8:]
        segment.write_bytes(b"".join(lines))
        with pytest.raises(WalError):
            WriteAheadLog(tmp_path / "wal", sync="os").recover()

    def test_recovered_journal_accepts_appends_after_truncation(
        self, tmp_path
    ):
        db, segment = self.write_journal(tmp_path)
        with segment.open("ab") as handle:
            handle.write(b"fffff")
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.recover()
        lsn = wal.append("insert", insert_sql(999))
        assert lsn == 6
        wal.close()
        again = WriteAheadLog(tmp_path / "wal", sync="os").recover()
        assert again.replayed == 6
        assert not again.anomalies


# ----------------------------------------------------------------------
class TestCheckpointCompaction:
    def test_checkpoint_compacts_and_recovers(self, tmp_path):
        db = empty_db()
        wal = WriteAheadLog(tmp_path / "wal", sync="os", checkpoint_every=5)
        wal.begin(db)
        for i in range(7):
            db.run_sql(insert_sql(200 + i))
            wal.append("insert", insert_sql(200 + i), token=f"t{i}",
                       status="1 row")
        assert wal.should_checkpoint()
        lsn = wal.checkpoint(db, tokens={f"t{i}": "1 row" for i in range(7)})
        assert lsn == 7 and wal.checkpoint_lsn == 7
        assert not wal.should_checkpoint()
        # post-checkpoint tail
        db.run_sql(insert_sql(300))
        wal.append("insert", insert_sql(300), token="t7", status="1 row")
        wal.close()

        recovered = WriteAheadLog(tmp_path / "wal", sync="os").recover()
        assert recovered.checkpoint_lsn == 7
        assert recovered.replayed == 1  # only the tail past the checkpoint
        assert_same_database(recovered.database, db)
        # tokens merge: checkpointed window plus the tail's record tokens
        assert set(recovered.tokens) == {f"t{i}" for i in range(8)}

    def test_checkpoint_drops_stale_segments_and_checkpoints(self, tmp_path):
        db = empty_db()
        wal = WriteAheadLog(tmp_path / "wal", sync="os", checkpoint_every=3)
        wal.begin(db)
        for round_n in range(3):
            for i in range(3):
                aid = 400 + round_n * 10 + i
                db.run_sql(insert_sql(aid))
                wal.append("insert", insert_sql(aid))
            wal.checkpoint(db)
        wal.close()
        directory = tmp_path / "wal"
        checkpoints = sorted(directory.glob("checkpoint-*"))
        segments = sorted(directory.glob("journal-*.jsonl"))
        assert len(checkpoints) == 1  # older snapshots compacted away
        assert len(segments) == 1  # one live segment past the checkpoint
        recovered = WriteAheadLog(directory, sync="os").recover()
        assert recovered.checkpoint_lsn == 9
        assert_same_database(recovered.database, db)

    def test_orphan_checkpoint_swept_on_recovery(self, tmp_path):
        """A checkpoint directory with no committing meta rename (a crash
        mid-checkpoint) is swept and reported, never loaded."""
        db = empty_db()
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(db)
        wal.append("insert", insert_sql(1))
        wal.close()
        orphan = tmp_path / "wal" / "checkpoint-000000009999"
        orphan.mkdir()
        (orphan / "junk.json").write_text("{}")
        recovered = WriteAheadLog(tmp_path / "wal", sync="os").recover()
        assert any("uncommitted checkpoint" in a for a in recovered.anomalies)
        assert not orphan.exists()
        assert recovered.checkpoint_lsn == 0 and recovered.replayed == 1


# ----------------------------------------------------------------------
class TestFaultPoints:
    def test_wal_append_fault_leaves_journal_usable(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(empty_db())
        with INJECTOR.injected("wal.append", times=1):
            with pytest.raises(InjectedFault):
                wal.append("insert", insert_sql(1))
        # the fault fired before an LSN was assigned: no gap, no damage
        assert wal.append("insert", insert_sql(2)) == 1
        wal.close()
        recovered = WriteAheadLog(tmp_path / "wal", sync="os").recover()
        assert recovered.replayed == 1

    def test_wal_fsync_fault_fails_commit_and_truncates(self, tmp_path):
        """A failed flush surfaces as WalError, the failed record never
        reaches disk or the replication ring, and later appends (with an
        LSN gap) recover cleanly."""
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(empty_db())
        wal.append("insert", insert_sql(1))
        with INJECTOR.injected("wal.fsync", times=1):
            with pytest.raises(WalError, match="journal write failed"):
                wal.append("insert", insert_sql(2))
        assert wal.append("insert", insert_sql(3)) == 3
        assert [r.lsn for r in wal.records_after(0)] == [1, 3]
        wal.close()
        recovered = WriteAheadLog(tmp_path / "wal", sync="os").recover()
        assert recovered.replayed == 2  # lsn 2 was never durable

    def test_fsync_fault_fails_whole_group(self, tmp_path):
        """Group commit shares one flush, so one injected fsync failure
        fails every record in that batch — none is acknowledged."""
        wal = WriteAheadLog(tmp_path / "wal", sync="os")
        wal.begin(empty_db())
        errors: list[Exception] = []
        barrier = threading.Barrier(4)

        def worker(i: int):
            barrier.wait()
            try:
                wal.append("insert", insert_sql(i))
            except WalError as error:
                errors.append(error)

        with INJECTOR.injected("wal.fsync", every=1):
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(errors) == 4
        assert wal.records_after(0) == []
        assert wal.append("insert", insert_sql(99)) == 5

    def test_arm_from_env_round_trip(self):
        try:
            armed = arm_from_env("wal.fsync:every=5,wal.append:times=2")
            assert armed == ["wal.fsync", "wal.append"]
            assert INJECTOR.spec("wal.fsync").every == 5
            assert INJECTOR.spec("wal.append").remaining == 2
        finally:
            INJECTOR.disarm()

    def test_arm_from_env_rejects_typos(self):
        with pytest.raises(ValueError):
            arm_from_env("wal.fsync:evrey=5")
        with pytest.raises(ValueError):
            arm_from_env("wal.fsink:every=5")
        INJECTOR.disarm()
