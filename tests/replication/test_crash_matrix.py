"""The crash matrix: real server subprocesses killed with SIGKILL
mid-ingest, with journal fault points armed through ``REPRO_FAULTS``.

The durability contract under test (docs/ROBUSTNESS.md):

* **zero acknowledged writes lost** — every mutation the client saw an
  ACK for is in the recovered journal (its idempotency token is in the
  rebuilt window, its row is in the recovered database);
* **bit-identity** — the recovered database equals an independent
  reference built by replaying the journal's SQL into a fresh database;
* **restart works end to end** — relaunching ``repro serve`` on the
  same journal directory recovers and serves the surviving data, and a
  SIGTERM shuts it down gracefully with a final journal flush.

``--sync os`` is used throughout: it is durable against SIGKILL (the
bytes are in the OS page cache once ``write`` returns) and keeps the
matrix fast; ``--sync fsync`` only changes behavior for whole-machine
crashes, which a test process cannot simulate anyway.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.engine import Database
from repro.errors import ReproError
from repro.replication import WriteAheadLog
from repro.server.client import ConnectionLost, ReproClient, ServerError

LISTENING = re.compile(r"listening on ([\d.]+):(\d+)")
SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])


def launch_server(wal_dir: Path, faults: str = "", extra=()):
    """Start ``repro serve --port 0`` on ``wal_dir``; returns
    ``(process, host, port)`` once the server reports its bound port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT
    if faults:
        env["REPRO_FAULTS"] = faults
    else:
        env.pop("REPRO_FAULTS", None)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--wal", str(wal_dir), "--sync", "os",
            "--checkpoint-every", "100000",  # keep the full journal
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + 30
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if line:
            match = LISTENING.search(line)
            if match:
                return process, match.group(1), int(match.group(2))
        if process.poll() is not None or time.monotonic() > deadline:
            process.kill()
            raise AssertionError("server did not report a listen address")


def ingest_storm(host, port, threads_n=4, per_thread=200, min_acks=30):
    """Hammer the server with tokened inserts from ``threads_n`` client
    threads until the server dies (or the work runs out); returns the
    list of acknowledged ``(token, aid)`` pairs and an event that is set
    once ``min_acks`` ACKs have been collected (the kill gate)."""
    acked: list[tuple[str, int]] = []
    lock = threading.Lock()
    enough = threading.Event()

    def worker(tid: int):
        try:
            client = ReproClient(host, port, timeout=15, retries=2, seed=tid)
        except ConnectionLost:
            return
        for i in range(per_thread):
            aid = 100_000 + tid * 10_000 + i
            token = f"storm-{tid}-{i}"
            try:
                client.query(
                    f"INSERT INTO T VALUES ({aid}, {tid})", token=token
                )
            except ConnectionLost:
                break  # the server is gone (that is the point)
            except ServerError:
                break  # died between accept and reply
            except ReproError:
                continue  # an injected journal fault: NOT acknowledged
            with lock:
                acked.append((token, aid))
                if len(acked) >= min_acks:
                    enough.set()
        client.close()

    workers = [
        threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
    ]
    for w in workers:
        w.start()
    return acked, enough, workers


def recover_and_check(wal_dir: Path, acked):
    """Recover the journal and enforce the durability contract."""
    wal = WriteAheadLog(wal_dir, sync="os")
    recovery = wal.recover()
    records = wal.records_after(0)
    wal.close()

    # (1) zero acknowledged writes lost
    journal_tokens = set(recovery.tokens)
    lost = [token for token, _ in acked if token not in journal_tokens]
    assert not lost, f"{len(lost)} acknowledged write(s) missing: {lost[:5]}"

    # (2) bit-identity with an independent replay of the journal
    reference = Database()
    for record in records:
        reference.run_sql(record.sql)
    recovered_rows = sorted(recovery.database.table("T").rows)
    assert recovered_rows == sorted(reference.table("T").rows)

    # every acknowledged row is present exactly once
    by_aid = [row[0] for row in recovered_rows]
    for token, aid in acked:
        assert by_aid.count(aid) == 1, f"{token} applied {by_aid.count(aid)}x"
    return recovery, records


@pytest.mark.parametrize(
    "faults",
    [
        "",
        "wal.fsync:every=7",
        "wal.append:every=11",
    ],
    ids=["clean", "fsync-faults", "append-faults"],
)
def test_sigkill_mid_storm_loses_no_acked_writes(tmp_path, faults):
    wal_dir = tmp_path / "wal"
    process, host, port = launch_server(wal_dir, faults=faults)
    try:
        with ReproClient(host, port, timeout=15) as setup:
            setup.query("CREATE TABLE T (aid INTEGER NOT NULL, "
                        "tid INTEGER NOT NULL)")
        acked, enough, workers = ingest_storm(host, port)
        assert enough.wait(timeout=30), "storm produced too few ACKs"
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=15)
        for w in workers:
            w.join(timeout=30)
        assert len(acked) >= 30
        recover_and_check(wal_dir, acked)
    finally:
        if process.poll() is None:
            process.kill()


def test_restart_recovers_and_sigterm_drains(tmp_path):
    """End-to-end restart: a SIGKILLed server's journal is recovered by
    a fresh ``repro serve`` on the same directory, which serves the
    surviving rows and shuts down gracefully on SIGTERM (flushing what
    it journaled) — the graceful-shutdown contract of ``repro serve``."""
    wal_dir = tmp_path / "wal"
    process, host, port = launch_server(wal_dir)
    acked: list[tuple[str, int]] = []
    try:
        with ReproClient(host, port, timeout=15) as client:
            client.query("CREATE TABLE T (aid INTEGER NOT NULL, "
                         "tid INTEGER NOT NULL)")
            for i in range(20):
                client.query(f"INSERT INTO T VALUES ({i}, 0)",
                             token=f"pre-{i}")
                acked.append((f"pre-{i}", i))
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=15)
    finally:
        if process.poll() is None:
            process.kill()

    # relaunch on the same journal: recovery must serve every ACKed row
    process, host, port = launch_server(wal_dir)
    try:
        with ReproClient(host, port, timeout=15) as client:
            table = client.query("SELECT aid FROM T").table
            assert sorted(r[0] for r in table.rows) == list(range(20))
            # a retried pre-crash token still dedups after the restart
            reply = client.query("INSERT INTO T VALUES (0, 0)",
                                 token="pre-0")
            assert reply.deduped
            client.query("INSERT INTO T VALUES (999, 9)", token="post-0")
        process.send_signal(signal.SIGTERM)
        stdout, _ = process.communicate(timeout=20)
        assert process.returncode == 0
        assert "server stopped (journal flushed)" in stdout
    finally:
        if process.poll() is None:
            process.kill()

    # the graceful shutdown flushed the post-restart write too
    wal = WriteAheadLog(wal_dir, sync="os")
    recovery = wal.recover()
    wal.close()
    assert "post-0" in recovery.tokens
    rows = sorted(r[0] for r in recovery.database.table("T").rows)
    assert rows == [*range(20), 999]
