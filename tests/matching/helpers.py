"""Shared helpers for matching tests."""

from __future__ import annotations

from repro.catalog import credit_card_catalog
from repro.engine.table import tables_equal
from repro.matching.navigator import match_graphs, root_matches
from repro.qgm import build_graph

CATALOG = credit_card_catalog()


def match_roots(query_sql: str, ast_sql: str, catalog=None):
    """Best match between the query and the AST root, or None."""
    catalog = catalog or CATALOG
    query = build_graph(query_sql, catalog, "Q")
    ast = build_graph(ast_sql, catalog, "A")
    ctx = match_graphs(query, ast)
    candidates = root_matches(query, ast, ctx)
    return candidates[0] if candidates else None


def assert_rewrite_equivalent(db, query_sql: str, ast_sql: str, name="TestAst"):
    """Create the AST, rewrite the query, check result equivalence, and
    return the rewrite result."""
    db.create_summary_table(name, ast_sql)
    plain = db.execute(query_sql, use_summary_tables=False)
    result = db.rewrite(query_sql)
    assert result is not None, "expected a rewrite"
    rewritten = db.execute_graph(result.graph)
    assert tables_equal(plain, rewritten), (
        f"rewritten results differ\nplain: {plain.sorted_rows()[:10]}"
        f"\nrewritten: {rewritten.sorted_rows()[:10]}"
    )
    return result


def assert_no_rewrite(db, query_sql: str, ast_sql: str, name="TestAst"):
    db.create_summary_table(name, ast_sql)
    assert db.rewrite(query_sql) is None, "expected no rewrite"
