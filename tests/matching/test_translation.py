"""Expression translation (Section 6): Figure 15's trace and Table 1's
semantic-inequivalence detection."""

from repro.catalog import credit_card_catalog
from repro.expr import AggCall, BinaryOp, ColumnRef, Literal
from repro.matching.framework import chain_output_in_subsumer_context
from repro.matching.navigator import match_graphs
from repro.matching.translation import (
    ChildTranslator,
    MatchedChildPair,
    describe_aggregating_conflict,
    trace_translation,
)
from repro.qgm import build_graph

from tests.matching.helpers import assert_no_rewrite, match_roots

CATALOG = credit_card_catalog()

INNER_AST = """
select flid, year(date) as year, count(*) as cnt
from Trans
group by flid, year(date)
"""

HAVING_QUERY = """
select flid, count(*) as cnt
from Trans
group by flid
having count(*) > 2
"""


def _groupby_pair():
    """The (GB-2Q, GB-2A) match of the Figure 15 setting plus the top
    boxes, so tests can translate the HAVING predicate."""
    query = build_graph(HAVING_QUERY, CATALOG, "Q")
    ast = build_graph(INNER_AST, CATALOG, "A")
    ctx = match_graphs(query, ast)
    query_gb = query.root.children()[0]
    ast_gb = ast.root.children()[0]
    match = ctx.get(query_gb, ast_gb)
    assert match is not None
    top_pair = MatchedChildPair(
        query.root.quantifiers()[0], ast.root.quantifiers()[0], match
    )
    return query, ast, top_pair


class TestTranslationThroughGrouping:
    def test_cnt_translates_to_sum_cnt(self):
        """Figure 15: cnt-3Q expands to SUM(cnt-3A)."""
        query, ast, pair = _groupby_pair()
        translator = ChildTranslator([pair], set())
        predicate = query.root.predicates[0]  # count(*) > 2, bound as cnt > 2
        translated = translator.translate(predicate)
        assert translated.contains_aggregate()
        aggs = [n for n in translated.walk() if isinstance(n, AggCall)]
        assert len(aggs) == 1 and aggs[0].func == "sum"
        (arg,) = aggs[0].children()
        assert isinstance(arg, ColumnRef)
        assert arg.qualifier == pair.subsumer_q.name

    def test_translated_predicate_differs_from_subsumer_predicate(self):
        """sum(cnt) > 2 is not cnt > 2: the Table 1 detection."""
        query, ast, pair = _groupby_pair()
        translator = ChildTranslator([pair], set())
        translated = translator.translate(query.root.predicates[0])
        plain = BinaryOp(">", ColumnRef(pair.subsumer_q.name, "cnt"), Literal(2))
        assert translated != plain

    def test_grouping_column_translates_directly(self):
        query, ast, pair = _groupby_pair()
        translator = ChildTranslator([pair], set())
        flid = query.root.output("flid").expr
        translated = translator.translate(flid)
        assert translated == ColumnRef(pair.subsumer_q.name, "flid")

    def test_translation_cached(self):
        query, ast, pair = _groupby_pair()
        translator = ChildTranslator([pair], set())
        ref = query.root.output("cnt").expr
        first = translator.translate(ref)
        second = translator.translate(ref)
        assert first == second


class TestFigure15Trace:
    def test_trace_steps(self):
        query, ast, pair = _groupby_pair()
        steps = trace_translation(
            query.root.predicates[0], [pair], set()
        )
        assert len(steps) >= 3
        assert steps[0].description.startswith("original")
        final = steps[-1].expr
        assert final.contains_aggregate()

    def test_trace_is_stable_for_untranslatable(self):
        expr = Literal(5)
        steps = trace_translation(expr, [], set())
        assert steps[-1].expr == Literal(5)

    def test_describe_conflict_mentions_aggregate(self):
        query, ast, pair = _groupby_pair()
        translator = ChildTranslator([pair], set())
        translated = translator.translate(query.root.predicates[0])
        message = describe_aggregating_conflict(translated)
        assert "SUM" in message


class TestTable1:
    """The modified AST10 (HAVING count(*) > 2) must not match Q10."""

    def test_having_ast_rejected(self, tiny_db):
        assert_no_rewrite(
            tiny_db,
            HAVING_QUERY,
            """
            select flid, year(date) as year, count(*) as cnt
            from Trans
            group by flid, year(date)
            having count(*) > 2
            """,
        )

    def test_same_having_still_no_textual_match(self):
        # Even textually identical HAVING clauses are not equivalent when
        # the grouping differs (the paper's core point).
        assert match_roots(
            HAVING_QUERY,
            """
            select flid, year(date) as year, count(*) as cnt
            from Trans group by flid, year(date) having count(*) > 2
            """,
        ) is None

    def test_matching_having_same_grouping_is_fine(self):
        match = match_roots(
            HAVING_QUERY,
            "select flid, count(*) as cnt from Trans group by flid "
            "having count(*) > 2",
        )
        assert match is not None


class TestChainOutputInlining:
    def test_exact_match_maps_by_column_map(self):
        query = build_graph("select tid, qty from Trans", CATALOG, "Q")
        ast = build_graph("select tid, qty, price from Trans", CATALOG, "A")
        ctx = match_graphs(query, ast)
        match = ctx.get(query.root, ast.root)
        assert match is not None and match.exact
        expr = chain_output_in_subsumer_context(match, "qty", "r")
        assert expr == ColumnRef("r", "qty")


class TestTranslationHelpers:
    def test_is_aggregating(self):
        from repro.expr import AggCall, ColumnRef, Literal, NaryOp
        from repro.matching.translation import is_aggregating

        plain = NaryOp("+", (ColumnRef("g", "cnt"), Literal(1)))
        aggregating = NaryOp("+", (AggCall("count"), Literal(1)))
        assert not is_aggregating(plain)
        assert is_aggregating(aggregating)

    def test_references_rejoin(self):
        from repro.expr import BinaryOp, ColumnRef
        from repro.matching.translation import references_rejoin

        predicate = BinaryOp(
            "=", ColumnRef("Loc", "lid"), ColumnRef("_in", "flid")
        )
        assert references_rejoin(predicate, {"Loc"})
        assert not references_rejoin(predicate, {"PGroup"})

    def test_untranslatable_quantifier_raises(self):
        import pytest

        from repro.errors import ReproError
        from repro.expr import ColumnRef
        from repro.matching.translation import ChildTranslator

        translator = ChildTranslator([], set())
        with pytest.raises(ReproError):
            translator.translate(ColumnRef("ghost", "x"))
