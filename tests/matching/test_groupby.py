"""GROUP-BY patterns: 4.1.2 (with the full rule list), 4.2.1, 4.2.2."""

import pytest

from repro.expr import AggCall
from repro.matching.framework import chain_has_grouping
from repro.qgm.boxes import GroupByBox

from tests.matching.helpers import (
    assert_no_rewrite,
    assert_rewrite_equivalent,
    match_roots,
)


MONTHLY = """
select faid, year(date) as year, month(date) as month,
       count(*) as cnt, count(disc) as dcnt, sum(qty) as sqty,
       min(price) as lo, max(price) as hi
from Trans
group by faid, year(date), month(date)
"""


class TestExactGrouping:
    def test_identical_grouping_exact_match(self):
        ast = "select faid, count(*) as c from Trans group by faid"
        match = match_roots(
            "select faid, count(*) as n from Trans group by faid", ast
        )
        assert match is not None and match.exact
        assert match.column_map == {"faid": "faid", "n": "c"}

    def test_matching_aggregates_required_when_sets_equal(self, tiny_db):
        # Exact grouping but the AST lacks MIN: fall back to regrouping
        # derivation (min is not derivable without a min output) -> fail.
        assert_no_rewrite(
            tiny_db,
            "select faid, min(price) as lo from Trans group by faid",
            "select faid, count(*) as c from Trans group by faid",
        )


class TestAggregateRules:
    """Section 4.1.2's derivation rules (a)-(g) under regrouping."""

    def check(self, tiny_db, select_list, expect=True):
        query = f"select faid, {select_list} from Trans group by faid"
        if expect:
            return assert_rewrite_equivalent(tiny_db, query, MONTHLY)
        assert_no_rewrite(tiny_db, query, MONTHLY)
        return None

    def test_rule_a_count_star(self, tiny_db):
        self.check(tiny_db, "count(*) as n")

    def test_rule_b_count_column(self, tiny_db):
        self.check(tiny_db, "count(disc) as n")

    def test_rule_b_count_nonnullable_uses_rowcount(self, tiny_db):
        # count(qty): qty non-nullable, AST has no count(qty) output but
        # count(*) works.
        self.check(tiny_db, "count(qty) as n")

    def test_rule_c_sum(self, tiny_db):
        self.check(tiny_db, "sum(qty) as s")

    def test_rule_c_sum_of_grouping_column_times_count(self, tiny_db):
        # sum(year): year is a grouping column of the AST -> year * cnt.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select faid, sum(year(date)) as s from Trans group by faid",
            MONTHLY,
        )
        chain = result.applied[0].match.chain
        bottom = chain[0]
        pre = bottom.output("s").expr
        names = {ref.name for ref in pre.column_refs()}
        assert names == {"year", "cnt"}

    def test_rule_d_max(self, tiny_db):
        self.check(tiny_db, "max(price) as m")

    def test_rule_d_max_of_grouping_column(self, tiny_db):
        self.check(tiny_db, "max(month(date)) as m")

    def test_rule_e_min(self, tiny_db):
        self.check(tiny_db, "min(price) as m")

    def test_rule_f_count_distinct_grouping_column(self, tiny_db):
        self.check(tiny_db, "count(distinct month(date)) as m")

    def test_rule_f_count_distinct_non_grouping_rejected(self, tiny_db):
        self.check(tiny_db, "count(distinct price) as m", expect=False)

    def test_rule_g_sum_distinct_grouping_column(self, tiny_db):
        self.check(tiny_db, "sum(distinct month(date)) as m")

    def test_avg_via_sum_and_count(self, tiny_db):
        result = self.check(tiny_db, "avg(qty) as a")
        chain = result.applied[0].match.chain
        # avg needs a combining SELECT above the regrouping GROUP-BY.
        gb_index = next(
            i for i, box in enumerate(chain) if isinstance(box, GroupByBox)
        )
        assert len(chain) > gb_index + 1

    def test_avg_without_count_rejected(self, tiny_db):
        assert_no_rewrite(
            tiny_db,
            "select faid, avg(price) as a from Trans group by faid",
            "select faid, year(date) as y, sum(qty) as s from Trans "
            "group by faid, year(date)",
        )

    def test_underivable_sum_rejected(self, tiny_db):
        self.check(tiny_db, "sum(price) as s", expect=False)


class TestPattern421:
    """GROUP-BY with SELECT-only child compensation."""

    def test_predicate_pullup_through_grouping(self, tiny_db):
        # Figure 7's shape: the month predicate survives because month is
        # an AST grouping column.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select year(date) % 100 as y2, sum(qty) as s from Trans "
            "where month(date) >= 6 group by year(date) % 100",
            "select year(date) as year, month(date) as month, sum(qty) as s "
            "from Trans group by year(date), month(date)",
        )

    def test_pullup_fails_for_non_grouping_predicate(self, tiny_db):
        # price is not a grouping column of the AST: pull-up impossible.
        assert_no_rewrite(
            tiny_db,
            "select year(date) as y, count(*) as c from Trans "
            "where price > 100 group by year(date)",
            "select year(date) as year, count(*) as cnt from Trans "
            "group by year(date)",
        )

    def test_rejoin_one_to_n_avoids_regrouping(self):
        match = match_roots(
            "select lid, year(date) as year, count(*) as cnt "
            "from Trans, Loc where flid = lid and country = 'USA' "
            "group by lid, year(date)",
            "select flid, year(date) as year, count(*) as cnt "
            "from Trans group by flid, year(date)",
        )
        assert match is not None
        assert not chain_has_grouping(match.chain)

    def test_rejoin_on_non_key_requires_regrouping(self, tiny_db):
        # Joining Loc on state (not a key) can duplicate rows: the match
        # must regroup to stay correct.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select state, year(date) as year, count(*) as cnt "
            "from Trans, Loc where flid = lid "
            "group by state, year(date)",
            "select flid, year(date) as year, count(*) as cnt "
            "from Trans group by flid, year(date)",
        )
        match = result.applied[0].match
        assert chain_has_grouping(match.chain)

    def test_aggregation_over_rejoin_column_rejected(self, tiny_db):
        assert_no_rewrite(
            tiny_db,
            "select year(date) as year, count(lid) as cnt "
            "from Trans, Loc where flid = lid group by year(date)",
            "select flid, year(date) as year, count(*) as cnt "
            "from Trans group by flid, year(date)",
        )


class TestPattern422:
    """GROUP-BY child compensation (the histogram query, Figure 10)."""

    AST8 = """
    select year, tcnt, count(*) as mcnt
    from (select year(date) as year, month(date) as month, count(*) as tcnt
          from Trans group by year(date), month(date))
    group by year, tcnt
    """
    Q8 = """
    select tcnt, count(*) as ycnt
    from (select year(date) as year, count(*) as tcnt
          from Trans group by year(date))
    group by tcnt
    """

    def test_histogram_match(self, tiny_db):
        result = assert_rewrite_equivalent(tiny_db, self.Q8, self.AST8)
        match = result.applied[0].match
        assert match.pattern in ("4.2.2", "4.2.4")
        # The chain must regroup twice: months->years, then the histogram.
        groupbys = [b for b in match.chain if isinstance(b, GroupByBox)]
        assert len(groupbys) == 2

    def test_inner_blocks_also_match(self, tiny_db):
        # A query needing only the inner aggregation can still use AST8?
        # No: AST8's root histogram has lost the per-year counts as rows.
        assert_no_rewrite(
            tiny_db,
            "select year(date) as year, count(*) as c from Trans "
            "group by year(date)",
            self.AST8,
        )


class TestGroupingColumnDerivation:
    def test_grouping_expression_of_grouping_column(self, tiny_db):
        # year % 100 derives from the AST's year grouping column.
        assert_rewrite_equivalent(
            tiny_db,
            "select year(date) % 100 as y2, count(*) as c from Trans "
            "group by year(date) % 100",
            "select year(date) as year, count(*) as cnt from Trans "
            "group by year(date)",
        )

    def test_underivable_grouping_column_rejected(self, tiny_db):
        # Grouping by month cannot be derived from yearly grouping.
        assert_no_rewrite(
            tiny_db,
            "select month(date) as m, count(*) as c from Trans "
            "group by month(date)",
            "select year(date) as year, count(*) as cnt from Trans "
            "group by year(date)",
        )

    def test_scalar_aggregate_query_over_grouped_ast(self, tiny_db):
        assert_rewrite_equivalent(
            tiny_db,
            "select count(*) as n, sum(qty) as s from Trans",
            "select faid, count(*) as cnt, sum(qty) as sq from Trans group by faid",
        )
