"""Regression and edge-case tests for the matcher."""

import datetime

import pytest

from repro.catalog import credit_card_catalog
from repro.engine import Database

from tests.matching.helpers import (
    assert_no_rewrite,
    assert_rewrite_equivalent,
    match_roots,
)


@pytest.fixture
def one_row_db():
    db = Database(credit_card_catalog())
    d = datetime.date
    db.load("Loc", [(1, "SJ", "CA", "USA")])
    db.load("PGroup", [(1, "TV")])
    db.load("Cust", [(1, "A", "CA")])
    db.load("Acct", [(10, 1, "gold")])
    db.load("Trans", [(1, 1, 1, 10, d(1990, 1, 5), 2, 10.0, 0.1)])
    return db


YEARLY = (
    "select year(date) as year, count(*) as cnt, sum(qty) as sq "
    "from Trans group by year(date)"
)


class TestEmptyGroupRegression:
    """COUNT over an empty (grand-total) group must be 0, not NULL."""

    def test_filtered_out_scalar_count(self, one_row_db):
        result = assert_rewrite_equivalent(
            one_row_db,
            "select count(*) as n, sum(qty) as s from Trans "
            "where year(date) = 1850",
            YEARLY,
        )
        rewritten = one_row_db.execute_graph(result.graph)
        assert rewritten.rows == [(0, None)]

    def test_filtered_out_scalar_avg(self, one_row_db):
        result = assert_rewrite_equivalent(
            one_row_db,
            "select count(*) as n, avg(qty) as a from Trans "
            "where year(date) = 1850",
            YEARLY,
        )
        assert one_row_db.execute_graph(result.graph).rows == [(0, None)]

    def test_rollup_grand_total_nonempty(self, one_row_db):
        assert_rewrite_equivalent(
            one_row_db,
            "select year(date) as year, count(*) as cnt from Trans "
            "group by rollup(year(date))",
            "select faid, year(date) as year, count(*) as cnt from Trans "
            "group by faid, year(date)",
        )


class TestEmptyAndDegenerateInputs:
    def test_empty_base_table(self):
        db = Database(credit_card_catalog())
        db.create_summary_table("S", YEARLY)
        result = assert_rewrite_equivalent(
            db,
            "select count(*) as n from Trans",
            "select faid, count(*) as c from Trans group by faid",
            name="S2",
        )
        assert db.execute_graph(result.graph).rows == [(0,)]

    def test_query_identical_to_ast(self, one_row_db):
        result = assert_rewrite_equivalent(one_row_db, YEARLY, YEARLY)
        assert result is not None

    def test_constant_output_column(self, one_row_db):
        assert_rewrite_equivalent(
            one_row_db,
            "select faid, 42 as k, count(*) as n from Trans group by faid",
            "select faid, count(*) as cnt from Trans group by faid",
        )

    def test_predicate_on_constant(self, one_row_db):
        assert_rewrite_equivalent(
            one_row_db,
            "select faid, count(*) as n from Trans where 1 = 1 group by faid",
            "select faid, count(*) as cnt from Trans group by faid",
        )


class TestMatcherRobustness:
    def test_ast_over_different_fact_table_ignored(self, one_row_db):
        assert_no_rewrite(
            one_row_db,
            "select faid, count(*) as n from Trans group by faid",
            "select cid, count(*) as n from Cust group by cid",
        )

    def test_self_join_query_conservative(self, one_row_db):
        # Self-joins violate the pairing assumptions (footnote 3); the
        # matcher may refuse or rewrite, but must never be wrong.
        query = (
            "select t1.faid, count(*) as n from Trans t1, Trans t2 "
            "where t1.faid = t2.faid group by t1.faid"
        )
        one_row_db.create_summary_table(
            "S", "select faid, count(*) as cnt from Trans group by faid"
        )
        result = one_row_db.rewrite(query)
        if result is not None:
            from repro.engine.table import tables_equal

            plain = one_row_db.execute(query, use_summary_tables=False)
            assert tables_equal(plain, one_row_db.execute_graph(result.graph))

    def test_reused_ast_after_data_growth_is_stale_by_design(self, one_row_db):
        """Summary tables are snapshots; without maintenance the rewrite
        sees stale data (documented behaviour, exercised here)."""
        one_row_db.create_summary_table(
            "S", "select faid, count(*) as cnt from Trans group by faid"
        )
        one_row_db.load(
            "Trans",
            [(2, 1, 1, 10, datetime.date(1991, 2, 2), 1, 5.0, 0.0)],
        )
        stale = one_row_db.execute(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert stale.rows == [(10, 1)]  # stale snapshot
        one_row_db.refresh_summary_tables()
        fresh = one_row_db.execute(
            "select faid, count(*) as n from Trans group by faid"
        )
        assert fresh.rows == [(10, 2)]

    def test_multiple_havings_and_between(self, one_row_db):
        assert_rewrite_equivalent(
            one_row_db,
            "select faid, count(*) as n from Trans "
            "where qty between 1 and 5 group by faid "
            "having count(*) > 0 and count(*) < 100",
            "select faid, qty, count(*) as cnt from Trans group by faid, qty",
        )

    def test_in_list_predicate_compensated(self, one_row_db):
        assert_rewrite_equivalent(
            one_row_db,
            "select faid, count(*) as n from Trans "
            "where flid in (1, 2) group by faid",
            "select faid, flid, count(*) as cnt from Trans group by faid, flid",
        )


class TestHavingSubsumption:
    """HAVING on the AST is fine when the grouping matches exactly and the
    query's HAVING is stricter (footnote 4 at the top select level)."""

    def test_stricter_query_having_matches(self, one_row_db):
        result = assert_rewrite_equivalent(
            one_row_db,
            "select faid, count(*) as n from Trans group by faid "
            "having count(*) > 5",
            "select faid, count(*) as cnt from Trans group by faid "
            "having count(*) > 2",
        )
        comp = result.applied[0].match.chain[0]
        assert len(comp.predicates) == 1  # the stricter bound re-applied

    def test_identical_having_is_exact(self, one_row_db):
        result = assert_rewrite_equivalent(
            one_row_db,
            "select faid, count(*) as n from Trans group by faid "
            "having count(*) > 2",
            "select faid, count(*) as cnt from Trans group by faid "
            "having count(*) > 2",
        )
        assert result.applied[0].match.exact

    def test_weaker_query_having_rejected(self, one_row_db):
        assert_no_rewrite(
            one_row_db,
            "select faid, count(*) as n from Trans group by faid "
            "having count(*) > 1",
            "select faid, count(*) as cnt from Trans group by faid "
            "having count(*) > 5",
        )

    def test_having_with_different_grouping_rejected(self, one_row_db):
        # The Table 1 case again, but with the roles spelled out here for
        # completeness: regrouping across a HAVING is never sound.
        assert_no_rewrite(
            one_row_db,
            "select count(*) as n from Trans",
            "select faid, count(*) as cnt from Trans group by faid "
            "having count(*) > 0",
        )


class TestFunctionDerivationLimits:
    """Function matching is syntactic (the paper calls expression
    matching orthogonal): quarter(date) is mathematically a function of
    month(date), but no algebraic reasoning is attempted."""

    def test_quarter_not_derived_from_month(self, one_row_db):
        assert_no_rewrite(
            one_row_db,
            "select quarter(date) as q, count(*) as n from Trans "
            "group by quarter(date)",
            "select month(date) as m, count(*) as cnt from Trans "
            "group by month(date)",
        )

    def test_quarter_derived_when_ast_groups_by_it(self, one_row_db):
        assert_rewrite_equivalent(
            one_row_db,
            "select quarter(date) as q, count(*) as n from Trans "
            "group by quarter(date)",
            "select quarter(date) as q, faid, count(*) as cnt from Trans "
            "group by quarter(date), faid",
        )

    def test_commuted_aggregate_argument_matches(self, one_row_db):
        # price * qty vs qty * price: normalization handles commutativity.
        assert_rewrite_equivalent(
            one_row_db,
            "select faid, sum(price * qty) as s from Trans group by faid",
            "select faid, sum(qty * price) as total from Trans group by faid",
        )

    def test_case_expression_output_derived(self, one_row_db):
        assert_rewrite_equivalent(
            one_row_db,
            "select faid, case when faid > 15 then 'hi' else 'lo' end as band, "
            "count(*) as n from Trans group by faid",
            "select faid, count(*) as cnt from Trans group by faid",
        )
