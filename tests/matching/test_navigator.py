"""Navigator and match-function dispatch."""

from repro.catalog import credit_card_catalog
from repro.matching import MatchContext, match_boxes, match_graphs, root_matches
from repro.qgm import build_graph

CATALOG = credit_card_catalog()


def graphs(query_sql, ast_sql):
    return (
        build_graph(query_sql, CATALOG, "Q"),
        build_graph(ast_sql, CATALOG, "A"),
    )


class TestBaseTableMatching:
    def test_same_table_matches_exactly(self):
        query, ast = graphs("select tid from Trans", "select tid from Trans")
        q_leaf = query.root.children()[0]
        a_leaf = ast.root.children()[0]
        match = match_boxes(q_leaf, a_leaf, MatchContext(CATALOG))
        assert match is not None and match.exact
        assert match.column_map["tid"] == "tid"

    def test_different_tables_do_not_match(self):
        query, ast = graphs("select tid from Trans", "select lid from Loc")
        match = match_boxes(
            query.root.children()[0], ast.root.children()[0], MatchContext(CATALOG)
        )
        assert match is None

    def test_cross_type_boxes_do_not_match(self):
        # Condition 2: a SELECT never matches a GROUP-BY.
        query, ast = graphs(
            "select tid from Trans",
            "select faid, count(*) as c from Trans group by faid",
        )
        groupby = ast.root.children()[0]
        match = match_boxes(query.root, groupby, MatchContext(CATALOG))
        assert match is None


class TestNavigation:
    def test_bottom_up_matches_recorded(self):
        query, ast = graphs(
            "select faid, count(*) as c from Trans group by faid",
            "select faid, count(*) as c from Trans group by faid",
        )
        ctx = match_graphs(query, ast)
        # base tables + lower selects + group-bys + top selects all match
        assert len(ctx.results) >= 4

    def test_no_common_leaf_no_matches(self):
        query, ast = graphs(
            "select lid from Loc",
            "select pgid, count(*) as c from PGroup group by pgid",
        )
        ctx = match_graphs(query, ast)
        assert not ctx.results

    def test_root_matches_prefers_higher_boxes(self):
        query, ast = graphs(
            "select faid, count(*) as c from Trans group by faid "
            "having count(*) > 1",
            "select faid, count(*) as c from Trans group by faid",
        )
        ctx = match_graphs(query, ast)
        ordered = root_matches(query, ast, ctx)
        assert ordered
        assert ordered[0].subsumee is query.root

    def test_match_context_fresh_names_unique(self):
        ctx = MatchContext(CATALOG)
        names = {ctx.fresh_name("Sel") for _ in range(100)}
        assert len(names) == 100

    def test_describe_mentions_pattern(self):
        query, ast = graphs("select tid from Trans", "select tid from Trans")
        ctx = match_graphs(query, ast)
        described = [m.describe() for m in ctx.results.values()]
        assert any("base-table" in text for text in described)
