"""Supergroup matching: Section 5 (slicing predicates, cuboid choice,
cube-vs-cube)."""

from repro.expr import IsNull
from repro.matching.framework import MAIN, chain_has_grouping
from repro.qgm.boxes import GroupByBox, SelectBox

from tests.matching.helpers import (
    assert_no_rewrite,
    assert_rewrite_equivalent,
    match_roots,
)

AST11 = """
select flid, faid, year(date) as year, month(date) as month, count(*) as cnt
from Trans
group by grouping sets ((flid, faid, year(date)), (flid, year(date)),
                        (flid, year(date), month(date)))
"""

AST12 = """
select flid, faid, year(date) as year, month(date) as month, count(*) as cnt
from Trans
group by grouping sets ((flid, faid, year(date)), (flid, year(date)),
                        (flid, year(date), month(date)), (year(date)))
"""


def slicing_predicates(box):
    return [p for p in box.predicates if isinstance(p, IsNull)]


class TestSimpleQueryCubeAst:
    """Section 5.1."""

    def test_exact_cuboid_slicing_only(self, tiny_db):
        result = assert_rewrite_equivalent(
            tiny_db,
            "select flid, year(date) as year, count(*) as cnt "
            "from Trans where year(date) > 1990 group by flid, year(date)",
            AST11,
        )
        match = result.applied[0].match
        assert not chain_has_grouping(match.chain)
        comp = match.chain[0]
        slices = slicing_predicates(comp)
        # One IS [NOT] NULL conjunct per AST grouping column.
        assert len(slices) == 4
        wanted_not_null = {
            p.operand.name for p in slices if p.negated
        }
        wanted_null = {p.operand.name for p in slices if not p.negated}
        assert wanted_not_null == {"flid", "year"}
        assert wanted_null == {"faid", "month"}

    def test_smallest_matching_cuboid_chosen(self, tiny_db):
        # (flid, year) is preferred over (flid, year, month) and
        # (flid, faid, year) because it is the smallest cuboid.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select flid, year(date) as year, count(*) as cnt "
            "from Trans group by flid, year(date)",
            AST11,
        )
        comp = result.applied[0].match.chain[0]
        null_columns = {
            p.operand.name for p in slicing_predicates(comp) if not p.negated
        }
        assert null_columns == {"faid", "month"}

    def test_pullup_plus_regroup_uses_month_cuboid(self, tiny_db):
        # Q11.2: the month >= 6 predicate forces the month-level cuboid
        # and a regrouping back to (flid, year).
        result = assert_rewrite_equivalent(
            tiny_db,
            "select flid, year(date) as year, count(*) as cnt "
            "from Trans where month(date) >= 6 group by flid, year(date)",
            AST11,
        )
        match = result.applied[0].match
        assert chain_has_grouping(match.chain)
        bottom = match.chain[0]
        not_null = {
            p.operand.name for p in slicing_predicates(bottom) if p.negated
        }
        assert not_null == {"flid", "year", "month"}

    def test_count_distinct_non_match(self, tiny_db):
        # Q11.3: count(distinct faid) grouped by (flid, year, month) has
        # no cuboid containing all four columns.
        assert_no_rewrite(
            tiny_db,
            "select flid, year(date) as year, month(date) as month, "
            "count(distinct faid) as custcnt from Trans "
            "group by flid, year(date), month(date)",
            AST11,
        )

    def test_count_distinct_matches_when_cuboid_exists(self, tiny_db):
        # With faid inside a matching cuboid, rule (f) applies.
        assert_rewrite_equivalent(
            tiny_db,
            "select flid, year(date) as year, count(distinct faid) as c "
            "from Trans group by flid, year(date)",
            AST11,
        )

    def test_nullable_grouping_source_blocks_slicing(self):
        # A nullable grouping column would make IS NULL slicing unsound.
        from repro.catalog import Catalog, Column, DataType, TableSchema

        catalog = Catalog()
        catalog.add_table(
            TableSchema(
                "F",
                [
                    Column("a", DataType.INTEGER, nullable=True),
                    Column("b", DataType.INTEGER),
                ],
            )
        )
        match = match_roots(
            "select a, count(*) as c from F group by a",
            "select a, b, count(*) as c from F group by grouping sets ((a, b), (a))",
            catalog,
        )
        assert match is None


class TestCubeQueryCubeAst:
    """Section 5.2."""

    def test_direct_disjunctive_slicing(self, tiny_db):
        # Q12.1: both query cuboids exist in the AST; a single SELECT with
        # an OR of slicing conjunctions suffices.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select flid, year(date) as year, count(*) as cnt "
            "from Trans where year(date) > 1990 "
            "group by grouping sets ((flid, year(date)), (year(date)))",
            AST12,
        )
        match = result.applied[0].match
        assert len(match.chain) == 1
        assert isinstance(match.chain[0], SelectBox)

    def test_regrouping_from_union_cuboid(self, tiny_db):
        # Q12.2: (flid) is not an AST cuboid; the union set (flid, year)
        # is sliced and regrouped with the query's own grouping sets.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select flid, year(date) as year, count(*) as cnt "
            "from Trans where year(date) > 1990 "
            "group by grouping sets ((flid), (year(date)))",
            AST12,
        )
        match = result.applied[0].match
        groupbys = [b for b in match.chain if isinstance(b, GroupByBox)]
        assert len(groupbys) == 1
        assert groupbys[0].is_multidimensional
        assert set(groupbys[0].grouping_sets) == {("flid",), ("year",)}

    def test_missing_cuboid_everywhere_fails(self, tiny_db):
        # (faid, month) is in no cuboid and no union covers it.
        assert_no_rewrite(
            tiny_db,
            "select faid, month(date) as month, count(*) as cnt from Trans "
            "group by grouping sets ((faid), (month(date)))",
            AST11,
        )

    def test_cube_query_against_simple_ast_regroups(self, tiny_db):
        # Beyond the paper's 5.2 pattern (which requires a cube AST): a
        # cube query over a simple AST is sound via union-set regrouping.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select flid, year(date) as year, count(*) as cnt from Trans "
            "group by grouping sets ((flid), (year(date)))",
            "select flid, year(date) as year, count(*) as cnt from Trans "
            "group by flid, year(date)",
        )
        groupbys = [b for b in result.applied[0].match.chain if isinstance(b, GroupByBox)]
        assert groupbys and groupbys[0].is_multidimensional

    def test_rollup_query_with_grand_total_over_simple_ast(self, tiny_db):
        # The grand-total cuboid exercises the empty-group COUNT fix.
        assert_rewrite_equivalent(
            tiny_db,
            "select year(date) as year, count(*) as cnt from Trans "
            "group by rollup(year(date))",
            "select faid, year(date) as year, count(*) as cnt from Trans "
            "group by faid, year(date)",
        )


class TestRollupQueries:
    def test_rollup_query_over_cube_ast(self, tiny_db):
        assert_rewrite_equivalent(
            tiny_db,
            "select flid, year(date) as year, count(*) as cnt from Trans "
            "group by rollup(flid, year(date))",
            "select flid, faid, year(date) as year, count(*) as cnt from Trans "
            "group by cube(flid, faid, year(date))",
        )

    def test_rollup_ast_answers_prefix(self, tiny_db):
        assert_rewrite_equivalent(
            tiny_db,
            "select flid, count(*) as cnt from Trans group by flid",
            "select flid, year(date) as year, count(*) as cnt from Trans "
            "group by rollup(flid, year(date))",
        )

    def test_grand_total_from_rollup(self, tiny_db):
        assert_rewrite_equivalent(
            tiny_db,
            "select count(*) as cnt from Trans",
            "select flid, count(*) as cnt from Trans group by rollup(flid)",
        )


class TestCubeWithRejoins:
    """5.1 combined with rejoin compensation: slicing + dimension rejoin."""

    CUBE_AST = """
    select flid, faid, year(date) as year, count(*) as cnt
    from Trans
    group by grouping sets ((flid, faid), (flid, year(date)), (flid))
    """

    def test_rejoined_dimension_over_cuboid(self, tiny_db):
        result = assert_rewrite_equivalent(
            tiny_db,
            "select state, count(*) as cnt from Trans, Loc "
            "where flid = lid group by state",
            self.CUBE_AST,
        )
        match = result.applied[0].match
        bottom = match.chain[0]
        # slicing predicates select the smallest usable cuboid: (flid)
        not_null = {
            p.operand.name
            for p in bottom.predicates
            if isinstance(p, IsNull) and p.negated
        }
        assert not_null == {"flid"}
        rejoins = [q.name for q in bottom.quantifiers() if q.name != MAIN]
        assert rejoins == ["Loc"]

    def test_rejoin_grouped_by_key_no_regroup(self, tiny_db):
        result = assert_rewrite_equivalent(
            tiny_db,
            "select lid, count(*) as cnt from Trans, Loc "
            "where flid = lid group by lid",
            self.CUBE_AST,
        )
        match = result.applied[0].match
        assert not chain_has_grouping(match.chain)  # 1:N rule + slicing
