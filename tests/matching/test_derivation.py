"""Scalar and aggregate derivation unit tests."""

from repro.expr import (
    AggCall,
    BinaryOp,
    ColumnRef,
    EquivalenceClasses,
    FuncCall,
    Literal,
    NaryOp,
)
from repro.matching.derivation import (
    AggregateScope,
    DerivationScope,
    derive_aggregate,
    derive_scalar,
    match_aggregate_exact,
)
from repro.matching.framework import MAIN


QTY = ColumnRef("t", "qty")
PRICE = ColumnRef("t", "price")
DISC = ColumnRef("t", "disc")
YEAR = ColumnRef("t", "year")


def scope(outputs, classes=None, rejoins=None):
    return DerivationScope(outputs, classes, rejoins or set())


class TestScalarDerivation:
    def test_direct_output(self):
        s = scope({"qty": QTY})
        assert derive_scalar(QTY, s) == ColumnRef(MAIN, "qty")

    def test_literal_passthrough(self):
        s = scope({})
        assert derive_scalar(Literal(5), s) == Literal(5)

    def test_missing_column_fails(self):
        assert derive_scalar(PRICE, scope({"qty": QTY})) is None

    def test_whole_expression_output(self):
        value = NaryOp("*", (QTY, PRICE))
        s = scope({"value": value})
        assert derive_scalar(value, s) == ColumnRef(MAIN, "value")

    def test_recursive_derivation(self):
        s = scope({"qty": QTY, "price": PRICE})
        expr = BinaryOp("-", QTY, PRICE)
        derived = derive_scalar(expr, s)
        assert derived == BinaryOp(
            "-", ColumnRef(MAIN, "qty"), ColumnRef(MAIN, "price")
        )

    def test_function_argument_derivation(self):
        s = scope({"d": ColumnRef("t", "date")})
        expr = FuncCall("year", (ColumnRef("t", "date"),))
        assert derive_scalar(expr, s) == FuncCall("year", (ColumnRef(MAIN, "d"),))

    def test_minimum_qcl_subset_cover(self):
        """Figure 5: amt uses {value, disc}, not {qty, price, disc}."""
        s = scope(
            {
                "qty": QTY,
                "price": PRICE,
                "disc": DISC,
                "value": NaryOp("*", (QTY, PRICE)),
            }
        )
        amt = NaryOp("*", (QTY, PRICE, BinaryOp("-", Literal(1), DISC)))
        derived = derive_scalar(amt, s)
        names = {ref.name for ref in derived.column_refs()}
        assert names == {"value", "disc"}

    def test_subset_cover_with_repeated_factor(self):
        s = scope({"sq": NaryOp("*", (QTY, QTY))})
        expr = NaryOp("*", (QTY, QTY, QTY, QTY))
        derived = derive_scalar(expr, s)
        assert derived == NaryOp(
            "*", (ColumnRef(MAIN, "sq"), ColumnRef(MAIN, "sq"))
        )

    def test_fallback_to_individual_operands(self):
        s = scope({"qty": QTY, "price": PRICE})
        expr = NaryOp("*", (QTY, PRICE))
        derived = derive_scalar(expr, s)
        assert derived == NaryOp(
            "*", (ColumnRef(MAIN, "qty"), ColumnRef(MAIN, "price"))
        )

    def test_equivalence_class_lookup(self):
        faid = ColumnRef("t", "faid")
        aid = ColumnRef("a", "aid")
        classes = EquivalenceClasses()
        classes.add_equality(faid, aid)
        s = scope({"faid": faid}, classes=classes)
        assert derive_scalar(aid, s) == ColumnRef(MAIN, "faid")

    def test_rejoin_columns_pass_through(self):
        lid = ColumnRef("Loc", "lid")
        s = scope({"qty": QTY}, rejoins={"Loc"})
        derived = derive_scalar(BinaryOp("-", lid, QTY), s)
        assert derived == BinaryOp("-", lid, ColumnRef(MAIN, "qty"))

    def test_aggregate_rejected_by_scalar_derivation(self):
        s = scope({"qty": QTY})
        assert derive_scalar(AggCall("sum", QTY), s) is None


def agg_scope(aggregates, grouping, nullable=frozenset(), usable=None):
    scalar = scope(grouping)
    return AggregateScope(
        scalar,
        aggregates,
        grouping,
        arg_nullable=lambda e: any(
            ref.name in nullable for ref in e.column_refs()
        ),
        usable_grouping=usable,
    )


class TestAggregateRules:
    def test_count_star_rule_a(self):
        s = agg_scope({"cnt": AggCall("count")}, {})
        recipe = derive_aggregate(AggCall("count"), None, s)
        assert recipe.rule == "count->sum(cnt)"
        assert recipe.components[0].func == "sum"

    def test_count_star_via_non_nullable_count(self):
        s = agg_scope({"c2": AggCall("count", QTY)}, {})
        recipe = derive_aggregate(AggCall("count"), None, s)
        assert recipe is not None

    def test_count_star_nullable_count_rejected(self):
        s = agg_scope({"c2": AggCall("count", DISC)}, {}, nullable={"disc"})
        assert derive_aggregate(AggCall("count"), None, s) is None

    def test_count_column_rule_b(self):
        s = agg_scope({"cd": AggCall("count", DISC)}, {}, nullable={"disc"})
        recipe = derive_aggregate(AggCall("count", DISC), DISC, s)
        assert recipe is not None

    def test_sum_rule_c(self):
        s = agg_scope({"sq": AggCall("sum", QTY)}, {})
        recipe = derive_aggregate(AggCall("sum", QTY), QTY, s)
        assert recipe.rule == "sum->sum(sum)"

    def test_sum_grouping_times_count(self):
        s = agg_scope({"cnt": AggCall("count")}, {"year": YEAR})
        recipe = derive_aggregate(AggCall("sum", YEAR), YEAR, s)
        assert recipe.rule == "sum->sum(y*cnt)"
        assert isinstance(recipe.components[0].pre_expr, NaryOp)

    def test_sum_grouping_without_rowcount_fails(self):
        s = agg_scope({}, {"year": YEAR})
        assert derive_aggregate(AggCall("sum", YEAR), YEAR, s) is None

    def test_max_rules_d(self):
        s = agg_scope({"hi": AggCall("max", PRICE)}, {})
        assert derive_aggregate(AggCall("max", PRICE), PRICE, s).rule == "max->max(max)"
        s2 = agg_scope({}, {"year": YEAR})
        assert derive_aggregate(AggCall("max", YEAR), YEAR, s2).rule == "max->max(y)"

    def test_min_rule_e(self):
        s = agg_scope({"lo": AggCall("min", PRICE)}, {})
        assert derive_aggregate(AggCall("min", PRICE), PRICE, s) is not None

    def test_count_distinct_rule_f(self):
        s = agg_scope({}, {"year": YEAR})
        recipe = derive_aggregate(
            AggCall("count", YEAR, distinct=True), YEAR, s
        )
        assert recipe.components[0].distinct

    def test_count_distinct_non_grouping_fails(self):
        s = agg_scope({}, {})
        assert derive_aggregate(AggCall("count", PRICE, distinct=True), PRICE, s) is None

    def test_sum_distinct_rule_g(self):
        s = agg_scope({}, {"year": YEAR})
        assert derive_aggregate(AggCall("sum", YEAR, distinct=True), YEAR, s) is not None

    def test_usable_grouping_restriction(self):
        # Cuboid restriction (5.1): year is a grouping output but not in
        # the usable cuboid, so rule (f) must not fire.
        s = agg_scope({}, {"year": YEAR}, usable=set())
        assert derive_aggregate(AggCall("count", YEAR, distinct=True), YEAR, s) is None

    def test_avg_combination(self):
        s = agg_scope(
            {"sq": AggCall("sum", QTY), "cq": AggCall("count", QTY)}, {}
        )
        recipe = derive_aggregate(AggCall("avg", QTY), QTY, s)
        assert recipe.rule == "avg->sum/count"
        assert len(recipe.components) == 2
        combined = recipe.combine(
            [ColumnRef(MAIN, "a"), ColumnRef(MAIN, "b")]
        )
        assert isinstance(combined, BinaryOp) and combined.op == "/"

    def test_exact_aggregate_match(self):
        s = agg_scope({"sq": AggCall("sum", QTY)}, {})
        assert match_aggregate_exact(AggCall("sum", QTY), QTY, s) == "sq"
        assert match_aggregate_exact(AggCall("sum", PRICE), PRICE, s) is None
        assert match_aggregate_exact(AggCall("sum", QTY, distinct=True), QTY, s) is None
