"""SELECT/SELECT patterns: 4.1.1 and 4.2.3 conditions one by one."""

from repro.expr import ColumnRef
from repro.matching.framework import MAIN

from tests.matching.helpers import (
    assert_no_rewrite,
    assert_rewrite_equivalent,
    match_roots,
)

AST2 = """
select tid, faid, fpgid, status, country, price, qty, disc, qty * price as value
from Trans, Loc, Acct
where lid = flid and faid = aid and disc > 0.1
"""

Q2 = """
select aid, status, qty * price * (1 - disc) as amt
from Trans, PGroup, Acct
where pgid = fpgid and faid = aid and price > 100 and disc > 0.1
      and pgname = 'TV'
"""


class TestFigure5:
    def test_q2_matches_ast2(self):
        match = match_roots(Q2, AST2)
        assert match is not None and match.pattern == "4.1.1"

    def test_rejoin_child_present(self, tiny_db):
        result = assert_rewrite_equivalent(tiny_db, Q2, AST2)
        comp = result.applied[0].match.chain[0]
        rejoins = [q.name for q in comp.quantifiers() if q.name != MAIN]
        assert rejoins == ["PGroup"]

    def test_compensation_predicates_are_the_unmatched_ones(self, tiny_db):
        result = assert_rewrite_equivalent(tiny_db, Q2, AST2)
        comp = result.applied[0].match.chain[0]
        rendered = {repr(p) for p in comp.predicates}
        # matched predicates (faid=aid, disc>0.1) are NOT re-applied
        assert len(comp.predicates) == 3
        assert any("price" in text for text in rendered)
        assert any("pgname" in text for text in rendered)
        assert any("pgid" in text for text in rendered)

    def test_column_equivalence_derives_aid_from_faid(self, tiny_db):
        result = assert_rewrite_equivalent(tiny_db, Q2, AST2)
        comp = result.applied[0].match.chain[0]
        assert comp.output("aid").expr == ColumnRef(MAIN, "faid")

    def test_minimum_qcl_derivation_uses_value(self, tiny_db):
        result = assert_rewrite_equivalent(tiny_db, Q2, AST2)
        comp = result.applied[0].match.chain[0]
        amt_refs = {ref.name for ref in comp.output("amt").expr.column_refs()}
        assert amt_refs == {"value", "disc"}


class TestExtraChildren:
    def test_lossless_extra_child_accepted(self):
        # Loc is an extra child of the AST; RI makes the join lossless.
        assert match_roots(
            "select tid from Trans where disc > 0.1",
            "select tid, country from Trans, Loc where lid = flid and disc > 0.1",
        ) is not None

    def test_filtered_extra_child_rejected(self):
        # The AST filters the extra child -> join is lossy -> no match.
        assert match_roots(
            "select tid from Trans where disc > 0.1",
            "select tid, country from Trans, Loc "
            "where lid = flid and disc > 0.1 and country = 'USA'",
        ) is None

    def test_extra_child_without_ri_rejected(self):
        # Joining on a non-key column has no RI proof.
        assert match_roots(
            "select tid from Trans",
            "select tid, state from Trans, Loc where state = 'CA'",
        ) is None

    def test_snowflake_extra_chain_accepted(self):
        # Acct -> Cust: two lossless hops.
        assert match_roots(
            "select tid from Trans",
            "select tid, cname from Trans, Acct, Cust "
            "where faid = aid and acid = cid",
        ) is not None


class TestPredicateConditions:
    def test_subsumer_extra_filter_rejected(self):
        # AST restricts qty; the query needs all rows.
        assert match_roots(
            "select tid from Trans",
            "select tid from Trans where qty > 1",
        ) is None

    def test_predicate_subsumption_footnote_4(self):
        # AST keeps price > 10; query wants price > 20: stricter, so the
        # query predicate is re-applied in compensation.
        match = match_roots(
            "select tid from Trans where price > 20",
            "select tid, price from Trans where price > 10",
        )
        assert match is not None
        comp = match.chain[0]
        assert len(comp.predicates) == 1

    def test_subsumed_direction_rejected(self):
        # AST keeps price > 20 only; query wants price > 10: lossy.
        assert match_roots(
            "select tid from Trans where price > 10",
            "select tid, price from Trans where price > 20",
        ) is None

    def test_underivable_predicate_rejected(self):
        # Query filters on qty, which the AST does not expose.
        assert match_roots(
            "select tid from Trans where qty > 2",
            "select tid, price from Trans",
        ) is None

    def test_underivable_output_rejected(self):
        assert match_roots(
            "select tid, qty from Trans",
            "select tid, price from Trans",
        ) is None

    def test_exact_match_with_renamed_columns(self):
        match = match_roots(
            "select tid as t, price as p from Trans where disc > 0.1",
            "select tid, price from Trans where disc > 0.1",
        )
        assert match is not None and match.exact
        assert match.column_map == {"t": "tid", "p": "price"}


class TestDistinctHandling:
    def test_distinct_ast_plain_query_rejected(self):
        assert match_roots(
            "select faid from Trans",
            "select distinct faid from Trans",
        ) is None

    def test_distinct_query_plain_ast_compensated(self, tiny_db):
        # DISTINCT binds as a GROUP BY; the plain AST answers the inner
        # select and the dedup happens in the surviving GROUP-BY.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select distinct faid from Trans",
            "select faid, qty from Trans",
        )

    def test_distinct_both_exact(self):
        match = match_roots(
            "select distinct faid from Trans",
            "select distinct faid from Trans",
        )
        assert match is not None and match.exact

    def test_distinct_query_against_grouped_ast(self, tiny_db):
        """Footnote 2's cross-type case: SELECT DISTINCT answered from a
        GROUP-BY summary table."""
        result = assert_rewrite_equivalent(
            tiny_db,
            "select distinct faid from Trans",
            "select faid, flid, count(*) as cnt from Trans group by faid, flid",
        )
        from repro.qgm.boxes import BaseTableBox

        scans = {
            box.table_name
            for box in result.graph.boxes()
            if isinstance(box, BaseTableBox)
        }
        assert scans == {"TestAst"}


class TestChildCompensationPullup:
    """Pattern 4.2.3: the children match with SELECT-only compensation."""

    Q = """
    select y, n from
      (select year(date) as y, tid as n from Trans where qty > 2) as d
    where n < 100
    """
    AST = """
    select y, n, qty from
      (select year(date) as y, tid as n, qty from Trans) as d
    """

    def test_child_predicates_pulled_up(self, tiny_db):
        result = assert_rewrite_equivalent(tiny_db, self.Q, self.AST)
        assert result.applied[0].match.pattern == "4.2.3"

    def test_no_match_when_pullup_impossible(self):
        # The inner predicate references a column the AST's inner block
        # projects away.
        assert match_roots(
            "select y from (select year(date) as y from Trans where qty > 2) as d",
            "select y from (select year(date) as y from Trans) as d",
        ) is None


class TestSelfJoinBacktracking:
    """Footnote 3: self-joins make the child pairing ambiguous; the
    matcher backtracks over injective assignments."""

    AST = """
    select a.tid as atid, b.tid as btid, a.price as aprice,
           b.price as bprice, a.qty as aqty, b.qty as bqty
    from Trans a, Trans b
    where a.tid = b.tid and a.price > 100
    """

    def test_greedy_assignment_would_fail(self, tiny_db):
        # Only the (x -> b, y -> a) assignment satisfies condition 2:
        # the AST filters child `a`, and the query filters its *second*
        # quantifier.
        result = assert_rewrite_equivalent(
            tiny_db,
            "select x.qty as q from Trans x, Trans y "
            "where x.tid = y.tid and y.price > 100",
            self.AST,
        )
        assert result.applied[0].match.pattern == "4.1.1"

    def test_straight_assignment_still_works(self, tiny_db):
        assert_rewrite_equivalent(
            tiny_db,
            "select x.qty as q from Trans x, Trans y "
            "where x.tid = y.tid and x.price > 100",
            self.AST,
        )

    def test_unsatisfiable_self_join_rejected(self, tiny_db):
        assert_no_rewrite(
            tiny_db,
            "select x.qty as q from Trans x, Trans y "
            "where x.tid = y.tid and x.disc > 0.5",
            self.AST,
        )
