"""The web-analytics "customer application" end to end.

Builds the page-view star schema, installs two join ASTs, runs the
reporting dashboard both ways, and then demonstrates the full lifecycle:
a batch of new page views arrives (incremental maintenance keeps the
summaries fresh) and the whole database is saved to and reloaded from
disk.

Run:  python examples/web_reporting.py
"""

import tempfile
import time

from repro import load_database, maintain_insert, save_database, tables_equal
from repro.workloads.webmetrics import (
    QUERIES,
    build_web_db,
    install_web_asts,
)


def run_dashboard(db, use_asts: bool) -> float:
    start = time.perf_counter()
    for query in QUERIES.values():
        db.execute(query, use_summary_tables=use_asts)
    return time.perf_counter() - start


def main() -> None:
    db = build_web_db(views=20000)
    names = install_web_asts(db)
    fact = len(db.table("PageView"))
    for name in names:
        summary = db.summary_tables[name.lower()]
        print(f"{name}: {summary.row_count} rows "
              f"({fact / summary.row_count:.0f}x compression of {fact} views)")

    print("\nreporting dashboard:")
    for title, query in QUERIES.items():
        start = time.perf_counter()
        original = db.execute(query, use_summary_tables=False)
        t_original = time.perf_counter() - start
        result = db.rewrite(query)
        start = time.perf_counter()
        rewritten = db.execute_graph(result.graph)
        t_rewritten = time.perf_counter() - start
        assert tables_equal(original, rewritten)
        used = result.summary_tables[0].name
        print(
            f"  {title:<20} {t_original * 1e3:7.1f}ms -> {t_rewritten * 1e3:6.1f}ms "
            f"({t_original / t_rewritten:7.1f}x via {used})"
        )

    print("\nnightly batch of 200 new page views:")
    import datetime
    import random

    rng = random.Random(99)
    pages = len(db.table("Page"))
    visitors = len(db.table("Visitor"))
    next_id = max(row[0] for row in db.table("PageView").rows) + 1
    batch = [
        (
            next_id + i,
            rng.randint(1, pages),
            rng.randint(1, visitors),
            datetime.date(2000, 12, rng.randint(1, 28)),
            rng.randint(1, 600),
            float(rng.randint(1, 500) * 1024),
        )
        for i in range(200)
    ]
    start = time.perf_counter()
    report = maintain_insert(db, "PageView", batch)
    elapsed = time.perf_counter() - start
    print(f"  maintained in {elapsed * 1e3:.1f} ms "
          f"(incremental: {', '.join(report.incremental) or 'none'}; "
          f"recomputed: {', '.join(report.recomputed) or 'none'})")

    with tempfile.TemporaryDirectory() as tmp:
        target = save_database(db, f"{tmp}/webdb")
        reloaded = load_database(target)
        check = QUERIES["section_monthly"]
        assert tables_equal(
            db.execute(check, use_summary_tables=False),
            reloaded.execute(check, use_summary_tables=False),
        )
        print(f"\nsaved + reloaded from {target} — results identical")


if __name__ == "__main__":
    main()
