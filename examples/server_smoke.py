"""Server smoke: N concurrent clients, bit-identical answers.

Boots a :class:`~repro.server.server.QueryServer` over the TPC-D
workload, drives it with ``--clients`` (default 8) concurrent
connections mixing cached reads, session SETs, and ingest, and then
verifies every workload query answered over the wire is **bit-identical**
to direct in-process execution — same values, same order, same types.
Exits non-zero on any divergence, error, or SET leakage. CI runs this
as the server job's gate.

Run:  PYTHONPATH=src python examples/server_smoke.py [--clients 8]
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.server.client import ReproClient  # noqa: E402
from repro.server.server import QueryServer  # noqa: E402
from repro.workloads import tpcd  # noqa: E402


def identical(remote, direct) -> bool:
    if list(remote.columns) != list(direct.columns):
        return False
    if list(remote.rows) != list(direct.rows):
        return False
    return all(
        type(a) is type(b)
        for left, right in zip(remote.rows, direct.rows)
        for a, b in zip(left, right)
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--orders", type=int, default=250)
    args = parser.parse_args(argv)

    db = tpcd.build_tpcd_db(orders=args.orders)
    tpcd.install_asts(db)
    server = QueryServer(db)
    host, port = server.start_in_thread()
    print(f"server listening on {host}:{port} "
          f"({args.clients} clients x {args.rounds} rounds)")

    queries = list(tpcd.QUERIES.values())
    failures: list[str] = []
    barrier = threading.Barrier(args.clients, timeout=60)

    def worker(worker_id: int) -> None:
        ingests = worker_id % 2 == 1
        try:
            with ReproClient(host, port) as client:
                client.set(f"SET QUERY MAXROWS {50000 + worker_id}")
                barrier.wait()
                for round_no in range(args.rounds):
                    if ingests:
                        key = 800000 + worker_id * 100 + round_no
                        client.query(
                            f"INSERT INTO Lineitem VALUES ({key}, 7, 2, "
                            "250.0, 0.03, 0.01, 'N', 'O', DATE '1997-03-05')"
                        )
                    reply = client.query(
                        queries[(worker_id + round_no) % len(queries)]
                    )
                    if not reply.table.rows:
                        failures.append(f"client {worker_id}: empty result")
                if client.ping()["session"]["max_rows"] != 50000 + worker_id:
                    failures.append(f"client {worker_id}: SET leaked")
        except Exception as error:  # noqa: BLE001
            failures.append(f"client {worker_id}: {type(error).__name__}: "
                            f"{error}")

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    if any(thread.is_alive() for thread in threads):
        failures.append("deadlock: worker thread still alive after 120 s")

    # Final differential pass on a quiet server: every workload query
    # over the wire (cold key after the ingest churn, then a warm hit)
    # must equal direct execution bit-for-bit.
    checked = 0
    with ReproClient(host, port) as client:
        for name, sql in tpcd.QUERIES.items():
            direct = db.execute(sql)
            for expect_warm in (False, True):
                reply = client.query(sql)
                if not identical(reply.table, direct):
                    failures.append(f"{name}: wire result diverged "
                                    f"(cache={reply.cache})")
                checked += 1
        hits = client.metrics()["cache.hits"]["value"]
    server.stop()

    print(f"differential: {checked} wire results checked, "
          f"{hits} cache hits served")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: bit-identical under concurrency, no leaks, no deadlock")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
