"""A guided tour of every worked example in the paper.

Walks Figures 2-14 one by one: builds the figure's AST, rewrites the
figure's query, prints the rewritten SQL next to the paper's NewQ, and
verifies the two plans return identical rows. The negative cases
(Table 1 and Q11.3) are shown being refused.

Run:  python examples/paper_tour.py
"""

from repro.bench.figures import (
    FIGURES,
    NEGATIVE_FIGURES,
    make_database,
)
from repro.engine.table import tables_equal
from repro.workloads import small_config

DESCRIPTIONS = {
    "fig02_q1": "Q1: per-account/state/year counts; rejoin Loc + regroup + HAVING",
    "fig05_q2": "Q2: SPJ query; rejoin PGroup, lossless extra Loc, derive amt",
    "fig06_q4": "Q4: yearly sums re-derived from monthly sums (rule c)",
    "fig07_q6": "Q6: month>=6 pulled through grouping; group by year%100",
    "fig08_q7": "Q7: 1:N rejoin, no regrouping needed",
    "fig10_q8": "Q8: histogram-of-histograms, recursive matching (4.2.2)",
    "fig11_q10": "Q10: scalar subquery percentage; totcnt threaded through",
    "fig13_q11_1": "Q11.1: cuboid slicing only",
    "fig13_q11_2": "Q11.2: slice the month cuboid, pull month>=6, regroup",
    "fig14_q12_1": "Q12.1: cube query, disjunctive slicing, no regroup",
    "fig14_q12_2": "Q12.2: cube query regrouped from the union cuboid",
}

NEGATIVE_DESCRIPTIONS = {
    "tbl1_having": "Table 1: AST with HAVING lost groups the query needs",
    "fig13_q11_3": "Q11.3: COUNT(DISTINCT faid) with no covering cuboid",
}


def main() -> None:
    config = small_config()
    for figure, (ast_name, ast_sql, query, pattern) in FIGURES.items():
        db = make_database(config)
        db.create_summary_table(ast_name, ast_sql)
        result = db.rewrite(query)
        assert result is not None, figure
        original = db.execute(query, use_summary_tables=False)
        rewritten = db.execute_graph(result.graph)
        assert tables_equal(original, rewritten), figure
        print(f"== {figure} — {DESCRIPTIONS[figure]}")
        print(f"   match   : {result.explain()}")
        print(f"   rewrite : {result.sql}")
        print(f"   verified: {len(original)} rows identical\n")

    for figure, (ast_name, ast_sql, query) in NEGATIVE_FIGURES.items():
        db = make_database(config)
        db.create_summary_table(ast_name, ast_sql)
        refused = db.rewrite(query) is None
        assert refused, figure
        print(f"== {figure} — {NEGATIVE_DESCRIPTIONS[figure]}")
        print("   correctly refused: the AST cannot answer this query\n")

    print("tour complete: 11 rewrites verified, 2 refusals confirmed")


if __name__ == "__main__":
    main()
