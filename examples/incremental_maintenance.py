"""Keeping summary tables fresh (related problem (c)).

Simulates a nightly load: a batch of new transactions arrives, and every
summary table is brought up to date — incrementally where the view shape
allows it, by recomputation where it does not — with both costs measured.

Run:  python examples/incremental_maintenance.py
"""

import datetime
import random
import time

from repro import Database, credit_card_catalog, maintain_insert, tables_equal
from repro.workloads import bench_config, populate_credit_db

MAINTAINABLE_AST = """
select faid, flid, year(date) as year, count(*) as cnt, sum(qty) as sqty
from Trans
group by faid, flid, year(date)
"""

AVG_AST = """
select faid, avg(price) as avg_price
from Trans
group by faid
"""


def new_batch(db: Database, size: int) -> list[tuple]:
    rng = random.Random(42)
    base = db.table("Trans")
    next_tid = max(row[0] for row in base.rows) + 1
    accounts = sorted(set(base.column_values("faid")))
    cities = sorted(set(base.column_values("flid")))
    rows = []
    for i in range(size):
        rows.append(
            (
                next_tid + i,
                rng.randint(1, 10),
                rng.choice(cities),
                rng.choice(accounts),
                datetime.date(1993, rng.randint(1, 12), rng.randint(1, 28)),
                rng.randint(1, 5),
                round(rng.uniform(5, 900), 2),
                0.1,
            )
        )
    return rows


def main() -> None:
    db = Database(credit_card_catalog())
    counts = populate_credit_db(db, bench_config(0.5))
    db.create_summary_table("DailyCounts", MAINTAINABLE_AST)
    db.create_summary_table("AvgPrices", AVG_AST)

    batch = new_batch(db, size=counts["Trans"] // 100)
    print(
        f"nightly load: {len(batch)} new transactions on top of "
        f"{counts['Trans']} existing\n"
    )

    start = time.perf_counter()
    report = maintain_insert(db, "Trans", batch)
    elapsed = time.perf_counter() - start
    print(f"maintenance finished in {elapsed * 1e3:.1f} ms")
    for name in report.incremental:
        print(f"  {name:<14} maintained incrementally (summary-delta merge)")
    for name, reason in report.recomputed.items():
        print(f"  {name:<14} recomputed: {reason}")

    print("\nverifying against full recomputation:")
    for key, summary in db.summary_tables.items():
        fresh = db.execute(summary.sql, use_summary_tables=False)
        ok = tables_equal(summary.table, fresh)
        print(f"  {summary.name:<14} {'consistent' if ok else 'STALE!'}")
        assert ok

    start = time.perf_counter()
    db.refresh_summary_tables()
    recompute = time.perf_counter() - start
    print(
        f"\nfor comparison, recomputing everything takes "
        f"{recompute * 1e3:.1f} ms "
        f"({recompute / elapsed:.1f}x the incremental path)"
    )


if __name__ == "__main__":
    main()
