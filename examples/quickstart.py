"""Quickstart: the paper's headline example (Figure 2), end to end.

Builds the credit-card star schema, loads synthetic data, creates AST1,
and shows query Q1 being transparently rewritten into NewQ1 — with the
QGM graph, the rewritten SQL, and the measured speedup.

Run:  python examples/quickstart.py
"""

import time

from repro import Database, credit_card_catalog, render_graph, tables_equal
from repro.workloads import bench_config, populate_credit_db

AST1 = """
select faid, flid, year(date) as year, count(*) as cnt
from Trans
group by faid, flid, year(date)
"""

Q1 = """
select faid, state, year(date) as year, count(*) as cnt
from Trans, Loc
where flid = lid and country = 'USA'
group by faid, state, year(date)
having count(*) > 100
"""


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def main() -> None:
    print("== Setting up the Figure 1 schema with synthetic data ==")
    db = Database(credit_card_catalog())
    counts = populate_credit_db(db, bench_config(0.5))
    for table, count in counts.items():
        print(f"  {table:<8} {count:>8} rows")

    print("\n== Creating AST1 (the paper's Figure 2 summary table) ==")
    summary = db.create_summary_table("AST1", AST1)
    ratio = counts["Trans"] / summary.row_count
    print(f"  AST1 has {summary.row_count} rows "
          f"({ratio:.0f}x smaller than Trans)")

    print("\n== Q1's QGM graph (the paper's Figure 3) ==")
    print(render_graph(db.bind(Q1)))

    print("\n== Rewriting Q1 over AST1 ==")
    result = db.rewrite(Q1)
    print("  match:", result.explain())
    print("  NewQ1:", result.sql)

    print("\n== Running both plans ==")
    original, t_original = timed(lambda: db.execute(Q1, use_summary_tables=False))
    rewritten, t_rewritten = timed(lambda: db.execute_graph(result.graph))
    assert tables_equal(original, rewritten), "plans disagree!"
    print(f"  original : {t_original * 1e3:8.1f} ms ({len(original)} rows)")
    print(f"  rewritten: {t_rewritten * 1e3:8.1f} ms ({len(rewritten)} rows)")
    print(f"  speedup  : {t_original / t_rewritten:.1f}x  (identical results)")

    print("\nSample output:")
    print(rewritten.pretty(limit=8))


if __name__ == "__main__":
    main()
