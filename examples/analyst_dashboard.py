"""An analyst dashboard answered from one multidimensional AST.

The paper's Section 5 motivation: a single CUBE-style summary table can
answer a whole family of dashboard queries — per-city, per-account,
per-year, per-month, and grand-total views — each extracted by slicing
predicates (and regrouped only when needed).

Run:  python examples/analyst_dashboard.py
"""

import time

from repro import Database, credit_card_catalog, tables_equal
from repro.workloads import bench_config, populate_credit_db

CUBE_AST = """
select flid, faid, year(date) as year, month(date) as month,
       count(*) as cnt, sum(qty * price) as revenue
from Trans
group by grouping sets ((flid, faid, year(date)),
                        (flid, year(date), month(date)),
                        (flid, year(date)),
                        (year(date), month(date)),
                        (year(date)),
                        ())
"""

DASHBOARD = {
    "revenue by city and year": """
        select flid, year(date) as year, sum(qty * price) as revenue
        from Trans group by flid, year(date)
    """,
    "monthly trend": """
        select year(date) as year, month(date) as month,
               sum(qty * price) as revenue, count(*) as cnt
        from Trans group by year(date), month(date)
    """,
    "top-line totals": """
        select count(*) as transactions, sum(qty * price) as revenue
        from Trans
    """,
    "city rollup (supergroup query)": """
        select flid, year(date) as year, sum(qty * price) as revenue
        from Trans group by rollup(flid, year(date))
    """,
    "late-year activity per city": """
        select flid, year(date) as year, count(*) as cnt
        from Trans where month(date) >= 10
        group by flid, year(date)
    """,
}


def main() -> None:
    db = Database(credit_card_catalog())
    counts = populate_credit_db(db, bench_config(0.5))
    summary = db.create_summary_table("SalesCube", CUBE_AST)
    print(
        f"SalesCube: {summary.row_count} rows summarizing "
        f"{counts['Trans']} transactions "
        f"({counts['Trans'] / summary.row_count:.0f}x compression)\n"
    )

    total_before = 0.0
    total_after = 0.0
    for title, query in DASHBOARD.items():
        start = time.perf_counter()
        original = db.execute(query, use_summary_tables=False)
        t_original = time.perf_counter() - start

        result = db.rewrite(query)
        assert result is not None, f"no rewrite for {title!r}"
        start = time.perf_counter()
        rewritten = db.execute_graph(result.graph)
        t_rewritten = time.perf_counter() - start
        assert tables_equal(original, rewritten)

        total_before += t_original
        total_after += t_rewritten
        pattern = result.applied[0].match.pattern
        print(
            f"{title:<34} {t_original * 1e3:8.1f}ms -> {t_rewritten * 1e3:6.1f}ms "
            f"({t_original / t_rewritten:6.1f}x, pattern {pattern})"
        )

    print(
        f"\nwhole dashboard: {total_before * 1e3:.0f}ms -> "
        f"{total_after * 1e3:.0f}ms ({total_before / total_after:.0f}x)"
    )


if __name__ == "__main__":
    main()
