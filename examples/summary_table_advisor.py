"""Choosing which summary tables to build (related problem (a)).

Uses the greedy HRU-style lattice advisor to pick ASTs under a row
budget, materializes them, and shows a mixed workload speeding up — the
complete loop the paper describes around its matching algorithm.

Run:  python examples/summary_table_advisor.py
"""

import time

from repro import Advisor, Database, credit_card_catalog
from repro.workloads import bench_config, populate_credit_db

ATTRIBUTES = {
    "faid": "faid",
    "flid": "flid",
    "year": "year(date)",
    "month": "month(date)",
}

WORKLOAD = [
    "select faid, count(*) as c from Trans group by faid",
    "select flid, year(date) as y, count(*) as c from Trans group by flid, year(date)",
    "select year(date) as y, month(date) as m, count(*) as c "
    "from Trans group by year(date), month(date)",
    "select faid, year(date) as y, count(*) as c from Trans group by faid, year(date)",
    "select count(*) as c from Trans",
]


def run_workload(db: Database, use_asts: bool) -> float:
    start = time.perf_counter()
    for query in WORKLOAD:
        db.execute(query, use_summary_tables=use_asts)
    return time.perf_counter() - start


def main() -> None:
    db = Database(credit_card_catalog())
    counts = populate_credit_db(db, bench_config(0.5))
    fact_rows = counts["Trans"]
    budget = fact_rows // 4
    print(f"fact table: {fact_rows} rows; advisor budget: {budget} rows\n")

    advisor = Advisor(db, "Trans", ATTRIBUTES)
    print("cuboid lattice (16 candidates):")
    for view in advisor.candidates():
        print(f"  {view.label():<34} {view.rows:>7} rows")

    result = advisor.select(budget_rows=budget, max_views=3)
    print("\ngreedy selection:")
    print(result.describe())

    before = run_workload(db, use_asts=False)
    names = advisor.create_selected(result)
    print(f"\nmaterialized: {', '.join(names)}")
    for query in WORKLOAD:
        rewrite = db.rewrite(query)
        used = rewrite.summary_tables[0].name if rewrite else "(none)"
        print(f"  {query.strip()[:68]:<70} -> {used}")
    after = run_workload(db, use_asts=True)
    print(
        f"\nworkload: {before * 1e3:.0f}ms without ASTs, "
        f"{after * 1e3:.0f}ms with ASTs ({before / after:.1f}x)"
    )


if __name__ == "__main__":
    main()
