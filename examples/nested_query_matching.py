"""Multi-block matching and the translation mechanism (Figures 10/15 and
Table 1).

Shows (1) the histogram query Q8 matched against the multi-block AST8 via
the recursive pattern 4.2.2, and (2) the Section 6 translation trace that
detects why a HAVING clause on the AST makes an otherwise textually
similar match semantically wrong (Table 1).

Run:  python examples/nested_query_matching.py
"""

from repro import Database, credit_card_catalog, render_graph, tables_equal
from repro.matching.navigator import match_graphs
from repro.matching.translation import (
    ChildTranslator,
    MatchedChildPair,
    trace_translation,
)
from repro.workloads import bench_config, populate_credit_db

AST8 = """
select year, tcnt, count(*) as mcnt
from (select year(date) as year, month(date) as month, count(*) as tcnt
      from Trans group by year(date), month(date))
group by year, tcnt
"""

Q8 = """
select tcnt, count(*) as ycnt
from (select year(date) as year, count(*) as tcnt
      from Trans group by year(date))
group by tcnt
"""

TABLE1_AST = """
select flid, year(date) as year, count(*) as cnt
from Trans
group by flid, year(date)
having count(*) > 2
"""

TABLE1_QUERY = """
select flid, count(*) as cnt
from Trans
group by flid
having count(*) > 2
"""


def histogram_demo(db: Database) -> None:
    print("== Figure 10: histogram query over a histogram AST ==")
    db.create_summary_table("AST8", AST8)
    result = db.rewrite(Q8)
    print("match:", result.explain())
    print("\ncompensation graph spliced onto the AST scan:")
    print(render_graph(result.graph))
    original = db.execute(Q8, use_summary_tables=False)
    rewritten = db.execute_graph(result.graph)
    assert tables_equal(original, rewritten)
    print("\nhistogram result:")
    print(rewritten.pretty())


def translation_demo(db: Database) -> None:
    print("\n== Figure 15 / Table 1: why the HAVING AST cannot match ==")
    query = db.bind(TABLE1_QUERY)
    ast = db.bind(TABLE1_AST)
    ctx = match_graphs(query, ast)
    inner_match = ctx.get(query.root.children()[0], ast.root.children()[0])
    assert inner_match is not None, "the GROUP-BY boxes themselves do match"
    pair = MatchedChildPair(
        query.root.quantifiers()[0], ast.root.quantifiers()[0], inner_match
    )
    predicate = query.root.predicates[0]
    print("translating the query's HAVING predicate into the AST's context:")
    for step in trace_translation(predicate, [pair], set()):
        print("  ", step)
    translated = ChildTranslator([pair], set()).translate(predicate)
    print(
        "\nThe translated predicate re-aggregates "
        f"({translated!r}), so it cannot match the AST's own "
        "HAVING 'cnt > 2' — the groups the AST discarded are needed."
    )
    assert ctx.get(query.root, ast.root) is None
    print("=> the matcher correctly refuses the rewrite.")


def main() -> None:
    db = Database(credit_card_catalog())
    populate_credit_db(db, bench_config(0.25))
    histogram_demo(db)
    translation_demo(db)


if __name__ == "__main__":
    main()
