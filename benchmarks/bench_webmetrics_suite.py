"""The second "customer application" (web analytics) — Section 8's claim
beyond TPC-D. Two join ASTs answer a five-query reporting dashboard.

``REPRO_WEB_VIEWS`` scales the fact table (default 40,000 page views).
"""

import os

import pytest

from repro.engine.table import tables_equal
from repro.workloads.webmetrics import QUERIES, build_web_db, install_web_asts


def _views() -> int:
    return int(os.environ.get("REPRO_WEB_VIEWS", "40000"))


@pytest.fixture(scope="module")
def web_db():
    db = build_web_db(views=_views())
    install_web_asts(db)
    return db


@pytest.fixture(scope="module")
def rewritten(web_db):
    plans = {}
    for name, query in QUERIES.items():
        result = web_db.rewrite(query)
        assert result is not None, f"{name} found no rewrite"
        assert tables_equal(
            web_db.execute(query, use_summary_tables=False),
            web_db.execute_graph(result.graph),
        ), name
        plans[name] = result.graph
    return plans


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_web_original(benchmark, web_db, name):
    benchmark(web_db.execute, QUERIES[name], use_summary_tables=False)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_web_rewritten(benchmark, web_db, rewritten, name):
    benchmark(web_db.execute_graph, rewritten[name])
