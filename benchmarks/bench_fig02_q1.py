"""Benchmark for fig02_q1: account/state/year counts with HAVING (Figure 2).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig02_q1")


def test_fig02_q1_original(benchmark, experiment):
    """The paper's Q1 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig02_q1_rewritten(benchmark, experiment):
    """The paper's NewQ1 against AST1."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
