"""Server throughput: mixed read/ingest storm, cache and governor axes.

Two experiments against a live ``QueryServer`` (loopback TCP, real
wire protocol, concurrent client threads):

* **repeat-heavy** — read-only clients replaying the TPC-D query suite
  round-robin against base tables (no summary tables installed). This
  is the workload the semantic result cache exists for: after one cold
  pass every request is a memoized fingerprint lookup plus
  serialization instead of an aggregation scan. The gate (full mode
  only): warm cached QPS >= 5x the uncached server.
* **storm** — the same clients, summary tables installed, with every
  Nth request an ``INSERT`` into Lineitem, across the four
  governor x cache configurations.
  Ingest advances the delta log, so cache entries over Lineitem die and
  re-fill continuously; with the governor on, admission sheds load as
  typed ``QueryRejected`` (counted, not retried). Reports sustained
  QPS and p99 request latency per configuration.

Emits ``BENCH_server.json`` for the CI artifact. ``--fast`` shrinks the
database and request counts to a seconds-long smoke run; the 5x gate is
printed but only enforced in full mode (shared CI runners are noisy,
but the cache speedup is typically far above the line anyway).

Run: ``PYTHONPATH=src python benchmarks/bench_server_qps.py [--fast]``
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.server.client import ReproClient  # noqa: E402
from repro.server.server import QueryServer  # noqa: E402
from repro.workloads import tpcd  # noqa: E402

INGEST_TEMPLATE = (
    "INSERT INTO Lineitem VALUES ({key}, 99, 3, 500.0, 0.04, 0.02, "
    "'N', 'O', DATE '1997-05-{day:02d}')"
)


def _p99(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]


def run_clients(
    address: tuple[str, int],
    clients: int,
    requests_per_client: int,
    ingest_every: int | None,
) -> dict:
    """Drive the server with ``clients`` threads; returns QPS/latency."""
    host, port = address
    queries = list(tpcd.QUERIES.values())
    latencies: list[list[float]] = [[] for _ in range(clients)]
    rejected = [0] * clients
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)
    ingest_counter = [0]
    ingest_lock = threading.Lock()

    def worker(worker_id: int) -> None:
        with ReproClient(host, port) as client:
            barrier.wait()  # line everyone up before the clock starts
            for request_no in range(requests_per_client):
                if ingest_every and request_no % ingest_every == ingest_every - 1:
                    with ingest_lock:
                        ingest_counter[0] += 1
                        key = 900000 + ingest_counter[0]
                    sql = INGEST_TEMPLATE.format(
                        key=key, day=(key % 28) + 1
                    )
                else:
                    sql = queries[(worker_id + request_no) % len(queries)]
                started = time.perf_counter()
                try:
                    client.query(sql)
                except Exception as error:  # noqa: BLE001
                    if type(error).__name__ == "QueryRejected":
                        rejected[worker_id] += 1
                    else:
                        errors[worker_id] += 1
                latencies[worker_id].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    flat = [sample for bucket in latencies for sample in bucket]
    total = len(flat)
    return {
        "requests": total,
        "wall_s": wall,
        "qps": total / wall,
        "p50_ms": statistics.median(flat) * 1e3,
        "p99_ms": _p99(flat) * 1e3,
        "rejected": sum(rejected),
        "errors": sum(errors),
    }


def fresh_server(
    orders: int, cache: bool, governed: bool, asts: bool = True
) -> QueryServer:
    db = tpcd.build_tpcd_db(orders=orders)
    if asts:
        tpcd.install_asts(db)
    if governed:
        db.governor.admission.configure(
            8, max_queue=16, queue_timeout_ms=2000.0
        )
        db.governor.timeout_ms = 30000.0
    server = QueryServer(db, cache_enabled=cache)
    server.start_in_thread()
    return server


def repeat_heavy(orders: int, clients: int, requests: int) -> dict:
    """Read-only replay, cached vs uncached.

    No summary tables here: the result cache's reason to exist is
    queries that are expensive to execute, and with ASTs installed the
    rewritten scans are already near-free (the storm below measures
    that regime). Raw base-table aggregation is the workload the 5x
    gate is defined over."""
    results = {}
    for label, cache in (("cached", True), ("uncached", False)):
        server = fresh_server(orders, cache=cache, governed=False, asts=False)
        try:
            # one cold pass to warm the cache (and the uncached server's
            # rewrite decision cache, so the comparison isolates the
            # result cache itself)
            run_clients(server.address, 1, len(tpcd.QUERIES), None)
            results[label] = run_clients(
                server.address, clients, requests, None
            )
            results[label]["cache_metrics"] = {
                name: server.db.metrics.get(name).value
                for name in ("cache.hits", "cache.misses", "cache.stale_hits")
                if server.db.metrics.get(name) is not None
            }
        finally:
            server.stop()
    results["speedup"] = results["cached"]["qps"] / results["uncached"]["qps"]
    return results


def storm(orders: int, clients: int, requests: int) -> list[dict]:
    """Mixed read/ingest across governor x cache."""
    points = []
    for governed in (False, True):
        for cache in (False, True):
            server = fresh_server(orders, cache=cache, governed=governed)
            try:
                point = run_clients(
                    server.address, clients, requests, ingest_every=8
                )
            finally:
                server.stop()
            point.update({"governor": governed, "cache": cache})
            points.append(point)
    return points


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke mode: small db, few requests; the "
                        "5x gate is printed but not enforced")
    parser.add_argument("--orders", type=int, default=None,
                        help="TPC-D scale (orders)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client per experiment")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--json", type=Path, default=Path("BENCH_server.json"))
    args = parser.parse_args(argv)

    orders = args.orders or (200 if args.fast else 1000)
    requests = args.requests or (15 if args.fast else 60)

    print(f"server QPS benchmark (TPC-D orders={orders}, "
          f"{args.clients} clients, {requests} requests/client)")
    print("repeat-heavy read-only replay:")
    heavy = repeat_heavy(orders, args.clients, requests)
    for label in ("cached", "uncached"):
        point = heavy[label]
        print(f"  {label:<9} {point['qps']:>8.1f} qps   "
              f"p50 {point['p50_ms']:>7.2f} ms   "
              f"p99 {point['p99_ms']:>8.2f} ms")
    print(f"  warm-cache speedup {heavy['speedup']:.1f}x "
          f"(gate: >= {args.min_speedup:g}x)")

    print("mixed read/ingest storm (1 ingest per 8 requests):")
    storm_points = storm(orders, args.clients, requests)
    for point in storm_points:
        tag = (f"governor={'on' if point['governor'] else 'off':<3} "
               f"cache={'on' if point['cache'] else 'off':<3}")
        print(f"  {tag} {point['qps']:>8.1f} qps   "
              f"p99 {point['p99_ms']:>8.2f} ms   "
              f"rejected {point['rejected']}   errors {point['errors']}")

    payload = {
        "workload": {
            "orders": orders,
            "clients": args.clients,
            "requests_per_client": requests,
            "fast": args.fast,
        },
        "repeat_heavy": heavy,
        "storm": storm_points,
    }
    args.json.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {args.json}")

    if any(point["errors"] for point in storm_points):
        print("FAIL: storm produced non-rejection errors")
        return 1
    if heavy["speedup"] < args.min_speedup:
        message = (f"warm-cache speedup {heavy['speedup']:.1f}x below "
                   f"{args.min_speedup:g}x")
        if args.fast:
            print(f"note: {message} (not enforced in --fast)")
        else:
            print(f"FAIL: {message}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
