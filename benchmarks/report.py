"""Regenerate the EXPERIMENTS.md measurement tables.

Runs every figure experiment and the TPC-D suite at the current
REPRO_SCALE and prints markdown table rows with original/rewritten
timings. This is the script that produced the numbers recorded in
EXPERIMENTS.md.

Run:  python benchmarks/report.py

With ``--json PATH`` it instead emits a machine-readable rewrite
snapshot (``BENCH_rewrite.json`` in CI): per-query cold and warm
rewrite latency over the TPC-D workload, match counts from the unified
metrics registry, and the full metrics dump. ``--fast`` shrinks the
dataset for a seconds-long CI smoke run.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

from repro.bench.figures import FIGURES, NEGATIVE_FIGURES, make_bench_experiment, make_database
from repro.bench.harness import bench_scale
from repro.workloads import QUERIES, bench_config, build_tpcd_db, install_asts


def figure_rows() -> None:
    print("| figure | pattern(s) | base rows | AST rows | original | rewritten | speedup |")
    print("|---|---|---|---|---|---|---|")
    for figure in FIGURES:
        experiment = make_bench_experiment(figure)
        run = experiment.measure(repeat=3)
        patterns = experiment.explanation.split("(")[-1].rstrip(")")
        print(
            f"| {figure} | {patterns} | {run.base_rows} | {run.summary_rows} "
            f"| {run.original_seconds * 1e3:.1f} ms "
            f"| {run.rewritten_seconds * 1e3:.1f} ms "
            f"| {run.speedup:.1f}x |"
        )


def negative_rows() -> None:
    print("\n| negative case | outcome |")
    print("|---|---|")
    for figure, (name, ast_sql, query) in NEGATIVE_FIGURES.items():
        db = make_database(bench_config(bench_scale()))
        db.create_summary_table(name, ast_sql)
        outcome = "no match (correct)" if db.rewrite(query) is None else "MATCHED (bug!)"
        print(f"| {figure} | {outcome} |")


def tpcd_rows() -> None:
    db = build_tpcd_db(orders=2000)
    install_asts(db)
    print("\n| TPC-D-like query | original | rewritten | speedup |")
    print("|---|---|---|---|")
    for name, query in QUERIES.items():
        result = db.rewrite(query)
        start = time.perf_counter()
        db.execute(query, use_summary_tables=False)
        t_original = time.perf_counter() - start
        start = time.perf_counter()
        db.execute_graph(result.graph)
        t_rewritten = time.perf_counter() - start
        print(
            f"| {name} | {t_original * 1e3:.1f} ms | {t_rewritten * 1e3:.1f} ms "
            f"| {t_original / t_rewritten:.1f}x |"
        )


def web_rows() -> None:
    from repro.workloads.webmetrics import QUERIES as WEB_QUERIES
    from repro.workloads.webmetrics import build_web_db, install_web_asts

    db = build_web_db(views=40000)
    install_web_asts(db)
    print("\n| web-analytics query | original | rewritten | speedup |")
    print("|---|---|---|---|")
    for name, query in WEB_QUERIES.items():
        result = db.rewrite(query)
        start = time.perf_counter()
        db.execute(query, use_summary_tables=False)
        t_original = time.perf_counter() - start
        start = time.perf_counter()
        db.execute_graph(result.graph)
        t_rewritten = time.perf_counter() - start
        print(
            f"| {name} | {t_original * 1e3:.1f} ms | {t_rewritten * 1e3:.1f} ms "
            f"| {t_original / t_rewritten:.1f}x |"
        )


def rewrite_snapshot(fast: bool = False, warm_repeats: int = 20) -> dict:
    """Cold/warm rewrite latency and match counts over the TPC-D
    workload, as a JSON-ready dict (the ``BENCH_rewrite.json`` CI
    artifact)."""
    orders = 200 if fast else 2000
    db = build_tpcd_db(orders=orders)
    install_asts(db)
    queries: dict[str, dict] = {}
    for name, query in QUERIES.items():
        before = db.rewrite_stats()
        start = time.perf_counter()
        result = db.rewrite(query)  # cache miss: full navigation
        cold_ms = (time.perf_counter() - start) * 1e3
        warm: list[float] = []
        for _ in range(warm_repeats):
            start = time.perf_counter()
            db.rewrite(query)  # decision-cache replay
            warm.append((time.perf_counter() - start) * 1e3)
        after = db.rewrite_stats()
        queries[name] = {
            "cold_ms": round(cold_ms, 3),
            "warm_ms": round(statistics.median(warm), 3),
            "rewritten": result is not None,
            "summaries": sorted(
                {step.summary.name for step in result.applied}
            ) if result is not None else [],
            "matches_attempted": (
                after["matches_attempted"] - before["matches_attempted"]
            ),
            "cache_hits": after["cache_hits"] - before["cache_hits"],
        }
    db.refresh_scheduler.stop()
    return {
        "scale": bench_scale(),
        "orders": orders,
        "warm_repeats": warm_repeats,
        "queries": queries,
        "match_counts": db.rewrite_stats(),
        "metrics": db.metrics.to_dict(),
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the rewrite snapshot (cold/warm latency, match "
        "counts) to PATH instead of printing the markdown tables",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shrink the dataset for a CI smoke run (with --json)",
    )
    args = parser.parse_args(argv)
    if args.json:
        snapshot = rewrite_snapshot(fast=args.fast)
        with open(args.json, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        slowest = max(
            snapshot["queries"].items(), key=lambda kv: kv[1]["cold_ms"]
        )
        print(
            f"wrote {args.json}: {len(snapshot['queries'])} queries, "
            f"slowest cold rewrite {slowest[0]} at "
            f"{slowest[1]['cold_ms']:.1f} ms"
        )
        return
    print(f"REPRO_SCALE = {bench_scale()}\n")
    figure_rows()
    negative_rows()
    tpcd_rows()
    web_rows()


if __name__ == "__main__":
    main()
