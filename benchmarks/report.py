"""Regenerate the EXPERIMENTS.md measurement tables.

Runs every figure experiment and the TPC-D suite at the current
REPRO_SCALE and prints markdown table rows with original/rewritten
timings. This is the script that produced the numbers recorded in
EXPERIMENTS.md.

Run:  python benchmarks/report.py
"""

from __future__ import annotations

import time

from repro.bench.figures import FIGURES, NEGATIVE_FIGURES, make_bench_experiment, make_database
from repro.bench.harness import bench_scale
from repro.workloads import QUERIES, bench_config, build_tpcd_db, install_asts


def figure_rows() -> None:
    print("| figure | pattern(s) | base rows | AST rows | original | rewritten | speedup |")
    print("|---|---|---|---|---|---|---|")
    for figure in FIGURES:
        experiment = make_bench_experiment(figure)
        run = experiment.measure(repeat=3)
        patterns = experiment.explanation.split("(")[-1].rstrip(")")
        print(
            f"| {figure} | {patterns} | {run.base_rows} | {run.summary_rows} "
            f"| {run.original_seconds * 1e3:.1f} ms "
            f"| {run.rewritten_seconds * 1e3:.1f} ms "
            f"| {run.speedup:.1f}x |"
        )


def negative_rows() -> None:
    print("\n| negative case | outcome |")
    print("|---|---|")
    for figure, (name, ast_sql, query) in NEGATIVE_FIGURES.items():
        db = make_database(bench_config(bench_scale()))
        db.create_summary_table(name, ast_sql)
        outcome = "no match (correct)" if db.rewrite(query) is None else "MATCHED (bug!)"
        print(f"| {figure} | {outcome} |")


def tpcd_rows() -> None:
    db = build_tpcd_db(orders=2000)
    install_asts(db)
    print("\n| TPC-D-like query | original | rewritten | speedup |")
    print("|---|---|---|---|")
    for name, query in QUERIES.items():
        result = db.rewrite(query)
        start = time.perf_counter()
        db.execute(query, use_summary_tables=False)
        t_original = time.perf_counter() - start
        start = time.perf_counter()
        db.execute_graph(result.graph)
        t_rewritten = time.perf_counter() - start
        print(
            f"| {name} | {t_original * 1e3:.1f} ms | {t_rewritten * 1e3:.1f} ms "
            f"| {t_original / t_rewritten:.1f}x |"
        )


def web_rows() -> None:
    from repro.workloads.webmetrics import QUERIES as WEB_QUERIES
    from repro.workloads.webmetrics import build_web_db, install_web_asts

    db = build_web_db(views=40000)
    install_web_asts(db)
    print("\n| web-analytics query | original | rewritten | speedup |")
    print("|---|---|---|---|")
    for name, query in WEB_QUERIES.items():
        result = db.rewrite(query)
        start = time.perf_counter()
        db.execute(query, use_summary_tables=False)
        t_original = time.perf_counter() - start
        start = time.perf_counter()
        db.execute_graph(result.graph)
        t_rewritten = time.perf_counter() - start
        print(
            f"| {name} | {t_original * 1e3:.1f} ms | {t_rewritten * 1e3:.1f} ms "
            f"| {t_original / t_rewritten:.1f}x |"
        )


def main() -> None:
    print(f"REPRO_SCALE = {bench_scale()}\n")
    figure_rows()
    negative_rows()
    tpcd_rows()
    web_rows()


if __name__ == "__main__":
    main()
