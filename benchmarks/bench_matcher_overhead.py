"""Matcher/rewriter overhead: the time to *find* a rewrite must be
negligible next to the execution time it saves (implicit throughout the
paper — the algorithm runs inside the optimizer).

Benchmarks the full pipeline (parse + bind + navigate + compensate) for a
representative set of figure queries, plus the parse+bind baseline so the
matching cost proper can be read off the difference.
"""

import pytest

from repro.bench.figures import FIGURES, make_database
from repro.workloads import small_config


CASES = ["fig02_q1", "fig05_q2", "fig10_q8", "fig14_q12_2"]


@pytest.fixture(scope="module")
def prepared():
    databases = {}
    for figure in CASES:
        ast_name, ast_sql, query, _ = FIGURES[figure]
        db = make_database(small_config())
        db.create_summary_table(ast_name, ast_sql)
        databases[figure] = (db, query)
    return databases


@pytest.mark.parametrize("figure", CASES)
def test_parse_and_bind(benchmark, prepared, figure):
    db, query = prepared[figure]
    benchmark(db.bind, query)


@pytest.mark.parametrize("figure", CASES)
def test_full_rewrite(benchmark, prepared, figure):
    db, query = prepared[figure]
    result = benchmark(db.rewrite, query)
    assert result is not None
