"""Benchmark for fig06_q4: yearly sums re-derived from monthly sums (Figure 6).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig06_q4")


def test_fig06_q4_original(benchmark, experiment):
    """The paper's Q4 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig06_q4_rewritten(benchmark, experiment):
    """The paper's NewQ4 against AST4."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
