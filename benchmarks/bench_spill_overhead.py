"""Memory-budget overhead: disarmed must be free, spilling must work.

The memory broker follows the governor's disarmed-cost discipline: a
query with no ``QUERY MAXMEM`` and no process-wide ``--mem-limit``
never creates a :class:`MemoryReservation` at all — the executor's two
charge sites guard on ``reservation is not None`` and the governor's
``open_scope`` fast path stays ``None``. This benchmark pins that
contract on the TPC-D workload:

* **baseline** — ``Database.execute`` before this subsystem existed is
  approximated by the same call with the broker guaranteed unlimited
  (the attribute reads remain; they are the cost under test);
* **disarmed** — ``Database.execute`` with no memory limits (the
  shipped default);
* **spilled** — ``Database.execute(max_mem=1)``: every charge denied,
  both spill-capable operators degrade to disk. Reported for context —
  spilling is *supposed* to cost; the contract there is bit-identity,
  not speed.

The gate: ``disarmed / baseline <= --limit`` (default 1.03, the
ISSUE's <=3% pin). Emits ``BENCH_memory.json`` for CI artifact
diffing. Run standalone (``PYTHONPATH=src python
benchmarks/bench_spill_overhead.py``) or with ``--fast`` for a
seconds-long CI smoke run (the threshold is printed but not enforced —
shared-runner timing is too noisy to gate).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.resources.broker import BROKER  # noqa: E402
from repro.workloads import tpcd  # noqa: E402

#: the join-heavy workload query: both spill-capable operators run
QUERY_NAME = "q5_nation"


def time_query(database, runs: int, max_mem: int | None) -> float:
    """Median seconds per run of the workload query."""
    sql = tpcd.QUERIES[QUERY_NAME]
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        if max_mem is None:
            database.execute(sql)
        else:
            database.execute(sql, max_mem=max_mem)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def run(orders: int, runs: int) -> dict:
    BROKER.reset()
    database = tpcd.build_tpcd_db(orders=orders)

    time_query(database, max(2, runs // 3), None)  # warm-up

    # Interleave the modes so drift (GC, frequency scaling) hits all
    # three equally instead of biasing whichever ran last.
    baseline_s, disarmed_s, spilled_s = [], [], []
    rounds = 3
    per_round = max(3, runs // rounds)
    for _ in range(rounds):
        baseline_s.append(time_query(database, per_round, None))
        disarmed_s.append(time_query(database, per_round, None))
        spilled_s.append(time_query(database, per_round, 1))

    baseline = statistics.median(baseline_s)
    disarmed = statistics.median(disarmed_s)
    spilled = statistics.median(spilled_s)
    # disarmed means disarmed: no reservation, no reserved bytes
    assert not BROKER.limited and BROKER.reserved() == 0
    spill_count = database.metrics.get("executor_spill_count")
    assert spill_count is not None and spill_count.value > 0
    return {
        "orders": orders,
        "query": QUERY_NAME,
        "runs_per_mode": rounds * per_round,
        "baseline_ms": baseline * 1e3,
        "disarmed_ms": disarmed * 1e3,
        "spilled_ms": spilled * 1e3,
        "disarmed_ratio": disarmed / baseline,
        "spilled_ratio": spilled / baseline,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller workload and fewer repetitions; "
        "the limit is printed but not enforced (shared runners are too "
        "noisy)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="total runs per mode"
    )
    parser.add_argument(
        "--limit",
        type=float,
        default=1.03,
        help="max allowed disarmed/baseline ratio (default 1.03 = +3%%)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_memory.json"),
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    orders = 120 if args.fast else 600
    runs = args.runs or (6 if args.fast else 21)

    print(
        f"memory-budget overhead on TPC-D {QUERY_NAME} "
        f"({orders} orders, {runs} runs/mode)"
    )
    point = run(orders, runs)
    print(f"  baseline (no broker limits) {point['baseline_ms']:>8.3f} ms")
    print(
        f"  disarmed (execute, no maxmem) {point['disarmed_ms']:>6.3f} ms "
        f"= {point['disarmed_ratio']:.3f}x"
    )
    print(
        f"  spilled (maxmem=1)          {point['spilled_ms']:>8.3f} ms "
        f"= {point['spilled_ratio']:.3f}x"
    )

    point["limit"] = args.limit
    point["fast"] = args.fast
    point["passed"] = point["disarmed_ratio"] <= args.limit
    args.json.write_text(json.dumps(point, indent=2) + "\n")
    print(f"wrote {args.json}")

    if point["passed"]:
        print(
            f"PASS: disarmed ratio {point['disarmed_ratio']:.3f} "
            f"<= {args.limit:g}"
        )
        return 0
    message = (
        f"disarmed ratio {point['disarmed_ratio']:.3f} > {args.limit:g}"
    )
    if args.fast:
        print(f"note: {message} (not enforced in --fast mode)")
        return 0
    print(f"FAIL: {message}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
