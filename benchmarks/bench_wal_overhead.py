"""Write-ahead journal overhead: what durability costs the ingest path.

Three servers over the same TPC-D database take the same concurrent
insert storm (loopback TCP, real wire protocol):

* **unjournaled** — the baseline: mutations apply in memory only;
* **wal-os** — journal-before-ACK with ``sync=os`` (SIGKILL-durable:
  the bytes reach the OS page cache before the reply);
* **wal-fsync** — journal-before-ACK with ``sync=fsync`` (power-loss
  durable: one ``fsync`` per group-commit batch before any reply).

Concurrent writers matter: group commit amortizes the flush across
every mutation staged while the previous batch was syncing, which is
exactly how the server calls the journal. The gate — journaled ingest
costs no more than **1.25x** the unjournaled baseline (overhead ratio
= baseline QPS / journaled QPS) — is enforced for ``wal-os`` in every
mode and for ``wal-fsync`` in full mode only (fsync latency on shared
CI runners is pure noise).

A warm-cache read phase also runs against the unjournaled and
journaled servers: SELECTs never touch the journal, so the gate there
is QPS >= **0.95x** the baseline (full mode only).

Emits ``BENCH_wal.json`` for the CI artifact.

Run: ``PYTHONPATH=src python benchmarks/bench_wal_overhead.py [--fast]``
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.replication import WriteAheadLog  # noqa: E402
from repro.server.client import ReproClient  # noqa: E402
from repro.server.server import QueryServer  # noqa: E402
from repro.workloads import tpcd  # noqa: E402

INGEST_TEMPLATE = (
    "INSERT INTO Lineitem VALUES ({key}, 99, 3, 500.0, 0.04, 0.02, "
    "'N', 'O', DATE '1997-05-{day:02d}')"
)


def ingest_storm(
    address: tuple[str, int], clients: int, inserts_per_client: int,
    key_base: int,
) -> dict:
    """Concurrent tokened inserts; returns wall time and QPS."""
    host, port = address
    barrier = threading.Barrier(clients + 1)
    errors = [0] * clients

    def worker(worker_id: int) -> None:
        with ReproClient(host, port) as client:
            barrier.wait()
            for i in range(inserts_per_client):
                key = key_base + worker_id * 1_000_000 + i
                sql = INGEST_TEMPLATE.format(key=key, day=(key % 28) + 1)
                try:
                    client.query(sql)
                except Exception:  # noqa: BLE001
                    errors[worker_id] += 1

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    total = clients * inserts_per_client
    return {
        "inserts": total,
        "wall_s": wall,
        "qps": total / wall,
        "errors": sum(errors),
    }


def warm_reads(
    address: tuple[str, int], clients: int, requests_per_client: int
) -> dict:
    """Warm-cache SELECT replay; returns QPS and median latency."""
    host, port = address
    queries = list(tpcd.QUERIES.values())
    with ReproClient(host, port) as warmer:  # one cold pass fills the cache
        for sql in queries:
            warmer.query(sql)
    barrier = threading.Barrier(clients + 1)
    latencies: list[list[float]] = [[] for _ in range(clients)]

    def worker(worker_id: int) -> None:
        with ReproClient(host, port) as client:
            barrier.wait()
            for request_no in range(requests_per_client):
                sql = queries[(worker_id + request_no) % len(queries)]
                started = time.perf_counter()
                client.query(sql)
                latencies[worker_id].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    flat = [sample for bucket in latencies for sample in bucket]
    return {
        "requests": len(flat),
        "wall_s": wall,
        "qps": len(flat) / wall,
        "p50_ms": statistics.median(flat) * 1e3,
    }


def fresh_server(orders: int, wal_dir: Path | None, sync: str) -> QueryServer:
    db = tpcd.build_tpcd_db(orders=orders)
    tpcd.install_asts(db)
    wal = None
    if wal_dir is not None:
        wal = WriteAheadLog(wal_dir, sync=sync)
        wal.begin(db)
    server = QueryServer(db, wal=wal)
    server.start_in_thread()
    return server


def stop_server(server: QueryServer) -> None:
    server.stop()
    if server.wal is not None:
        server.wal.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke mode: small db, few requests; the "
                        "fsync and read gates are printed, not enforced")
    parser.add_argument("--orders", type=int, default=None)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--inserts", type=int, default=None,
                        help="inserts per client per configuration")
    parser.add_argument("--reads", type=int, default=None,
                        help="warm reads per client per configuration")
    parser.add_argument("--max-overhead", type=float, default=1.25)
    parser.add_argument("--min-read-ratio", type=float, default=0.95)
    parser.add_argument("--json", type=Path, default=Path("BENCH_wal.json"))
    args = parser.parse_args(argv)

    orders = args.orders or (200 if args.fast else 1000)
    inserts = args.inserts or (25 if args.fast else 150)
    reads = args.reads or (15 if args.fast else 60)
    scratch = Path(tempfile.mkdtemp(prefix="bench-wal-"))

    print(f"WAL overhead benchmark (TPC-D orders={orders}, "
          f"{args.clients} writers x {inserts} inserts)")
    ingest: dict[str, dict] = {}
    read: dict[str, dict] = {}
    try:
        configs = [
            ("unjournaled", None, "os"),
            ("wal-os", scratch / "wal-os", "os"),
            ("wal-fsync", scratch / "wal-fsync", "fsync"),
        ]
        for label, wal_dir, sync in configs:
            server = fresh_server(orders, wal_dir, sync)
            try:
                ingest[label] = ingest_storm(
                    server.address, args.clients, inserts, key_base=900_000
                )
                if label in ("unjournaled", "wal-fsync"):
                    read[label] = warm_reads(
                        server.address, args.clients, reads
                    )
            finally:
                stop_server(server)
            point = ingest[label]
            print(f"  {label:<12} {point['qps']:>8.1f} inserts/s   "
                  f"errors {point['errors']}")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    base_qps = ingest["unjournaled"]["qps"]
    overhead = {
        label: base_qps / ingest[label]["qps"]
        for label in ("wal-os", "wal-fsync")
    }
    read_ratio = read["wal-fsync"]["qps"] / read["unjournaled"]["qps"]
    for label, ratio in overhead.items():
        print(f"  {label} overhead {ratio:.2f}x "
              f"(gate: <= {args.max_overhead:g}x)")
    print(f"  warm-read qps ratio {read_ratio:.2f}x "
          f"(gate: >= {args.min_read_ratio:g}x)")

    payload = {
        "workload": {
            "orders": orders,
            "clients": args.clients,
            "inserts_per_client": inserts,
            "reads_per_client": reads,
            "fast": args.fast,
        },
        "ingest": ingest,
        "read": read,
        "overhead": overhead,
        "read_ratio": read_ratio,
        "gates": {
            "max_overhead": args.max_overhead,
            "min_read_ratio": args.min_read_ratio,
        },
    }
    args.json.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {args.json}")

    if any(point["errors"] for point in ingest.values()):
        print("FAIL: ingest produced errors")
        return 1
    failures = []
    if overhead["wal-os"] > args.max_overhead:
        failures.append(
            f"wal-os ingest overhead {overhead['wal-os']:.2f}x above "
            f"{args.max_overhead:g}x"
        )
    if overhead["wal-fsync"] > args.max_overhead:
        failures.append(
            f"wal-fsync ingest overhead {overhead['wal-fsync']:.2f}x above "
            f"{args.max_overhead:g}x"
        )
    if read_ratio < args.min_read_ratio:
        failures.append(
            f"journaled warm-read qps ratio {read_ratio:.2f}x below "
            f"{args.min_read_ratio:g}x"
        )
    for message in failures:
        # fsync latency and cache-read jitter are runner noise in fast
        # mode; the wal-os gate is load-bearing everywhere
        enforced = not args.fast or message.startswith("wal-os")
        print(("FAIL: " if enforced else "note (not enforced in --fast): ")
              + message)
    if any(not args.fast or m.startswith("wal-os") for m in failures):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
