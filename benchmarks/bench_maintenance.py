"""Related problem (c): incremental maintenance vs full recomputation.

Measures bringing AST1 up to date after a 1% batch of new transactions,
both ways. The incremental path should win by roughly the base/delta
ratio.
"""

import pytest

from repro.asts.maintenance import maintain_insert
from repro.bench.figures import AST1, make_database
from repro.bench.harness import bench_scale
from repro.workloads import bench_config


def _fresh():
    db = make_database(bench_config(bench_scale()))
    db.create_summary_table("AST1", AST1)
    return db


def _delta_rows(db, fraction=0.01):
    import datetime

    base = db.table("Trans")
    count = max(1, int(len(base) * fraction))
    next_tid = max(row[0] for row in base.rows) + 1
    rows = []
    for i in range(count):
        template = base.rows[i % len(base)]
        rows.append((next_tid + i,) + template[1:4] + (datetime.date(1993, 1, 1),) + template[5:])
    return rows


def test_incremental_insert(benchmark):
    def setup():
        db = _fresh()
        return (db, "Trans", _delta_rows(db)), {}

    def run(db, table, rows):
        report = maintain_insert(db, table, rows)
        assert report.was_incremental("AST1")

    benchmark.pedantic(run, setup=setup, rounds=5)


def test_full_recompute(benchmark):
    def setup():
        db = _fresh()
        db.load("Trans", _delta_rows(db))
        return (db,), {}

    def run(db):
        db.refresh_summary_tables()

    benchmark.pedantic(run, setup=setup, rounds=5)
