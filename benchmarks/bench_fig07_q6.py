"""Benchmark for fig07_q6: predicate pull-up + year%100 regrouping (Figure 7).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig07_q6")


def test_fig07_q6_original(benchmark, experiment):
    """The paper's Q6 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig07_q6_rewritten(benchmark, experiment):
    """The paper's NewQ6 against AST6."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
