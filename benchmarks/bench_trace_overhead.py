"""Tracing overhead on the TPC-D suite: off must be free, 1% cheap.

The span tracer's contract mirrors the governor's: the only global
state is the module-level ``spans.TRACER`` slot, every instrumentation
site guards on it first, and with tracing off the whole feature costs
one global load plus a ``None`` test per site. Head sampling extends
the contract to low rates — an unsampled request's root is the shared
``NOOP`` singleton, so its spans never allocate.

This benchmark pins both on the TPC-D workload (every suite query,
summary-table rewrites enabled):

* **off** — ``spans.TRACER is None`` (the default): the baseline;
* **sampled** — tracer installed at a 1%% sample rate: ~99%% of
  requests pay one seeded-RNG draw and run the NOOP path;
* **full** — sample rate 1.0: every request records real spans
  (reported for context, not gated — recording is real bounded work).

Gates (the ISSUE's pins):

* **off <= +3%**: wall-clock timing cannot resolve a few dozen
  nanosecond-scale guard checks inside a millisecond-scale query, so
  the off gate is measured directly — the per-call cost of a disabled
  hook (``spans.record`` with ``TRACER`` None) times a deliberately
  generous per-query hook count must stay under ``--limit-off``
  (default 3%%) of the measured off-mode per-query time;
* **sampled <= +5%**: ``sampled / off <= --limit-sampled`` (default
  1.05).

Emits ``BENCH_obs.json`` for CI artifact diffing.

Run standalone (``PYTHONPATH=src python
benchmarks/bench_trace_overhead.py``) or with ``--fast`` for a
seconds-long CI smoke run (smaller data, fewer repetitions; thresholds
are printed but not enforced — shared-runner timing is too noisy).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import spans  # noqa: E402
from repro.workloads import QUERIES, build_tpcd_db, install_asts  # noqa: E402


def run_suite(database) -> None:
    for name in sorted(QUERIES):
        if spans.TRACER is not None:
            root = spans.TRACER.start_trace("bench.query", query=name)
        else:
            root = spans.NOOP
        with root:
            database.execute(QUERIES[name])


def time_suite(database, runs: int) -> float:
    """Median seconds per full-suite pass."""
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        run_suite(database)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


#: hook invocations charged per query in the off gate — far above the
#: actual count of instrumented sites a single query crosses (~10)
HOOKS_PER_QUERY = 64


def disabled_hook_ns(calls: int = 200_000) -> float:
    """Mean nanoseconds per disabled instrumentation hook."""
    assert spans.TRACER is None
    stamp = time.perf_counter()
    start = time.perf_counter()
    for _ in range(calls):
        spans.record("bench.noop", stamp)
    return (time.perf_counter() - start) / calls * 1e9


def run(orders: int, runs: int) -> dict:
    database = build_tpcd_db(orders=orders)
    install_asts(database)

    spans.uninstall()
    time_suite(database, max(2, runs // 3))  # warm-up

    # Interleave the modes so drift (GC, frequency scaling) hits all
    # three equally instead of biasing whichever ran last.
    off_s, sampled_s, full_s = [], [], []
    rounds = 3
    per_round = max(2, runs // rounds)
    for round_index in range(rounds):
        spans.uninstall()
        off_s.append(time_suite(database, per_round))
        spans.install(sample_rate=0.01, seed=round_index)
        sampled_s.append(time_suite(database, per_round))
        spans.install(sample_rate=1.0, seed=round_index)
        full_s.append(time_suite(database, per_round))
    spans.uninstall()

    off = statistics.median(off_s)
    sampled = statistics.median(sampled_s)
    full = statistics.median(full_s)
    hook_ns = disabled_hook_ns()
    database.close()
    off_query_s = off / len(QUERIES)
    hook_fraction = (HOOKS_PER_QUERY * hook_ns * 1e-9) / off_query_s
    return {
        "orders": orders,
        "queries": len(QUERIES),
        "runs_per_mode": rounds * per_round,
        "off_ms": off * 1e3,
        "sampled_1pct_ms": sampled * 1e3,
        "full_ms": full * 1e3,
        "disabled_hook_ns": hook_ns,
        "hooks_per_query": HOOKS_PER_QUERY,
        "off_overhead_fraction": hook_fraction,
        "sampled_ratio": sampled / off,
        "full_ratio": full / off,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller data and fewer repetitions; limits "
        "are printed but not enforced (shared runners are too noisy)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="total runs per mode"
    )
    parser.add_argument(
        "--limit-off",
        type=float,
        default=0.03,
        help="max fraction of per-query time the disabled hooks may "
        "cost (default 0.03 = 3%%, the tracing-off discipline)",
    )
    parser.add_argument(
        "--limit-sampled",
        type=float,
        default=1.05,
        help="max allowed sampled-at-1%%/off ratio (default 1.05 = +5%%)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_obs.json"),
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    orders = (
        int(os.environ["REPRO_TPCD_ORDERS"])
        if "REPRO_TPCD_ORDERS" in os.environ
        else (300 if args.fast else 2000)
    )
    runs = args.runs or (3 if args.fast else 15)

    print(
        f"tracing overhead on the TPC-D suite "
        f"({len(QUERIES)} queries, {orders} orders, {runs} runs/mode)"
    )
    point = run(orders, runs)
    print(f"  off (TRACER is None)  {point['off_ms']:>9.3f} ms/suite")
    print(
        f"  sampled at 1%         {point['sampled_1pct_ms']:>9.3f} ms/suite "
        f"= {point['sampled_ratio']:.3f}x"
    )
    print(
        f"  full (rate 1.0)       {point['full_ms']:>9.3f} ms/suite "
        f"= {point['full_ratio']:.3f}x"
    )
    print(
        f"  disabled hook         {point['disabled_hook_ns']:>9.1f} ns/call "
        f"-> {point['off_overhead_fraction']:.5f} of a query "
        f"at {point['hooks_per_query']} hooks/query"
    )

    point["limit_off"] = args.limit_off
    point["limit_sampled"] = args.limit_sampled
    point["fast"] = args.fast
    point["off_passed"] = point["off_overhead_fraction"] <= args.limit_off
    point["sampled_passed"] = point["sampled_ratio"] <= args.limit_sampled
    point["passed"] = point["off_passed"] and point["sampled_passed"]
    args.json.write_text(json.dumps(point, indent=2) + "\n")
    print(f"wrote {args.json}")

    failures = []
    if not point["off_passed"]:
        failures.append(
            f"disabled-hook fraction {point['off_overhead_fraction']:.5f} "
            f"> {args.limit_off:g}"
        )
    if not point["sampled_passed"]:
        failures.append(
            f"sampled ratio {point['sampled_ratio']:.3f} > "
            f"{args.limit_sampled:g}"
        )
    if not failures:
        print(
            f"PASS: disabled hooks {point['off_overhead_fraction']:.5f} "
            f"<= {args.limit_off:g} of a query, sampled ratio "
            f"{point['sampled_ratio']:.3f} <= {args.limit_sampled:g}"
        )
        return 0
    message = "; ".join(failures)
    if args.fast:
        print(f"note: {message} (not enforced in --fast mode)")
        return 0
    print(f"FAIL: {message}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
