"""Benchmark for fig10_q8: multi-block histogram query (Figure 10).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig10_q8")


def test_fig10_q8_original(benchmark, experiment):
    """The paper's Q8 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig10_q8_rewritten(benchmark, experiment):
    """The paper's NewQ8 against AST8."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
