"""Ingest latency: REFRESH IMMEDIATE vs REFRESH DEFERRED.

With immediate maintenance every ``insert_rows`` call pays a
summary-delta computation per affected AST before it returns. With
deferred maintenance the same call just appends to the base table and
stages a delta batch; the background scheduler applies the coalesced
batches later. This benchmark registers 9 maintainable count/sum ASTs
over Trans (varied group-bys), streams the same insert workload into an
immediate-mode and a deferred-mode database, and compares:

* **ingest latency** — total wall-clock of the ``insert_rows`` calls
  (what a loading client waits for). Full mode enforces deferred ingest
  at least 5x faster than immediate at 8+ ASTs.
* **correctness** — after ``drain_refresh()`` every deferred AST must be
  bit-identical to its immediate-mode twin, and strict-freshness
  (REFRESH AGE 0) query answers must agree between the two databases.

Run standalone (``PYTHONPATH=src python benchmarks/bench_deferred_refresh.py``)
or with ``--fast`` for a seconds-long CI smoke run (thresholds off:
timing is too noisy on shared runners).
"""

from __future__ import annotations

import argparse
import time

from repro.catalog.sample import credit_card_catalog
from repro.engine.database import Database
from repro.refresh.policy import RefreshAge
from repro.workloads.datagen import populate_credit_db, small_config

#: insert-maintainable (COUNT/SUM only) summary tables over Trans. The
#: summed column (qty) is an integer: bit-identity between per-batch and
#: coalesced merging is then exact, with no float-association caveats.
AST_SQLS = [
    "select faid, count(*) as cnt, sum(qty) as sq from Trans group by faid",
    "select flid, count(*) as cnt, sum(qty) as sq from Trans group by flid",
    "select fpgid, count(*) as cnt, sum(qty) as sq from Trans group by fpgid",
    "select year(date) as year, count(*) as cnt from Trans group by year(date)",
    "select month(date) as month, count(*) as cnt, sum(qty) as sq "
    "from Trans group by month(date)",
    "select faid, flid, count(*) as cnt from Trans group by faid, flid",
    "select faid, year(date) as year, count(*) as cnt, sum(qty) as sq "
    "from Trans group by faid, year(date)",
    "select fpgid, month(date) as month, count(*) as cnt "
    "from Trans group by fpgid, month(date)",
    "select flid, year(date) as year, count(*) as cnt, sum(qty) as sq "
    "from Trans group by flid, year(date)",
]

#: queries answered from the ASTs for the post-drain equivalence check
CHECK_QUERIES = [
    "select faid, count(*) as cnt from Trans group by faid",
    "select year(date) as year, count(*) as cnt from Trans group by year(date)",
    "select faid, flid, count(*) as cnt from Trans group by faid, flid",
]


def build_database(refresh_mode: str, base: Database) -> Database:
    """A twin of ``base`` (same rows, loaded without maintenance) with
    every AST registered in ``refresh_mode``."""
    database = Database(credit_card_catalog())
    for key, schema in base.catalog.tables.items():
        if key in base.summary_tables:
            continue
        database.load(schema.name, base.tables[key].rows)
    for index, sql in enumerate(AST_SQLS):
        database.create_summary_table(
            f"AST_{index}", sql, refresh_mode=refresh_mode
        )
    return database


def make_workload(base: Database, batches: int, rows_per_batch: int):
    """Deterministic insert batches: existing Trans rows cloned with
    fresh primary keys (so every foreign key stays valid)."""
    template = base.table("Trans").rows
    next_tid = max(row[0] for row in template) + 1
    workload = []
    cursor = 0
    for _ in range(batches):
        rows = []
        for _ in range(rows_per_batch):
            clone = template[cursor % len(template)]
            rows.append((next_tid,) + tuple(clone[1:]))
            next_tid += 1
            cursor += 1
        workload.append(rows)
    return workload


def time_ingest(database: Database, workload) -> float:
    start = time.perf_counter()
    for rows in workload:
        database.insert_rows("Trans", rows)
    return time.perf_counter() - start


def check_equivalence(immediate: Database, deferred: Database) -> None:
    for key, summary in deferred.summary_tables.items():
        twin = immediate.summary_tables[key]
        if sorted(summary.table.rows) != sorted(twin.table.rows):
            raise SystemExit(
                f"CORRECTNESS FAILURE: {summary.name} differs from its "
                "immediate-mode twin after drain"
            )
    for sql in CHECK_QUERIES:
        strict = RefreshAge.CURRENT
        left = deferred.execute(sql, tolerance=strict)
        right = immediate.execute(sql, tolerance=strict)
        if sorted(left.rows) != sorted(right.rows):
            raise SystemExit(f"CORRECTNESS FAILURE: answers differ for {sql!r}")
        # strict freshness must actually be served from a summary table
        if deferred.rewrite(sql, tolerance=strict) is None:
            raise SystemExit(
                f"benchmark error: {sql!r} not served from an AST after drain"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller workload, no speedup threshold",
    )
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--rows-per-batch", type=int, default=None)
    args = parser.parse_args(argv)

    batches = args.batches or (10 if args.fast else 150)
    rows_per_batch = args.rows_per_batch or 3

    base = Database(credit_card_catalog())
    populate_credit_db(base, small_config())
    workload = make_workload(base, batches, rows_per_batch)
    total_rows = batches * rows_per_batch

    immediate = build_database("immediate", base)
    deferred = build_database("deferred", base)

    print(
        f"deferred vs immediate ingest: {len(AST_SQLS)} ASTs over Trans, "
        f"{batches} batches x {rows_per_batch} rows"
    )
    immediate_s = time_ingest(immediate, workload)
    deferred_s = time_ingest(deferred, workload)

    drain_start = time.perf_counter()
    deferred.drain_refresh()
    drain_s = time.perf_counter() - drain_start
    scheduler = deferred.refresh_scheduler

    check_equivalence(immediate, deferred)
    deferred.close()

    speedup = immediate_s / deferred_s if deferred_s else float("inf")
    print(f"  immediate ingest  {immediate_s * 1e3:>9.1f} ms "
          f"({immediate_s / total_rows * 1e6:.0f} us/row)")
    print(f"  deferred ingest   {deferred_s * 1e3:>9.1f} ms "
          f"({deferred_s / total_rows * 1e6:.0f} us/row)")
    print(f"  deferred drain    {drain_s * 1e3:>9.1f} ms "
          f"({scheduler.refreshes_applied} refreshes, "
          f"{scheduler.batches_applied} batches merged, "
          f"{scheduler.fallback_recomputes} fallbacks)")
    print(f"  ingest speedup    {speedup:>8.1f}x")
    print()
    print("post-drain summaries bit-identical to immediate mode; "
          "strict-freshness answers agree")

    if not args.fast and speedup < 5.0:
        print(f"FAIL: deferred ingest speedup {speedup:.1f}x < 5x "
              f"at {len(AST_SQLS)} ASTs")
        return 1
    print("smoke OK" if args.fast
          else f"PASS: deferred ingest >= 5x at {len(AST_SQLS)} ASTs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
