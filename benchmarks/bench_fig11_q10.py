"""Benchmark for fig11_q10: scalar subquery percentage query (Figure 11).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig11_q10")


def test_fig11_q10_original(benchmark, experiment):
    """The paper's Q10 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig11_q10_rewritten(benchmark, experiment):
    """The paper's NewQ10 against AST10."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
