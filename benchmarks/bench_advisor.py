"""Related problem (a): the greedy lattice advisor, and the payoff of the
views it picks.

Benchmarks (1) advisor selection time over the 4-attribute lattice and
(2) a mixed dashboard workload executed with and without the advisor's
views installed.
"""

import pytest

from repro.asts.advisor import Advisor
from repro.bench.figures import make_database
from repro.bench.harness import bench_scale
from repro.workloads import bench_config

ATTRIBUTES = {
    "faid": "faid",
    "flid": "flid",
    "year": "year(date)",
    "month": "month(date)",
}

WORKLOAD = [
    "select faid, count(*) as c from Trans group by faid",
    "select flid, year(date) as y, count(*) as c from Trans group by flid, year(date)",
    "select year(date) as y, month(date) as m, count(*) as c "
    "from Trans group by year(date), month(date)",
    "select count(*) as c from Trans",
]


@pytest.fixture(scope="module")
def database():
    return make_database(bench_config(bench_scale()))


def test_advisor_selection(benchmark, database):
    def run():
        advisor = Advisor(database, "Trans", ATTRIBUTES)
        budget = len(database.table("Trans")) // 2
        return advisor.select(budget_rows=budget, max_views=3)

    result = benchmark(run)
    assert result.selected


def test_workload_without_views(benchmark, database):
    def run():
        for query in WORKLOAD:
            database.execute(query, use_summary_tables=False)

    benchmark(run)


def test_workload_with_advised_views(benchmark, database):
    advisor = Advisor(database, "Trans", ATTRIBUTES)
    budget = len(database.table("Trans")) // 2
    chosen = advisor.select(budget_rows=budget, max_views=3)
    names = advisor.create_selected(chosen, prefix="BENCHADV")
    plans = []
    for query in WORKLOAD:
        result = database.rewrite(query)
        assert result is not None, query
        plans.append(result.graph)

    def run():
        for plan in plans:
            database.execute_graph(plan)

    benchmark(run)
    for name in names:
        database.drop_summary_table(name)
