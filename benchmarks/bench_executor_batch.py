"""Batch-executor throughput: batch-size sweep and parallel scaling.

The columnar executor processes relations as whole column batches with
selection vectors; the morsel size (``batch_rows``) controls how much
work each inner loop does between scheduling/tick points. This benchmark
measures raw rows/sec on the three hot shapes over the mini TPC-D data:

* **scan** — filter + arithmetic projection + scalar aggregate (Q6 shape);
* **join** — hash join Lineitem ⋈ Orders with a post-join aggregate;
* **group-by** — hash grouping with four aggregates (Q1 shape);

each at batch sizes 1 / 256 / 4096. Batch 1 degenerates to row-at-a-time
morsels and shows the per-batch overhead floor; 4096 is the default
ungoverned-parallel morsel size.

The parallel section runs the group-by and join shapes at 1 / 2 / 4
workers over the session-style thread pool. **Caveat:** this is pure
Python under the GIL — morsel workers interleave rather than truly
overlap, so the scaling curve mostly measures scheduling overhead, not
speedup. It is reported (and archived as a CI artifact) to pin that the
overhead stays modest, not to claim parallel wins; the machinery exists
so accelerated kernels can drop in later.

Run standalone (``PYTHONPATH=src python
benchmarks/bench_executor_batch.py``) or with ``--fast`` for a
seconds-long CI smoke run. Emits ``BENCH_executor.json``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import Executor  # noqa: E402
from repro.qgm import build_graph  # noqa: E402
from repro.workloads import tpcd  # noqa: E402

SHAPES = {
    "scan": (
        "select sum(extendedprice * (1 - discount)) as revenue "
        "from Lineitem where quantity < 24 and discount >= 0.02"
    ),
    "join": (
        "select orderpriority, count(*) as n, sum(extendedprice) as total "
        "from Lineitem, Orders where lorderkey = orderkey "
        "group by orderpriority"
    ),
    "group-by": (
        "select returnflag, linestatus, sum(quantity) as sum_qty, "
        "sum(extendedprice) as sum_base, avg(discount) as avg_disc, "
        "count(*) as cnt from Lineitem group by returnflag, linestatus"
    ),
}
BATCH_SIZES = (1, 256, 4096)
WORKER_COUNTS = (1, 2, 4)


def _median_seconds(run, reps: int) -> float:
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def bench(orders: int, reps: int) -> dict:
    database = tpcd.build_tpcd_db(orders=orders)
    lineitem = len(database.tables["lineitem"])
    input_rows = {
        "scan": lineitem,
        "join": lineitem + len(database.tables["orders"]),
        "group-by": lineitem,
    }
    graphs = {
        name: build_graph(sql, database.catalog)
        for name, sql in SHAPES.items()
    }

    result: dict = {"orders": orders, "reps": reps, "shapes": {}}
    for name, graph in graphs.items():
        by_batch = {}
        for batch_rows in BATCH_SIZES:
            executor = Executor(database.tables, batch_rows=batch_rows)
            executor.run(graph)  # warm-up
            seconds = _median_seconds(lambda: executor.run(graph), reps)
            by_batch[str(batch_rows)] = {
                "ms": seconds * 1e3,
                "rows_per_sec": input_rows[name] / seconds,
            }
        result["shapes"][name] = {
            "input_rows": input_rows[name],
            "by_batch_rows": by_batch,
        }

    parallel: dict = {}
    for name in ("join", "group-by"):
        by_workers = {}
        for workers in WORKER_COUNTS:
            # Fixed small morsels so the scheduler actually dispatches
            # tasks at every data scale (the 4096 default would leave
            # the --fast table as one serial batch).
            executor = Executor(
                database.tables, parallel=workers, batch_rows=256
            )
            executor.run(graphs[name])  # warm-up (also creates the pool)
            seconds = _median_seconds(
                lambda: executor.run(graphs[name]), reps
            )
            by_workers[str(workers)] = {
                "ms": seconds * 1e3,
                "rows_per_sec": input_rows[name] / seconds,
                "morsel_tasks": executor.stats.parallel_tasks,
            }
        parallel[name] = by_workers
    result["parallel"] = parallel
    database.close()
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller database, fewer repetitions",
    )
    parser.add_argument("--orders", type=int, default=None)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_executor.json"),
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)
    orders = args.orders or (300 if args.fast else 2000)
    reps = args.reps or (3 if args.fast else 7)

    result = bench(orders, reps)
    args.json.write_text(json.dumps(result, indent=2) + "\n")

    print(f"mini TPC-D orders={orders}, reps={reps} (median)")
    for name, shape in result["shapes"].items():
        parts = ", ".join(
            f"batch {b}: {v['rows_per_sec'] / 1e3:8.1f}k rows/s"
            f" ({v['ms']:7.2f} ms)"
            for b, v in shape["by_batch_rows"].items()
        )
        print(f"  {name:<9} {parts}")
    print("parallel scaling (GIL-bound; see module docstring):")
    for name, by_workers in result["parallel"].items():
        parts = ", ".join(
            f"{w}w: {v['ms']:7.2f} ms ({v['morsel_tasks']} tasks)"
            for w, v in by_workers.items()
        )
        print(f"  {name:<9} {parts}")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
