"""The Section 8 claim: dramatic speedups on a TPC-D-like workload with a
small number of ASTs.

Each query runs twice per benchmark session: once against the base
tables, once against its rewrite over PricingAst/NationAst. Result
equivalence is asserted at setup. ``REPRO_TPCD_ORDERS`` scales the data
(default 2000 orders ≈ 7k lineitems).
"""

import os

import pytest

from repro.engine.table import tables_equal
from repro.workloads import QUERIES, build_tpcd_db, install_asts


def _orders() -> int:
    return int(os.environ.get("REPRO_TPCD_ORDERS", "2000"))


@pytest.fixture(scope="module")
def tpcd_db():
    db = build_tpcd_db(orders=_orders())
    install_asts(db)
    return db


@pytest.fixture(scope="module")
def rewritten(tpcd_db):
    plans = {}
    for name, query in QUERIES.items():
        result = tpcd_db.rewrite(query)
        assert result is not None, f"{name} found no rewrite"
        assert tables_equal(
            tpcd_db.execute(query, use_summary_tables=False),
            tpcd_db.execute_graph(result.graph),
        ), name
        plans[name] = result.graph
    return plans


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_tpcd_original(benchmark, tpcd_db, name):
    benchmark(tpcd_db.execute, QUERIES[name], use_summary_tables=False)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_tpcd_rewritten(benchmark, tpcd_db, rewritten, name):
    benchmark(tpcd_db.execute_graph, rewritten[name])
