"""Benchmark for fig14_q12_2: cube query regrouped from union cuboid (Figure 14).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig14_q12_2")


def test_fig14_q12_2_original(benchmark, experiment):
    """The paper's Q12.2 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig14_q12_2_rewritten(benchmark, experiment):
    """The paper's NewQ12.2 against AST12."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
