"""Governor overhead on the many-ASTs workload: disarmed must be free.

The query governor threads cooperative budget checks through all five
phases (parse / bind / match / compensate / execute). Its contract is
zero cost when disarmed: every instrumented site reads the thread-local
scope once per entry point and guards on ``is not None``, so a database
with no limits configured pays only the admission attribute check and a
handful of thread-local reads per query.

This benchmark pins that contract on the many-ASTs workload (64
registered summary tables, cold decision cache each run, so the matcher
dominates):

* **baseline** — the ungoverned pipeline body
  (``Database._execute_governed`` called directly), i.e. the pipeline
  with no admission gate and no governor scope. The per-site
  ``is not None`` branches remain — they are one attribute read per
  token/pairing against work units measured in microseconds, below
  what wall-clock timing can resolve;
* **disarmed** — the public ``Database.execute`` path with no limits
  set: admission check + ``open_scope() -> None`` + scope passthrough;
* **armed** — ``Database.execute`` with effectively-infinite limits
  (huge timeout / maxrows / match budget), so every tick, checkpoint,
  and per-pairing budget charge actually runs. Reported for context;
  armed cost is real, bounded work, not a regression.

The gate: ``disarmed / baseline <= --limit`` (default 1.03, the ISSUE's
<=3% pin). Emits ``BENCH_governor.json`` for CI artifact diffing.

Run standalone (``PYTHONPATH=src python
benchmarks/bench_governor_overhead.py``) or with ``--fast`` for a
seconds-long CI smoke run (fewer ASTs/runs; the threshold is still
*printed* but not enforced — shared-runner timing is too noisy to gate).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_many_asts import QUERY, build_database  # noqa: E402

HUGE_TIMEOUT_MS = 1e9
HUGE_MAX_ROWS = 10**12
HUGE_MATCH_BUDGET = 10**9


def _fresh_cache(database) -> None:
    # toggling the cache off drops every entry; back on is empty
    database.configure_fast_path(cache=False)
    database.configure_fast_path(cache=True)


def time_pipeline(database, runs: int, mode: str) -> float:
    """Median seconds per cold-cache pipeline run in one of the modes."""
    samples = []
    for _ in range(runs):
        _fresh_cache(database)
        if mode == "baseline":
            start = time.perf_counter()
            database._execute_governed(QUERY, QUERY, True, None)
            samples.append(time.perf_counter() - start)
        else:
            start = time.perf_counter()
            database.execute(QUERY)
            samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def set_limits(database, armed: bool) -> None:
    governor = database.governor
    governor.timeout_ms = HUGE_TIMEOUT_MS if armed else None
    governor.max_rows = HUGE_MAX_ROWS if armed else None
    governor.match_budget = HUGE_MATCH_BUDGET if armed else None


def run(ast_count: int, runs: int) -> dict:
    database = build_database(ast_count)
    database.configure_fast_path(index=True, cache=True)

    set_limits(database, armed=False)
    time_pipeline(database, max(2, runs // 3), "baseline")  # warm-up

    # Interleave the modes so drift (GC, frequency scaling) hits all
    # three equally instead of biasing whichever ran last.
    baseline_s, disarmed_s, armed_s = [], [], []
    rounds = 3
    per_round = max(3, runs // rounds)
    for _ in range(rounds):
        set_limits(database, armed=False)
        baseline_s.append(time_pipeline(database, per_round, "baseline"))
        disarmed_s.append(time_pipeline(database, per_round, "execute"))
        set_limits(database, armed=True)
        armed_s.append(time_pipeline(database, per_round, "execute"))
    set_limits(database, armed=False)

    baseline = statistics.median(baseline_s)
    disarmed = statistics.median(disarmed_s)
    armed = statistics.median(armed_s)
    assert database.governor.open_scope() is None  # disarmed means OFF
    database.close()
    return {
        "asts": ast_count,
        "runs_per_mode": rounds * per_round,
        "baseline_ms": baseline * 1e3,
        "disarmed_ms": disarmed * 1e3,
        "armed_ms": armed * 1e3,
        "disarmed_ratio": disarmed / baseline,
        "armed_ratio": armed / baseline,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: fewer ASTs and repetitions; the limit is "
        "printed but not enforced (shared runners are too noisy)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="total runs per mode"
    )
    parser.add_argument(
        "--limit",
        type=float,
        default=1.03,
        help="max allowed disarmed/baseline ratio (default 1.03 = +3%%)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_governor.json"),
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    asts = 8 if args.fast else 64
    runs = args.runs or (6 if args.fast else 21)

    print(
        f"governor overhead on the many-ASTs workload "
        f"({asts} ASTs, cold decision cache, {runs} runs/mode)"
    )
    point = run(asts, runs)
    print(f"  baseline (ungoverned body) {point['baseline_ms']:>9.3f} ms")
    print(
        f"  disarmed (execute, no limits) {point['disarmed_ms']:>6.3f} ms "
        f"= {point['disarmed_ratio']:.3f}x"
    )
    print(
        f"  armed (huge limits)        {point['armed_ms']:>9.3f} ms "
        f"= {point['armed_ratio']:.3f}x"
    )

    point["limit"] = args.limit
    point["fast"] = args.fast
    point["passed"] = point["disarmed_ratio"] <= args.limit
    args.json.write_text(json.dumps(point, indent=2) + "\n")
    print(f"wrote {args.json}")

    if point["passed"]:
        print(
            f"PASS: disarmed ratio {point['disarmed_ratio']:.3f} "
            f"<= {args.limit:g}"
        )
        return 0
    message = (
        f"disarmed ratio {point['disarmed_ratio']:.3f} > {args.limit:g}"
    )
    if args.fast:
        print(f"note: {message} (not enforced in --fast mode)")
        return 0
    print(f"FAIL: {message}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
