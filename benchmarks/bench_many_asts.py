"""Rewrite latency as the number of registered ASTs grows.

The paper assumes a handful of summary tables; real deployments register
dozens to hundreds. This benchmark measures the cost of the rewrite
decision (on an already-bound query graph, so parse/bind time is out of
the picture) at 1 / 8 / 64 / 256 registered ASTs, comparing:

* **legacy** — the pre-fast-path behaviour: base-table-overlap filter
  only, full bottom-up navigation per surviving candidate, no caching
  (``db.configure_fast_path(index=False, cache=False)``);
* **fast cold** — candidate index pruning on, decision cache on but
  empty (first sight of the query shape);
* **fast repeat** — the same query shape again: fingerprint lookup hits
  the decision cache and the recorded match is replayed directly.

It also cross-checks correctness: the rewritten SQL must be
bit-identical across all three modes, at every AST count.

Run standalone (``PYTHONPATH=src python benchmarks/bench_many_asts.py``)
or with ``--fast`` for a seconds-long CI smoke run.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.bench.figures import AST1, Q1
from repro.catalog.sample import credit_card_catalog
from repro.engine.database import Database
from repro.workloads.datagen import populate_credit_db, small_config

#: the query under test matches AST1 via the Figure 2 compensation
MATCHING_AST = ("AST1", AST1)
QUERY = Q1

#: decoy templates, cycled with a varying literal so each AST is distinct.
#: The first four have no Trans — the candidate index prunes them outright
#: for any Trans query. The rest overlap on Trans and survive pruning, so
#: the navigator still has to reject them the hard way.
DECOY_TEMPLATES = [
    "select lid, city, state, country from Loc where lid > {k}",
    "select pgid, pgname from PGroup where pgid > {k}",
    "select aid, acid, status from Acct where aid > {k}",
    "select cid, cname, cstate from Cust where cid > {k}",
    "select fpgid, month(date) as month, count(*) as cnt, sum(qty) as q "
    "from Trans where qty > {q} group by fpgid, month(date)",
    "select tid, qty, price from Trans where qty > {q} and price > {k}",
    "select tid, faid, city from Trans, Loc where flid = lid and qty > {q}",
]


def build_database(ast_count: int) -> Database:
    """A small credit-card database with AST1 plus ``ast_count - 1`` decoys."""
    database = Database(credit_card_catalog())
    populate_credit_db(database, small_config())
    name, sql = MATCHING_AST
    database.create_summary_table(name, sql)
    for index in range(ast_count - 1):
        template = DECOY_TEMPLATES[index % len(DECOY_TEMPLATES)]
        decoy_sql = template.format(k=index, q=index % 5)
        database.create_summary_table(f"DECOY_{index}", decoy_sql)
    return database


def time_rewrites(database: Database, runs: int, clear_cache: bool) -> tuple[float, list[str]]:
    """Median seconds per rewrite decision over ``runs`` fresh binds.

    ``clear_cache=True`` empties the decision cache before every run, so
    every measurement is a cold (cache-miss) rewrite.
    """
    samples = []
    sqls = []
    for _ in range(runs):
        if clear_cache:
            # toggling the cache off drops every entry; back on is empty
            database.configure_fast_path(cache=False)
            database.configure_fast_path(cache=True)
        graph = database.bind(QUERY)
        start = time.perf_counter()
        result = database.rewrite(graph)
        samples.append(time.perf_counter() - start)
        if result is None:
            raise SystemExit("benchmark error: query no longer matches AST1")
        sqls.append(result.sql)
    return statistics.median(samples), sqls


def run_point(ast_count: int, runs: int) -> dict:
    database = build_database(ast_count)

    database.configure_fast_path(index=False, cache=False)
    legacy, legacy_sqls = time_rewrites(database, runs, clear_cache=False)

    database.configure_fast_path(index=True, cache=True)
    database.reset_rewrite_stats()
    cold, cold_sqls = time_rewrites(database, runs, clear_cache=True)
    cold_stats = database.rewrite_stats()

    database.reset_rewrite_stats()
    # one untimed warm-up populates the cache; every timed run then hits it
    database.rewrite(database.bind(QUERY))
    repeat, repeat_sqls = time_rewrites(database, runs, clear_cache=False)
    repeat_stats = database.rewrite_stats()

    sqls = set(legacy_sqls + cold_sqls + repeat_sqls)
    if len(sqls) != 1:
        raise SystemExit(
            "CORRECTNESS FAILURE: rewritten SQL differs between modes "
            f"at {ast_count} ASTs:\n" + "\n---\n".join(sorted(sqls))
        )
    if repeat_stats["cache_hits"] < runs:
        raise SystemExit(
            "benchmark error: repeat runs were not served from the "
            f"decision cache (cache_hits={repeat_stats['cache_hits']})"
        )
    return {
        "asts": ast_count,
        "legacy": legacy,
        "cold": cold,
        "repeat": repeat,
        "pruned": cold_stats["candidates_pruned"],
        "considered": cold_stats["candidates_considered"],
        "cache_hits": repeat_stats["cache_hits"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: fewer AST counts and repetitions, no "
        "speedup thresholds (timing is too noisy on shared runners)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="repetitions per measurement"
    )
    args = parser.parse_args(argv)

    counts = [1, 8] if args.fast else [1, 8, 64, 256]
    runs = args.runs or (3 if args.fast else 15)

    print(f"rewrite-decision latency for Figure 2's Q1 ({runs} runs/point)")
    header = (
        f"{'ASTs':>5} {'legacy ms':>10} {'cold ms':>9} {'repeat ms':>10} "
        f"{'cold x':>7} {'repeat x':>9} {'pruned':>7}"
    )
    print(header)
    print("-" * len(header))

    failures = []
    for count in counts:
        point = run_point(count, runs)
        cold_ratio = point["cold"] / point["legacy"]
        repeat_speedup = point["legacy"] / point["repeat"]
        print(
            f"{point['asts']:>5} {point['legacy'] * 1e3:>10.3f} "
            f"{point['cold'] * 1e3:>9.3f} {point['repeat'] * 1e3:>10.3f} "
            f"{cold_ratio:>7.2f} {repeat_speedup:>8.1f}x "
            f"{point['pruned']:>4}/{point['considered']}"
        )
        if not args.fast and count >= 64:
            if repeat_speedup < 5.0:
                failures.append(
                    f"{count} ASTs: repeat speedup {repeat_speedup:.1f}x < 5x"
                )
            if cold_ratio > 1.2:
                failures.append(
                    f"{count} ASTs: cold ratio {cold_ratio:.2f} > 1.2"
                )

    print()
    print("rewritten SQL identical across legacy / cold / repeat at every point")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("PASS: repeat >= 5x at 64+ ASTs, cold <= 1.2x legacy" if not args.fast
          else "smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
