"""Benchmark for fig08_q7: 1:N rejoin without regrouping (Figure 8).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig08_q7")


def test_fig08_q7_original(benchmark, experiment):
    """The paper's Q7 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig08_q7_rewritten(benchmark, experiment):
    """The paper's NewQ7 against AST7."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
