"""Benchmark for fig13_q11_2: cuboid slicing + pull-up + regroup (Figure 13).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig13_q11_2")


def test_fig13_q11_2_original(benchmark, experiment):
    """The paper's Q11.2 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig13_q11_2_rewritten(benchmark, experiment):
    """The paper's NewQ11.2 against AST11."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
