"""Ablation benchmarks for two design choices DESIGN.md calls out.

1. **Smallest-cuboid selection** (Section 5.1: "to minimize the amount of
   regrouping in the compensation, the cuboid with the smallest number of
   grouping columns is selected"). The ablation picks the *largest*
   usable cuboid instead; the compensation then scans and regroups more
   summary rows.
2. **Column-equivalence classes** (Section 4.1.1's example: ``aid`` is
   derived from ``faid`` via the ``faid = aid`` join predicate). The
   ablation disables them; Figure 5's match must disappear, so the query
   falls back to the base tables entirely.
"""

import pytest

from repro.bench.figures import AST2, AST11, Q2, Q11_1, make_database
from repro.bench.harness import bench_scale
from repro.matching.navigator import match_graphs, root_matches
from repro.rewrite.rewriter import apply_match
from repro.workloads import bench_config


@pytest.fixture(scope="module")
def cube_db():
    db = make_database(bench_config(bench_scale()))
    db.create_summary_table("AST11", AST11)
    return db


def _plan_with_options(db, query, options):
    graph = db.bind(query)
    summary = db.summary_tables["ast11"]
    ctx = match_graphs(graph, summary.graph, options=options)
    candidates = root_matches(graph, summary.graph, ctx)
    assert candidates, "expected a match"
    apply_match(graph, candidates[0], summary)
    graph.validate()
    return graph


def test_smallest_cuboid(benchmark, cube_db):
    plan = _plan_with_options(cube_db, Q11_1, {"prefer_small_cuboid": True})
    benchmark(cube_db.execute_graph, plan)


def test_largest_cuboid_ablation(benchmark, cube_db):
    plan = _plan_with_options(cube_db, Q11_1, {"prefer_small_cuboid": False})
    result = benchmark(cube_db.execute_graph, plan)
    # Same answer, more work: the point of the Section 5.1 rule.
    from repro.engine.table import tables_equal

    baseline = cube_db.execute_graph(
        _plan_with_options(cube_db, Q11_1, {"prefer_small_cuboid": True})
    )
    assert tables_equal(result, baseline)


@pytest.fixture(scope="module")
def equivalence_db():
    db = make_database(bench_config(bench_scale()))
    db.create_summary_table("AST2", AST2)
    return db


def test_equivalence_enables_fig05(equivalence_db):
    """Not a timing benchmark: the ablation changes *matchability*."""
    graph = equivalence_db.bind(Q2)
    summary = equivalence_db.summary_tables["ast2"]
    with_classes = root_matches(
        graph,
        summary.graph,
        match_graphs(graph, summary.graph, {"column_equivalence": True}),
    )
    without = root_matches(
        graph,
        summary.graph,
        match_graphs(graph, summary.graph, {"column_equivalence": False}),
    )
    assert with_classes and not without


def test_fig05_with_equivalence(benchmark, equivalence_db):
    plan = equivalence_db.rewrite_graph(equivalence_db.bind(Q2))
    assert plan is not None
    benchmark(equivalence_db.execute_graph, plan)


def test_fig05_without_equivalence_falls_back(benchmark, equivalence_db):
    # No match -> the query must run against the base tables.
    benchmark(equivalence_db.execute, Q2, use_summary_tables=False)
