"""Benchmark for fig05_q2: SPJ with rejoin, extra child and derived amt (Figure 5).

Regenerates the paper artifact: runs the original query and the rewritten
(summary-table) plan on identical data and reports both timings.
Result equivalence is asserted during setup. Scale via REPRO_SCALE.
"""

import pytest

from repro.bench.figures import make_bench_experiment


@pytest.fixture(scope="module")
def experiment():
    return make_bench_experiment("fig05_q2")


def test_fig05_q2_original(benchmark, experiment):
    """The paper's Q2 against the base tables."""
    result = benchmark(experiment.run_original)
    assert len(result) == len(experiment.run_rewritten())


def test_fig05_q2_rewritten(benchmark, experiment):
    """The paper's NewQ2 against AST2."""
    result = benchmark(experiment.run_rewritten)
    assert len(result) == len(experiment.run_original())
