"""Speedup-vs-scale sweep for the headline experiment.

The paper's speedups come from the AST/fact size ratio, so the win should
grow (roughly linearly) with the fact-table size while the rewritten plan
stays nearly flat. This bench pins that shape down by running Figure 2's
Q1 at three data scales.

Run directly for a compact series:  python benchmarks/bench_scaling.py
"""

import pytest

from repro.bench.figures import make_experiment
from repro.workloads import bench_config

SCALES = [0.25, 0.5, 1.0]


@pytest.fixture(scope="module", params=SCALES, ids=lambda s: f"scale{s}")
def experiment(request):
    return make_experiment("fig02_q1", bench_config(request.param))


def test_q1_original_scaled(benchmark, experiment):
    benchmark(experiment.run_original)


def test_q1_rewritten_scaled(benchmark, experiment):
    benchmark(experiment.run_rewritten)


def main() -> None:
    print(f"{'scale':>6} {'Trans rows':>11} {'AST rows':>9} "
          f"{'original':>10} {'rewritten':>10} {'speedup':>8}")
    for scale in SCALES:
        exp = make_experiment("fig02_q1", bench_config(scale))
        run = exp.measure(repeat=3)
        print(
            f"{scale:>6} {run.base_rows:>11} {run.summary_rows:>9} "
            f"{run.original_seconds * 1e3:>8.1f}ms "
            f"{run.rewritten_seconds * 1e3:>8.1f}ms "
            f"{run.speedup:>7.1f}x"
        )


if __name__ == "__main__":
    main()
