"""Match tracer — a per-query event tree over the navigator's decisions.

The paper's navigator (§4) pairs every query box with every AST box and
tests the sufficient conditions of each match pattern (§4.1.1 select/
select, §4.1.2 groupby/groupby, §4.2.x compensated and recursive forms).
When a summary table silently fails to apply, the only question that
matters is *which condition of which pattern rejected it* — this module
records exactly that.

A :class:`MatchTrace` collects, per candidate summary table:

* one :class:`PairAttempt` per (query box, AST box) pairing the
  navigator tried, carrying the pattern section that matched or the
  :class:`Reject` events (named reason + paper section + detail)
  accumulated while the match functions ran;
* a per-summary **verdict**: the matched pattern section, or the named
  reject reason closest to the root pairing;
* fast-path verdicts that never reach the navigator — ``pruned``
  (signature index), ``refresh-age`` (staleness gate), ``quarantined``
  (fault sandbox), and ``cache-hit`` (decision cache replay) — so the
  verdict table is never empty on warm queries;
* phase timings (parse/bind/match/compensate/execute) in milliseconds.

Zero cost when disabled: the module-level :data:`ACTIVE` slot is the
only state, and every instrumentation site guards on it first —

    t = trace.ACTIVE
    if t is not None:
        t.reject("regroupability", "4.2.4", ...)

so the disabled path is one global load and an ``is not None`` test, no
allocation, mirroring :mod:`repro.testing.faults`. Detail strings are
built only inside the guard. Tracing is single-stream by design (one
trace active per process, like ``\\trace on`` in a shell); concurrent
background refresh work never runs the matcher, so this is safe for the
interactive diagnosis it exists for.
"""

from __future__ import annotations

import itertools
import time
from collections import deque

#: Catalog of named reject reasons -> (paper section, description).
#: ``docs/OBSERVABILITY.md`` renders this table; tests assert membership.
REASONS = {
    "predicate-subsumption": (
        "4.1.1 cond 2-3",
        "subsumer predicates not provably implied, or an unmatched "
        "subsumee predicate could not be re-applied as compensation",
    ),
    "qcl-derivation": (
        "4.1.1 cond 1/4, 6",
        "an output or grouping column of the query could not be derived "
        "from the candidate's output columns (QCL translation failed)",
    ),
    "regroupability": (
        "4.1.2/4.2.x",
        "grouping structures incompatible: DISTINCT mismatch, cuboid not "
        "sliceable, cross-child grouping, or rejoin column collision",
    ),
    "aggregate-rederivation": (
        "4.1.2 rules a-g",
        "a query aggregate could not be re-derived from the candidate's "
        "aggregates (none of re-derivation rules (a)-(g) applied)",
    ),
    "child-match": (
        "4 common cond 1",
        "no usable match between the box's children, so the bottom-up "
        "navigator had nothing to build on",
    ),
    "lossless-extras": (
        "4.2.3",
        "extra quantifiers in the subsumer are not provably lossless "
        "(no one-tuple-guarantee join back to the matched core)",
    ),
    "base-table": (
        "3",
        "leaf base tables differ, so the pairing is trivially impossible",
    ),
    "box-kind": (
        "4",
        "no match pattern covers this combination of box kinds",
    ),
    "refresh-age": (
        "7",
        "summary's pending deltas exceed the session REFRESH AGE "
        "tolerance (staleness gate)",
    ),
    "quarantined": (
        "7",
        "summary quarantined after repeated refresh failures",
    ),
    "pruned": (
        "4",
        "signature index pruned the candidate before matching (required "
        "base tables / grouping shape cannot cover the query)",
    ),
    "cache-hit": (
        "4",
        "decision cache replayed a prior verdict for this query shape; "
        "the navigator did not run",
    ),
    "budget-exhausted": (
        "governor",
        "the match phase ran out of budget (SET QUERY TIMEOUT expired or "
        "the pairing budget was spent); the query degraded to base tables",
    ),
    "circuit-open": (
        "governor",
        "the circuit breaker skipped matching for this query shape after "
        "repeated consecutive match timeouts (cool-down in effect)",
    ),
}

_TRACE_IDS = itertools.count(1)


class Reject:
    """One named rejection raised while a match function ran."""

    __slots__ = ("reason", "section", "detail")

    def __init__(self, reason: str, section: str | None = None,
                 detail: str | None = None):
        self.reason = reason
        self.section = section or REASONS.get(reason, ("?",))[0]
        self.detail = detail

    def describe(self) -> str:
        text = self.reason
        if self.detail:
            text += f": {self.detail}"
        return text

    def as_dict(self) -> dict:
        return {"reason": self.reason, "section": self.section,
                "detail": self.detail}


class PairAttempt:
    """One navigator pairing of a query box against an AST box."""

    __slots__ = ("subsumee", "subsumer", "subsumer_id", "pattern",
                 "compensation", "rejects")

    def __init__(self, subsumee: str, subsumer: str, subsumer_id: int,
                 pattern: str | None, compensation: str | None,
                 rejects: list[Reject]):
        self.subsumee = subsumee
        self.subsumer = subsumer
        self.subsumer_id = subsumer_id
        self.pattern = pattern          # e.g. "4.1.2"; None on reject
        self.compensation = compensation
        self.rejects = rejects

    @property
    def matched(self) -> bool:
        return self.pattern is not None

    def describe(self) -> str:
        left = f"{self.subsumee} vs {self.subsumer}"
        if self.matched:
            text = f"{left}: matched {self.pattern}"
            if self.compensation:
                text += f" ({self.compensation})"
            return text
        if self.rejects:
            return f"{left}: rejected [{self.rejects[-1].describe()}]"
        return f"{left}: no match"

    def as_dict(self) -> dict:
        return {
            "subsumee": self.subsumee,
            "subsumer": self.subsumer,
            "pattern": self.pattern,
            "compensation": self.compensation,
            "rejects": [r.as_dict() for r in self.rejects],
        }


class SummaryAttempt:
    """All pairing attempts against one candidate summary table."""

    __slots__ = ("name", "root_id", "pairs", "pattern", "reason",
                 "detail", "applied")

    def __init__(self, name: str, root_id: int):
        self.name = name
        self.root_id = root_id
        self.pairs: list[PairAttempt] = []
        self.pattern: str | None = None
        self.reason: str | None = None
        self.detail: str | None = None
        self.applied = False

    @property
    def verdict(self) -> str:
        if self.applied:
            return f"rewritten via {self.pattern}"
        if self.pattern is not None:
            return f"matched {self.pattern} (not chosen)"
        return self.reason or "no match"

    def as_dict(self) -> dict:
        return {
            "summary": self.name,
            "pattern": self.pattern,
            "reason": self.reason,
            "detail": self.detail,
            "applied": self.applied,
            "pairs": [p.as_dict() for p in self.pairs],
        }


class MatchTrace:
    """The event tree for one traced query."""

    #: instances ever created — the overhead test asserts this stays
    #: flat while tracing is disabled (zero-allocation guarantee)
    created = 0

    def __init__(self, sql: str | None = None):
        MatchTrace.created += 1
        self.trace_id = next(_TRACE_IDS)
        self.sql = sql
        self.summaries: list[SummaryAttempt] = []
        self.phases: dict[str, float] = {}
        #: rejects raised since the last pair() — consumed by pair()
        self._pending: list[Reject] = []
        self._current: SummaryAttempt | None = None

    # -- recording (called from instrumented code, always guarded) -----
    def reject(self, reason: str, section: str | None = None,
               detail: str | None = None) -> None:
        self._pending.append(Reject(reason, section, detail))

    def pair(self, subsumee, subsumer, result) -> None:
        """Record one navigator pairing; consumes the rejects raised
        while the match functions ran on this pair."""
        rejects, self._pending = self._pending, []
        current = self._current
        if current is None:
            return
        pattern = compensation = None
        if result is not None:
            pattern = result.pattern
            compensation = None if result.exact else "compensated"
        current.pairs.append(
            PairAttempt(
                describe_box(subsumee), describe_box(subsumer),
                id(subsumer), pattern, compensation, rejects,
            )
        )

    def begin_summary(self, name: str, root_box) -> None:
        self._pending = []
        self._current = SummaryAttempt(name, id(root_box))
        self.summaries.append(self._current)

    def end_summary(self, match) -> None:
        current, self._current = self._current, None
        self._pending = []
        if current is None:
            return
        if match is not None:
            current.pattern = match.pattern
            return
        # No root match: surface the most informative reject. A failure
        # deep in the tree cascades upward as generic child-match /
        # box-kind rejects, so prefer the last *semantic* reason (a
        # named pattern condition) over the structural fallout.
        semantic = [
            reject
            for pair in current.pairs
            for reject in pair.rejects
            if reject.reason not in ("box-kind", "child-match")
        ]
        if semantic:
            last = semantic[-1]
            current.reason = last.reason
            current.detail = last.detail
            return
        root_pairs = [p for p in current.pairs
                      if p.subsumer_id == current.root_id and p.rejects]
        candidates = root_pairs or [p for p in current.pairs if p.rejects]
        if candidates:
            last = candidates[-1].rejects[-1]
            current.reason = last.reason
            current.detail = last.detail
        elif current.pairs:
            current.reason = "child-match"
        else:
            current.reason = "box-kind"

    def verdict(self, name: str, reason: str, detail: str | None = None,
                applied: bool = False, pattern: str | None = None) -> None:
        """Record a fast-path verdict (pruned / refresh-age /
        quarantined / cache-hit) that bypassed the navigator."""
        attempt = SummaryAttempt(name, 0)
        attempt.reason = reason
        attempt.detail = detail
        attempt.pattern = pattern
        attempt.applied = applied
        self.summaries.append(attempt)

    def mark_applied(self, name: str) -> None:
        for attempt in self.summaries:
            if attempt.name == name and attempt.pattern is not None:
                attempt.applied = True
                return

    # -- timing --------------------------------------------------------
    @staticmethod
    def clock() -> float:
        return time.perf_counter()

    def add_phase(self, name: str, started: float) -> float:
        """Accumulate elapsed ms since ``started`` into phase ``name``."""
        elapsed = (time.perf_counter() - started) * 1e3
        self.phases[name] = self.phases.get(name, 0.0) + elapsed
        return elapsed

    def set_phase(self, name: str, ms: float) -> None:
        self.phases[name] = ms

    # -- presentation --------------------------------------------------
    def verdict_rows(self) -> list[tuple[str, str, str]]:
        """(summary, verdict, detail) rows for the EXPLAIN ANALYZE table."""
        rows = []
        for attempt in self.summaries:
            rows.append((attempt.name, attempt.verdict, attempt.detail or ""))
        return rows

    def render(self, verbose: bool = False) -> str:
        lines = [f"trace #{self.trace_id}"]
        if self.sql:
            lines.append(f"  query: {self.sql}")
        if self.phases:
            timing = "  ".join(
                f"{name}={ms:.3f}ms" for name, ms in self.phases.items()
            )
            lines.append(f"  phases: {timing}")
        for attempt in self.summaries:
            lines.append(f"  [{attempt.name}] {attempt.verdict}")
            if attempt.detail:
                lines.append(f"      detail: {attempt.detail}")
            pairs = attempt.pairs if verbose else [
                p for p in attempt.pairs
                if p.matched or p.subsumer_id == attempt.root_id
            ]
            for pair in pairs:
                lines.append(f"    - {pair.describe()}")
                if verbose:
                    for rej in pair.rejects[:-1]:
                        lines.append(f"        tried: {rej.describe()}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "sql": self.sql,
            "phases": dict(self.phases),
            "summaries": [s.as_dict() for s in self.summaries],
        }


def describe_box(box) -> str:
    kind = type(box).__name__.removesuffix("Box")
    name = getattr(box, "name", None)
    return f"{kind}({name})" if name else kind


class TraceBuffer:
    """Bounded ring of recently finished traces (``\\trace last``)."""

    def __init__(self, capacity: int = 32):
        self._traces: deque[MatchTrace] = deque(maxlen=capacity)

    def append(self, trace: MatchTrace) -> None:
        self._traces.append(trace)

    @property
    def last(self) -> MatchTrace | None:
        return self._traces[-1] if self._traces else None

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self):
        return iter(self._traces)

    def clear(self) -> None:
        self._traces.clear()


# ---------------------------------------------------------------------
# Module-level activation — THE zero-cost-when-disabled switch.
# ---------------------------------------------------------------------

#: the currently recording trace, or None (the common case). Hot paths
#: read this once into a local and test ``is not None``.
ACTIVE: MatchTrace | None = None


def start(sql: str | None = None) -> MatchTrace:
    """Begin recording a new trace (replacing any active one)."""
    global ACTIVE
    ACTIVE = MatchTrace(sql)
    return ACTIVE


def finish() -> MatchTrace | None:
    """Stop recording and return the finished trace."""
    global ACTIVE
    trace, ACTIVE = ACTIVE, None
    return trace


def active() -> MatchTrace | None:
    return ACTIVE
