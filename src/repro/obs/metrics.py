"""Thread-safe metrics registry — counters, gauges, histograms, timers.

One :class:`MetricsRegistry` per :class:`repro.engine.database.Database`
absorbs every counter surface the system grew piecemeal — the matching
fast path (:class:`repro.rewrite.cache.RewriteStats` is now a thin view
over registry counters), the refresh scheduler, the rewrite sandbox —
plus the phase timers (parse/bind/match/compensate/execute) recorded
around query execution. Everything is exposed two ways:

* :meth:`MetricsRegistry.to_json` — a structured dict/JSON dump for
  tooling and the benchmark snapshot (``BENCH_rewrite.json``);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (``# TYPE`` headers, ``_count``/``_sum``/``_bucket`` series for
  histograms), so a scraper can be pointed at a dump file or endpoint.

All mutation is lock-protected per metric; creating a metric takes the
registry lock once and returns the same object on every subsequent call
with the same name, so hot paths can cache the metric object and skip
the name lookup entirely.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator

#: default histogram bucket upper bounds, in the unit the caller observes
#: (phase timers observe milliseconds)
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)


class Counter:
    """A monotonic (but resettable) integer counter."""

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: int) -> None:
        """Direct assignment — kept for stats-reset and the
        :class:`repro.rewrite.cache.RewriteStats` compatibility view."""
        with self._lock:
            self._value = value

    def reset(self) -> None:
        self.set(0)

    def swap(self) -> dict:
        """Atomically capture-and-zero: returns :meth:`describe` of the
        pre-reset state. Concurrent ``inc`` calls land entirely before
        or entirely after the swap — never half in each epoch."""
        with self._lock:
            snapshot = {"type": self.kind, "value": self._value}
            self._value = 0
        return snapshot

    def describe(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """A value that can go up and down (queue depths, pending deltas)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        self.set(0.0)

    def swap(self) -> dict:
        """Atomically capture-and-zero (see :meth:`Counter.swap`)."""
        with self._lock:
            snapshot = {"type": self.kind, "value": self._value}
            self._value = 0.0
        return snapshot

    def describe(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """A fixed-bucket histogram tracking count/sum/min/max.

    Buckets are cumulative upper bounds (Prometheus-style, with an
    implicit ``+Inf``). The default boundaries suit millisecond timings.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float | None:
        with self._lock:
            return self._sum / self._count if self._count else None

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def swap(self) -> dict:
        """Atomically capture-and-zero (see :meth:`Counter.swap`)."""
        with self._lock:
            snapshot = self._describe_locked()
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
        return snapshot

    def _describe_locked(self) -> dict:
        return {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self._count if self._count else None,
            "p50": self._quantile_locked(0.50),
            "p95": self._quantile_locked(0.95),
            "p99": self._quantile_locked(0.99),
        }

    def describe(self) -> dict:
        # One lock acquisition for the whole snapshot: reading the
        # fields bare would let a concurrent observe() land between
        # count and sum and hand callers a torn pair.
        with self._lock:
            return self._describe_locked()

    def _quantile_locked(self, q: float) -> float | None:
        if self._count == 0:
            return None
        rank = q * self._count
        running = 0
        previous_bound = 0.0
        for bound, count in zip(self.buckets, self._counts):
            if count:
                if running + count >= rank:
                    # Linear interpolation within the bucket, clamped to
                    # the observed range so a single observation reports
                    # itself rather than a bucket boundary.
                    fraction = (rank - running) / count
                    value = previous_bound + fraction * (bound - previous_bound)
                    return min(max(value, self._min), self._max)
                running += count
            previous_bound = bound
        # Landed in the +Inf bucket: the best bounded answer is the max.
        return self._max

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile estimate for ``0 < q <= 1``
        (None while empty). Resolution is bucket-width; exact for the
        min/max endpoints."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        with self._lock:
            return self._quantile_locked(q)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        out = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def expose(self) -> tuple[list[tuple[float, int]], float, int]:
        """One consistent ``(cumulative buckets, sum, count)`` snapshot
        for the Prometheus exporter — taken under a single lock so the
        ``+Inf`` bucket always equals ``_count``."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        out = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out, total_sum, total_count


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: the
    first call registers the metric, later calls return the same object
    (asking for an existing name as a different kind raises, which
    catches naming collisions early).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- registration --------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # -- access --------------------------------------------------------
    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> dict[str, dict]:
        """Zero every registered metric via snapshot-and-swap, returning
        ``{name: pre-reset describe()}``.

        Each metric is captured and zeroed atomically under its own
        lock, so a writer racing the reset (say, the refresh worker
        mid-apply using ``Counter.inc``) either lands in the returned
        snapshot or in the fresh epoch — an increment is never torn
        across the two the way a naive read-then-clear (or a caller's
        ``get``/``set`` pair straddling the reset) could lose it.
        """
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.swap() for name, metric in metrics}

    # -- timing --------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the block's wall time, in milliseconds, into the
        histogram ``name``."""
        histogram = self.histogram(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe((time.perf_counter() - started) * 1e3)

    def observe_ms(self, name: str, started: float) -> float:
        """Record elapsed milliseconds since ``started`` (a
        ``perf_counter`` stamp) into histogram ``name``; returns the
        elapsed milliseconds."""
        elapsed = (time.perf_counter() - started) * 1e3
        self.histogram(name).observe(elapsed)
        return elapsed

    # -- exposition ----------------------------------------------------
    def to_dict(self) -> dict[str, dict]:
        """``{name: {type, value | count/sum/min/max/mean}}``, sorted."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.describe() for name, metric in metrics}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                buckets, total_sum, total_count = metric.expose()
                for bound, cumulative in buckets:
                    label = "+Inf" if bound == float("inf") else _format(bound)
                    lines.append(f'{name}_bucket{{le="{label}"}} {cumulative}')
                lines.append(f"{name}_sum {_format(total_sum)}")
                lines.append(f"{name}_count {total_count}")
            else:
                lines.append(f"{name} {_format(metric.value)}")
        return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus-friendly)."""
    if isinstance(value, bool):
        return str(int(value))
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    """Escape a HELP string per the exposition format (0.0.4)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")
