"""Span-based request tracing across client, server, journal, and standby.

One client request crosses the retry loop, the server's session thread,
governor admission, rewrite, columnar execution, the WAL group commit,
and (for mutations) the standby's apply thread. The match tracer
(:mod:`repro.obs.trace`) explains *one* phase of that journey in depth;
this module strings every hop of it onto a single ``trace_id`` with
per-hop timing:

* A **trace** is born in :class:`~repro.server.client.ReproClient` (or
  wherever the caller mints one) subject to **head sampling**: the coin
  is flipped once, at the root, and every downstream hop inherits the
  decision. Sampled requests carry ``{"trace": {"trace_id", "parent"}}``
  on the wire; unsampled requests carry nothing and cost nothing.
* A **span** is one timed hop — ``client.attempt``, ``server.request``,
  ``admission.wait``, ``db.rewrite``, ``wal.fsync``, ``standby.apply``
  — with a ``span_id``, its parent's id, wall-clock start, duration in
  milliseconds, and free-form attributes (the rewrite span links the
  active :class:`~repro.obs.trace.MatchTrace` by id).
* Finished spans land in a bounded thread-safe ring
  (:class:`SpanBuffer`), dumpable as plain JSON or as Chrome
  ``trace_event`` objects (load the dump in ``chrome://tracing`` /
  Perfetto).

**Zero cost when off.** Mirroring :mod:`repro.obs.trace` and
:mod:`repro.testing.faults`, the only global state is the module-level
:data:`TRACER` slot. Every instrumentation site guards on it first::

    t = spans.TRACER
    if t is not None: ...

and the convenience helpers (:func:`child`, :func:`record`,
:func:`active`) return the shared :data:`NOOP` singleton / ``None``
after that same one-global-load test, so the disabled path allocates
nothing. ``SET TRACE SAMPLE <rate>|OFF`` (see
:func:`set_sample_rate`) is the runtime switch.

Span context propagates through a per-thread slot: entering a span
(``with span:``) makes it the parent for :func:`child`/:func:`record`
on that thread, and :func:`attach` re-enters an existing span on a
different thread (the server creates the request span on the event
loop and attaches it on the worker thread that executes the request).
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from random import Random

_local = threading.local()


class _NoopSpan:
    """The disabled path: one shared, allocation-free stand-in that
    accepts every :class:`Span` method and is falsy (``if span:`` tells
    real from no-op)."""

    __slots__ = ()
    trace_id = None
    span_id = None

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key, value) -> "_NoopSpan":  # noqa: ARG002
        return self

    def child(self, name, **attrs) -> "_NoopSpan":  # noqa: ARG002
        return self

    def record(self, name, started_pc, **attrs) -> None:  # noqa: ARG002
        return None

    def finish(self, **attrs) -> None:  # noqa: ARG002
        return None

    def context(self) -> None:
        return None


NOOP = _NoopSpan()


def _span_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed hop of a trace. Truthful (``bool(span)`` is True),
    context-managed (entering publishes it as this thread's parent,
    exiting finishes it), and cheap: finishing renders the span to a
    plain dict appended to the tracer's ring."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "service",
                 "start_ts", "_start_pc", "attrs", "_buffer", "_prev",
                 "_done")

    def __init__(self, buffer: "SpanBuffer", name: str, trace_id: str,
                 parent_id: str | None, service: str, attrs: dict):
        self.trace_id = trace_id
        self.span_id = _span_id()
        self.parent_id = parent_id
        self.name = name
        self.service = service
        self.start_ts = time.time()
        self._start_pc = time.perf_counter()
        self.attrs = attrs
        self._buffer = buffer
        self._prev = None
        self._done = False

    # ------------------------------------------------------------------
    def set(self, key: str, value) -> "Span":
        self.attrs[key] = value
        return self

    def child(self, name: str, **attrs) -> "Span":
        """A new live span under this one (caller finishes it)."""
        return Span(self._buffer, name, self.trace_id, self.span_id,
                    self.service, attrs)

    def record(self, name: str, started_pc: float, **attrs) -> None:
        """A retroactively-completed child covering ``[started_pc,
        now]`` (``started_pc`` is a ``perf_counter`` stamp) — the shape
        for instrumenting an existing timed block without restructuring
        it."""
        duration_ms = (time.perf_counter() - started_pc) * 1e3
        self._buffer.append({
            "trace_id": self.trace_id,
            "span_id": _span_id(),
            "parent_id": self.span_id,
            "name": name,
            "service": self.service,
            "start_ts": time.time() - duration_ms / 1e3,
            "duration_ms": duration_ms,
            "attrs": attrs,
        })

    def finish(self, **attrs) -> None:
        """Close the span and append it to the ring (idempotent)."""
        if self._done:
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        self._buffer.append({
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "service": self.service,
            "start_ts": self.start_ts,
            "duration_ms": (time.perf_counter() - self._start_pc) * 1e3,
            "attrs": self.attrs,
        })

    def context(self) -> dict:
        """The wire representation a downstream hop continues from."""
        return {"trace_id": self.trace_id, "parent": self.span_id}

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._prev = getattr(_local, "span", None)
        _local.span = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.span = self._prev
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = f"{type(exc).__name__}: {exc}"
        self.finish()
        return False


class _Attach:
    """Re-enter an existing span on the current thread WITHOUT finishing
    it on exit (the creator owns the span's lifetime)."""

    __slots__ = ("_span", "_prev")

    def __init__(self, span: Span):
        self._span = span
        self._prev = None

    def __enter__(self) -> Span:
        self._prev = getattr(_local, "span", None)
        _local.span = self._span
        return self._span

    def __exit__(self, *exc_info) -> bool:
        _local.span = self._prev
        return False


class SpanBuffer:
    """A bounded, thread-safe ring of finished spans (plain dicts)."""

    def __init__(self, capacity: int = 4096):
        self._lock = threading.Lock()
        self._spans: deque[dict] = deque(maxlen=capacity)
        self.capacity = capacity
        #: spans evicted by the ring bound (appended past capacity)
        self.dropped = 0

    def append(self, entry: dict) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def snapshot(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def for_trace(self, trace_id: str) -> list[dict]:
        return [s for s in self.snapshot() if s["trace_id"] == trace_id]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def to_chrome(self) -> list[dict]:
        """Chrome ``trace_event`` complete (``"ph": "X"``) events —
        ``json.dump`` the list and load it in Perfetto/chrome://tracing.
        Spans of one trace share a ``pid`` slot so they nest visually."""
        events = []
        pids: dict[str, int] = {}
        for span in self.snapshot():
            pid = pids.setdefault(span["trace_id"], len(pids) + 1)
            events.append({
                "name": span["name"],
                "cat": span["service"],
                "ph": "X",
                "ts": span["start_ts"] * 1e6,
                "dur": span["duration_ms"] * 1e3,
                "pid": pid,
                "tid": 1,
                "args": {
                    "trace_id": span["trace_id"],
                    "span_id": span["span_id"],
                    "parent_id": span["parent_id"],
                    **span["attrs"],
                },
            })
        return events


class Tracer:
    """Mints sampled trace roots and continues inbound trace contexts.

    ``sample_rate`` is the head-sampling probability for *new* traces
    (1.0 = everything, the default); continuations always record — the
    upstream sampler already decided, and unsampled requests ship no
    context to continue. ``seed`` pins the sampling stream for
    deterministic tests."""

    def __init__(self, sample_rate: float = 1.0, capacity: int = 4096,
                 service: str = "repro", seed: int | None = None):
        self.sample_rate = float(sample_rate)
        self.service = service
        self.buffer = SpanBuffer(capacity)
        self._rng = Random(seed)
        self._rng_lock = threading.Lock()
        #: sampled-in trace roots minted
        self.started = 0
        #: head-sampled-away trace roots (no spans recorded)
        self.skipped = 0

    # ------------------------------------------------------------------
    def sample(self) -> bool:
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        with self._rng_lock:
            return self._rng.random() < rate

    def start_trace(self, name: str, **attrs):
        """A fresh trace root, subject to head sampling (:data:`NOOP`
        when the coin says no — the whole request then costs nothing)."""
        if not self.sample():
            self.skipped += 1
            return NOOP
        self.started += 1
        return Span(self.buffer, name, uuid.uuid4().hex, None,
                    self.service, attrs)

    def continue_trace(self, name: str, context, **attrs):
        """Continue a trace from a wire ``{"trace_id", "parent"}``
        context (:data:`NOOP` when the request carried none)."""
        if not isinstance(context, dict):
            return NOOP
        trace_id = context.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return NOOP
        parent = context.get("parent")
        if not isinstance(parent, str):
            parent = None
        return Span(self.buffer, name, trace_id, parent, self.service,
                    attrs)

    def root_for(self, name: str, trace_id: str | None = None, **attrs):
        """A detached span root: joined to ``trace_id`` when the origin
        is known (standby apply with a shipped trace id), otherwise a
        fresh sampled root (refresh-scheduler work, untraced records)."""
        if trace_id:
            return Span(self.buffer, name, trace_id, None, self.service,
                        attrs)
        return self.start_trace(name, **attrs)


# ----------------------------------------------------------------------
#: The installed tracer, or None (tracing off — the default). Every
#: instrumentation site reads this slot exactly once per entry.
TRACER: Tracer | None = None


def install(sample_rate: float = 1.0, capacity: int = 4096,
            service: str = "repro", seed: int | None = None) -> Tracer:
    """Install a fresh process tracer (replacing any prior one)."""
    global TRACER
    TRACER = Tracer(sample_rate, capacity, service, seed)
    return TRACER


def uninstall() -> None:
    """Disable tracing; the slot goes back to None (no-op hot path)."""
    global TRACER
    TRACER = None


def set_sample_rate(rate: float | None) -> Tracer | None:
    """``SET TRACE SAMPLE <rate>|OFF``: ``None``/0 uninstalls the
    tracer; a rate installs one (or retunes the live one, keeping its
    buffered spans)."""
    global TRACER
    if rate is None or rate <= 0.0:
        TRACER = None
        return None
    if TRACER is None:
        TRACER = Tracer(sample_rate=rate)
    else:
        TRACER.sample_rate = float(rate)
    return TRACER


def active() -> Span | None:
    """The innermost span on this thread, or None when tracing is off
    or this request was not sampled."""
    if TRACER is None:
        return None
    return getattr(_local, "span", None)


def current_trace_id() -> str | None:
    """The active trace id on this thread (slow-query log, event log)."""
    if TRACER is None:
        return None
    span = getattr(_local, "span", None)
    return span.trace_id if span is not None else None


def child(name: str, **attrs):
    """A context-managed child of this thread's active span
    (:data:`NOOP` when there is none)."""
    if TRACER is None:
        return NOOP
    parent = getattr(_local, "span", None)
    if parent is None:
        return NOOP
    return parent.child(name, **attrs)


def record(name: str, started_pc: float, **attrs) -> None:
    """Append a completed child span covering ``[started_pc, now]``
    under this thread's active span; no-op otherwise."""
    if TRACER is None:
        return
    parent = getattr(_local, "span", None)
    if parent is None:
        return
    parent.record(name, started_pc, **attrs)


def attach(span):
    """Context manager publishing ``span`` as the current thread's
    parent without finishing it on exit (cross-thread hand-off)."""
    if span is None or span is NOOP:
        return NOOP
    return _Attach(span)
