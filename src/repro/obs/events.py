"""Structured ops event log: lifecycle transitions as JSONL.

Metrics answer "how much"; spans answer "where did this request spend
its time"; the event log answers "what *happened* to the system" —
server start/drain, connection open/close, client failover redirects,
standby promote/reconnect/gap-rebootstrap, summary quarantine and
re-admit, checkpoint compaction, circuit breaker open/half-open/close.
Each entry is one JSON object::

    {"ts": 1722988800.123, "event": "standby.promote",
     "trace_id": "9f2c...", "applied_lsn": 42, ...}

``ts`` is the UNIX wall clock, ``event`` is a dotted
``subsystem.transition`` name, ``trace_id`` is stamped automatically
from the active span (:func:`repro.obs.spans.current_trace_id`) when
one is in scope, and every remaining key is emitter-supplied context.

Storage is an always-on bounded in-memory ring (cheap enough to never
turn off) plus an optional JSONL file: :meth:`EventLog.configure` (or
``repro-serve --events-log PATH``) opens the file in append mode, and
when it exceeds ``max_file_lines`` it is rewritten from the in-memory
ring — a bounded file, not an unbounded audit trail.

Subsystems emit through the module-level :func:`emit` so the process
shares one log; tests swap :data:`LOG` or :meth:`~EventLog.clear` it.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque

from repro.obs import spans as _spans


class EventLog:
    """A bounded in-memory ring of ops events with an optional bounded
    JSONL file behind it."""

    def __init__(self, path=None, capacity: int = 512,
                 max_file_lines: int = 10_000):
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.capacity = capacity
        self.max_file_lines = max_file_lines
        self._path = None
        self._file = None
        self._file_lines = 0
        self.emitted = 0
        if path is not None:
            self.configure(path)

    # ------------------------------------------------------------------
    def configure(self, path) -> None:
        """Attach (or switch) the JSONL file; existing lines count
        toward the rewrite threshold."""
        with self._lock:
            self._close_file_locked()
            self._path = str(path)
            lines = 0
            try:
                with open(self._path, "r", encoding="utf-8") as handle:
                    for _ in handle:
                        lines += 1
            except OSError:
                lines = 0
            self._file = open(self._path, "a", encoding="utf-8")
            self._file_lines = lines

    def emit(self, event: str, *, trace_id: str | None = None,
             **fields) -> dict:
        """Record one event; returns the entry. ``trace_id`` defaults to
        the thread's active span's trace (None → omitted)."""
        if trace_id is None:
            trace_id = _spans.current_trace_id()
        entry: dict = {"ts": time.time(), "event": event}
        if trace_id is not None:
            entry["trace_id"] = trace_id
        entry.update(fields)
        with self._lock:
            self.emitted += 1
            self._ring.append(entry)
            if self._file is not None:
                try:
                    self._file.write(
                        json.dumps(entry, default=str) + "\n"
                    )
                    self._file.flush()
                    self._file_lines += 1
                    if self._file_lines > self.max_file_lines:
                        self._rewrite_file_locked()
                except OSError:  # pragma: no cover - disk failure
                    self._close_file_locked()
        return entry

    def _rewrite_file_locked(self) -> None:
        """Truncate the file down to the in-memory ring (keeps the file
        bounded at roughly ``capacity`` recent events)."""
        self._file.close()
        self._file = open(self._path, "w", encoding="utf-8")
        for entry in self._ring:
            self._file.write(json.dumps(entry, default=str) + "\n")
        self._file.flush()
        self._file_lines = len(self._ring)

    def _close_file_locked(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover
                pass
            self._file = None
        self._path = None
        self._file_lines = 0

    # ------------------------------------------------------------------
    def tail(self, n: int = 50) -> list[dict]:
        """The most recent ``n`` events, oldest first."""
        with self._lock:
            events = list(self._ring)
        return events[-n:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        with self._lock:
            self._close_file_locked()


#: The process-wide event log (in-memory only until configured).
LOG = EventLog()


def emit(event: str, *, trace_id: str | None = None, **fields) -> dict:
    """Emit onto the process-wide log."""
    return LOG.emit(event, trace_id=trace_id, **fields)


def tail(n: int = 50) -> list[dict]:
    return LOG.tail(n)


def configure(path) -> None:
    """Attach the process-wide log to a JSONL file."""
    LOG.configure(path)
