"""Observability: match tracing, metrics registry, phase timers.

See ``docs/OBSERVABILITY.md`` for the trace event schema, the
reject-reason catalog mapped to paper sections, and the metric names.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    REASONS,
    MatchTrace,
    TraceBuffer,
    describe_box,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REASONS",
    "MatchTrace",
    "TraceBuffer",
    "describe_box",
]
