"""Observability: match tracing, metrics registry, spans, ops events.

See ``docs/OBSERVABILITY.md`` for the trace event schema, the
reject-reason catalog mapped to paper sections, the metric names, the
request-span model (``repro.obs.spans``), and the ops event log
(``repro.obs.events``).
"""

from repro.obs.events import EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanBuffer, Tracer
from repro.obs.trace import (
    REASONS,
    MatchTrace,
    TraceBuffer,
    describe_box,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REASONS",
    "MatchTrace",
    "Span",
    "SpanBuffer",
    "TraceBuffer",
    "Tracer",
    "describe_box",
]
