"""Test/chaos support for the repro library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the robustness suite drives; production code threads its named
injection points through the persistence, refresh, and rewrite layers.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    INJECTOR,
    POINTS,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "INJECTOR",
    "POINTS",
]
