"""Deterministic fault injection for the robustness suite.

The production code threads *named injection points* through its
failure-prone paths — file writes, the delta log, the refresh worker,
the matcher — by calling :func:`fire` with the point's name. When
nothing is armed, :func:`fire` is a single falsy-dict check and returns
immediately, so shipping the hooks costs nothing. A test arms a point
through the process-global :data:`INJECTOR` (usually via the
:meth:`FaultInjector.injected` context manager, which guarantees
disarming) and the next traversal of that point raises.

Injection points (see docs/ROBUSTNESS.md for the failure each models)::

    persist.write        before a temp file's contents are written
    persist.rename       before a temp file is atomically renamed
    delta.append         before a batch is staged in the delta log
    scheduler.apply      before incremental summary-delta application
    scheduler.recompute  before a fallback full recomputation
    rewrite.match        before a summary table is navigated for a match
    governor.admit       before admission control considers a query
    executor.tick        at each governed executor row-batch checkpoint
                         (fires only while a governor scope is active)
    wal.append           before a mutation record is staged in the
                         write-ahead journal (models a full journal)
    wal.fsync            after a journal batch is written, before it is
                         made durable (models torn tails / fsync errors)
    repl.stream          before each record is shipped to a standby
                         (models mid-stream replica disconnects)
    client.send          in the client after a request's bytes left the
                         socket, before the reply is read (models a
                         lost ACK: the server processed the request but
                         the client never saw the response)
    mem.reserve          inside MemoryReservation.charge, before the
                         grant (models memory pressure: the charge is
                         denied and the executor must spill)
    executor.spill       before a spill run is written to the temp
                         file (models a full spill disk: the query
                         fails with a typed QueryResourceError)
    wal.disk_full        in the journal's flush path, translated to an
                         ENOSPC OSError (models a full journal disk:
                         the server degrades to read-only)

Three firing modes, all deterministic:

* **fail-once / fail-k** (``times=k``) — raise on the next *k*
  traversals, then disarm automatically;
* **fail-every-N** (``every=n``) — raise on every *n*-th traversal,
  indefinitely;
* **seeded probability** (``probability=p, seed=s``) — raise when a
  private ``random.Random(s)`` stream says so; the same seed always
  yields the same trigger pattern.

Injected faults raise :class:`InjectedFault`, which deliberately does
*not* derive from :class:`repro.errors.ReproError`: it models the
unexpected infrastructure failures (full disk, OOM, bit rot, bugs) that
the library's own error handling never anticipates. ``error=`` arms a
custom exception factory instead when a test needs a specific type.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: the injection points compiled into the library (arming anything else
#: is almost certainly a typo, so ``arm`` rejects it)
POINTS = frozenset(
    {
        "persist.write",
        "persist.rename",
        "delta.append",
        "scheduler.apply",
        "scheduler.recompute",
        "rewrite.match",
        "governor.admit",
        "executor.tick",
        "wal.append",
        "wal.fsync",
        "repl.stream",
        "client.send",
        "mem.reserve",
        "executor.spill",
        "wal.disk_full",
    }
)


class InjectedFault(Exception):
    """Raised when an armed injection point is traversed.

    Intentionally not a ``ReproError``: it stands in for the failures
    (I/O errors, resource exhaustion, plain bugs) that no layer of the
    library expects, so it exercises the *unexpected*-exception paths.
    """

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point}")
        self.point = point


@dataclass
class FaultSpec:
    """One armed injection point's configuration and counters.

    Exactly one of ``remaining`` / ``every`` / ``probability`` is set.
    ``hits`` counts traversals while armed; ``triggers`` counts raises.
    """

    point: str
    remaining: int | None = None
    every: int | None = None
    probability: float | None = None
    rng: random.Random | None = None
    error: Callable[[str], BaseException] | None = None
    hits: int = 0
    triggers: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class FaultInjector:
    """A registry of armed injection points, safe to drive from tests
    while worker threads traverse the hooks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._specs: dict[str, FaultSpec] = {}

    # ------------------------------------------------------------------
    # Arming (test side)
    # ------------------------------------------------------------------
    def arm(
        self,
        point: str,
        *,
        times: int | None = None,
        every: int | None = None,
        probability: float | None = None,
        seed: int = 0,
        error: Callable[[str], BaseException] | None = None,
    ) -> FaultSpec:
        """Arm ``point``; with no mode argument, fail exactly once.

        Re-arming a point replaces its previous spec.
        """
        if point not in POINTS:
            raise ValueError(
                f"unknown injection point {point!r} "
                f"(known: {', '.join(sorted(POINTS))})"
            )
        modes = sum(value is not None for value in (times, every, probability))
        if modes > 1:
            raise ValueError("pick one of times=, every=, probability=")
        if modes == 0:
            times = 1
        if times is not None and times < 1:
            raise ValueError("times= must be >= 1")
        if every is not None and every < 1:
            raise ValueError("every= must be >= 1")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability= must be within [0, 1]")
        spec = FaultSpec(
            point=point,
            remaining=times,
            every=every,
            probability=probability,
            rng=random.Random(seed) if probability is not None else None,
            error=error,
        )
        with self._lock:
            self._specs[point] = spec
        return spec

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point, or every point when ``point`` is None."""
        with self._lock:
            if point is None:
                self._specs.clear()
            else:
                self._specs.pop(point, None)

    def spec(self, point: str) -> FaultSpec | None:
        """The armed spec for ``point`` (to read its counters), or None."""
        with self._lock:
            return self._specs.get(point)

    @property
    def armed(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._specs)

    @contextmanager
    def injected(self, point: str, **config) -> Iterator[FaultSpec]:
        """``with INJECTOR.injected("persist.write"): ...`` — arm for the
        block's duration; always disarms, even when the block raises."""
        spec = self.arm(point, **config)
        try:
            yield spec
        finally:
            self.disarm(point)

    # ------------------------------------------------------------------
    # Firing (production side)
    # ------------------------------------------------------------------
    def fire(self, point: str) -> None:
        """Raise if ``point`` is armed and its mode says this traversal
        fails; otherwise return. Hot-path cost when nothing is armed is
        one dict truthiness check (see the module-level :func:`fire`)."""
        spec = self._specs.get(point)
        if spec is None:
            return
        with spec._lock:
            spec.hits += 1
            if spec.remaining is not None:
                spec.remaining -= 1
                if spec.remaining <= 0:
                    self.disarm(point)
            elif spec.every is not None:
                if spec.hits % spec.every != 0:
                    return
            elif spec.probability is not None:
                if spec.rng.random() >= spec.probability:
                    return
            spec.triggers += 1
            factory = spec.error
        raise factory(point) if factory is not None else InjectedFault(point)


#: the process-global injector every production hook reports to
INJECTOR = FaultInjector()


def fire(point: str) -> None:
    """The hook production code calls. Zero work unless something is
    armed anywhere in the process."""
    if INJECTOR._specs:
        INJECTOR.fire(point)


#: environment variable read by :func:`arm_from_env`
ENV_VAR = "REPRO_FAULTS"


def arm_from_env(value: str | None = None) -> list[str]:
    """Arm injection points from an environment-variable spec.

    The crash-matrix suite launches real server subprocesses and kills
    them with SIGKILL; the only way to arm faults *inside* those
    processes is at startup, so ``repro serve`` calls this with the
    value of :data:`ENV_VAR`. The spec is a comma-separated list of
    ``point:mode=value`` entries (mode defaults to ``times=1``)::

        REPRO_FAULTS="wal.fsync:every=5,persist.write:times=1"
        REPRO_FAULTS="wal.append:probability=0.1:seed=7"

    Returns the list of points armed. A malformed spec raises
    ``ValueError`` — a typo silently arming nothing would make a chaos
    run vacuous.
    """
    import os

    if value is None:
        value = os.environ.get(ENV_VAR, "")
    armed: list[str] = []
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        point = parts[0]
        config: dict = {}
        for part in parts[1:]:
            key, _, raw = part.partition("=")
            if key == "probability":
                config[key] = float(raw)
            elif key in ("times", "every", "seed"):
                config[key] = int(raw)
            else:
                raise ValueError(f"unknown fault option {key!r} in {entry!r}")
        INJECTOR.arm(point, **config)
        armed.append(point)
    return armed
