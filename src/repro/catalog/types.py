"""Column data types and value checking.

The engine is dynamically typed at runtime (rows are plain tuples), but the
catalog declares a :class:`DataType` per column so that the binder can type
expressions, the matcher can reason about nullability, and the loader can
validate rows.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any


class DataType(enum.Enum):
    """Supported column types.

    ``DECIMAL`` values are represented as Python floats; the paper's
    examples never depend on exact decimal arithmetic.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOLEAN = "boolean"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


_PYTHON_TYPES: dict[DataType, tuple[type, ...]] = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (float, int),
    DataType.STRING: (str,),
    DataType.DATE: (datetime.date,),
    DataType.BOOLEAN: (bool,),
}


def value_matches_type(value: Any, dtype: DataType) -> bool:
    """Return True if ``value`` is a legal runtime value for ``dtype``.

    ``None`` (SQL NULL) is legal for every type; nullability is enforced
    separately by :class:`repro.catalog.schema.Column`.
    """
    if value is None:
        return True
    if dtype is DataType.INTEGER and isinstance(value, bool):
        return False
    return isinstance(value, _PYTHON_TYPES[dtype])


def infer_literal_type(value: Any) -> DataType | None:
    """Best-effort type of a Python literal, or None for NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    if isinstance(value, datetime.date):
        return DataType.DATE
    raise TypeError(f"unsupported literal value: {value!r}")


def is_numeric(dtype: DataType | None) -> bool:
    """True for types that participate in arithmetic."""
    return dtype in (DataType.INTEGER, DataType.FLOAT)
