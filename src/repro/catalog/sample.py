"""The paper's sample database schema (Section 1.1, Figure 1).

A credit-card star schema: one fact table ``Trans`` and three explicit
dimensions — product group (``PGroup``), location (``Loc``, de-normalized
city/state/country) and account (``Acct`` → ``Cust``). The time dimension is
encoded in ``Trans.date`` and extracted with the built-in ``year``/``month``
/``day`` functions, exactly as in the paper.
"""

from __future__ import annotations

from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKeyConstraint,
    TableSchema,
    UniqueKey,
)
from repro.catalog.types import DataType


def credit_card_catalog() -> Catalog:
    """Build the Figure 1 catalog, including all RI constraints (arrows)."""
    catalog = Catalog()

    catalog.add_table(
        TableSchema(
            "PGroup",
            [
                Column("pgid", DataType.INTEGER),
                Column("pgname", DataType.STRING),
            ],
            keys=[UniqueKey(("pgid",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "Loc",
            [
                Column("lid", DataType.INTEGER),
                Column("city", DataType.STRING),
                Column("state", DataType.STRING),
                Column("country", DataType.STRING),
            ],
            keys=[UniqueKey(("lid",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "Cust",
            [
                Column("cid", DataType.INTEGER),
                Column("cname", DataType.STRING),
                Column("cstate", DataType.STRING),
            ],
            keys=[UniqueKey(("cid",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "Acct",
            [
                Column("aid", DataType.INTEGER),
                Column("acid", DataType.INTEGER),
                Column("status", DataType.STRING),
            ],
            keys=[UniqueKey(("aid",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "Trans",
            [
                Column("tid", DataType.INTEGER),
                Column("fpgid", DataType.INTEGER),
                Column("flid", DataType.INTEGER),
                Column("faid", DataType.INTEGER),
                Column("date", DataType.DATE),
                Column("qty", DataType.INTEGER),
                Column("price", DataType.FLOAT),
                Column("disc", DataType.FLOAT),
            ],
            keys=[UniqueKey(("tid",), is_primary=True)],
        )
    )

    catalog.add_foreign_key(
        ForeignKeyConstraint("Trans", ("fpgid",), "PGroup", ("pgid",))
    )
    catalog.add_foreign_key(ForeignKeyConstraint("Trans", ("flid",), "Loc", ("lid",)))
    catalog.add_foreign_key(ForeignKeyConstraint("Trans", ("faid",), "Acct", ("aid",)))
    catalog.add_foreign_key(ForeignKeyConstraint("Acct", ("acid",), "Cust", ("cid",)))
    return catalog
