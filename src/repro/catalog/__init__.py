"""Catalog: column types, table schemas, keys, and RI constraints."""

from repro.catalog.sample import credit_card_catalog
from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKeyConstraint,
    TableSchema,
    UniqueKey,
)
from repro.catalog.types import DataType, infer_literal_type, is_numeric

__all__ = [
    "Catalog",
    "Column",
    "DataType",
    "ForeignKeyConstraint",
    "TableSchema",
    "UniqueKey",
    "credit_card_catalog",
    "infer_literal_type",
    "is_numeric",
]
