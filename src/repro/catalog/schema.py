"""Schemas, keys, and referential-integrity constraints.

The matcher relies on catalog metadata in two places the paper calls out
explicitly:

* **Lossless extra joins** (Section 4.1.1, condition 1): an extra subsumer
  child is harmless when a non-nullable foreign key joins to the extra
  child's unique key, so the join neither drops nor duplicates rows.
* **Rejoin multiplicity** (Section 4.2.1): re-joining a dimension on its
  unique key is 1:N with the dimension on the "1" side, which lets the
  compensation skip regrouping.

Both facts are derived from :class:`UniqueKey` and
:class:`ForeignKeyConstraint` entries stored here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.types import DataType
from repro.errors import CatalogError


@dataclass(frozen=True)
class Column:
    """A named, typed column. ``nullable`` defaults to False because the
    paper's supergroup matching assumes non-nullable grouping inputs."""

    name: str
    dtype: DataType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class UniqueKey:
    """A uniqueness constraint over one or more columns."""

    columns: tuple[str, ...]
    is_primary: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise CatalogError("unique key needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise CatalogError(f"duplicate column in key: {self.columns}")


@dataclass(frozen=True)
class ForeignKeyConstraint:
    """An RI constraint: ``child_table(child_columns)`` references
    ``parent_table(parent_columns)``, which must be a unique key."""

    child_table: str
    child_columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_columns) != len(self.parent_columns):
            raise CatalogError(
                "foreign key column count mismatch: "
                f"{self.child_columns} vs {self.parent_columns}"
            )


class TableSchema:
    """An ordered set of columns plus key constraints for one table."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        keys: list[UniqueKey] | None = None,
    ):
        if not columns:
            raise CatalogError(f"table {name!r} has no columns")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise CatalogError(f"duplicate column {column.name!r} in {name!r}")
            seen.add(column.name)
        self.name = name
        self.columns = list(columns)
        self.keys = list(keys or [])
        self._by_name = {column.name: column for column in columns}
        for key in self.keys:
            for column_name in key.columns:
                if column_name not in self._by_name:
                    raise CatalogError(
                        f"key column {column_name!r} not in table {name!r}"
                    )

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name!r}") from None

    def is_unique_key(self, columns: set[str]) -> bool:
        """True if some declared key is a subset of ``columns`` (a superset
        of a unique key is itself unique)."""
        return any(set(key.columns) <= columns for key in self.keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(self.column_names)
        return f"TableSchema({self.name}: {cols})"


@dataclass
class Catalog:
    """A collection of table schemas and RI constraints."""

    tables: dict[str, TableSchema] = field(default_factory=dict)
    foreign_keys: list[ForeignKeyConstraint] = field(default_factory=list)

    def add_table(self, schema: TableSchema) -> TableSchema:
        key = schema.name.lower()
        if key in self.tables:
            raise CatalogError(f"table {schema.name!r} already defined")
        self.tables[key] = schema
        return schema

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self.tables:
            raise CatalogError(f"no table named {name!r}")
        del self.tables[key]
        self.foreign_keys = [
            fk
            for fk in self.foreign_keys
            if fk.child_table.lower() != key and fk.parent_table.lower() != key
        ]

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def add_foreign_key(self, constraint: ForeignKeyConstraint) -> None:
        child = self.table(constraint.child_table)
        parent = self.table(constraint.parent_table)
        for column_name in constraint.child_columns:
            child.column(column_name)
        for column_name in constraint.parent_columns:
            parent.column(column_name)
        if not parent.is_unique_key(set(constraint.parent_columns)):
            raise CatalogError(
                f"RI target {constraint.parent_table}{constraint.parent_columns} "
                "is not a unique key"
            )
        self.foreign_keys.append(constraint)

    def find_foreign_key(
        self, child_table: str, parent_table: str
    ) -> ForeignKeyConstraint | None:
        """The RI constraint from ``child_table`` to ``parent_table``, if any."""
        for constraint in self.foreign_keys:
            if (
                constraint.child_table.lower() == child_table.lower()
                and constraint.parent_table.lower() == parent_table.lower()
            ):
                return constraint
        return None

    def ri_join_is_lossless(
        self,
        child_table: str,
        child_columns: set[str],
        parent_table: str,
        parent_columns: set[str],
        column_pairs: set[tuple[str, str]],
    ) -> bool:
        """Decide whether an equi-join is lossless for the child side.

        The join must equate exactly a declared foreign key of
        ``child_table`` with its referenced unique key in ``parent_table``,
        and every FK column must be non-nullable (a NULL FK value would
        drop the child row). ``column_pairs`` holds the joined
        (child_column, parent_column) pairs.
        """
        constraint = self.find_foreign_key(child_table, parent_table)
        if constraint is None:
            return False
        required = set(zip(constraint.child_columns, constraint.parent_columns))
        if not required <= column_pairs:
            return False
        child = self.table(child_table)
        return all(
            not child.column(name).nullable for name in constraint.child_columns
        )
