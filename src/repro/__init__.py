"""repro — Answering Complex SQL Queries Using Automatic Summary Tables.

A faithful reproduction of the SIGMOD 2000 paper by Zaharioudakis,
Cochrane, Lapis, Pirahesh and Urata (IBM DB2 UDB): a Query Graph Model,
a bottom-up matching algorithm with compensation construction, expression
translation/derivation, multidimensional (CUBE/ROLLUP/GROUPING SETS)
matching, and the surrounding machinery — SQL front end, execution
engine, summary-table maintenance and advisor.

Quickstart::

    from repro import Database, credit_card_catalog

    db = Database(credit_card_catalog())
    db.load("Trans", rows)
    db.create_summary_table("AST1", "SELECT faid, flid, ... GROUP BY ...")
    result = db.execute("SELECT ...")      # rewritten over AST1 if possible
    print(db.rewrite("SELECT ...").sql)    # see the rewritten SQL
"""

from repro.asts.advisor import Advisor, AdvisorResult
from repro.asts.definition import SummaryTable
from repro.asts.maintenance import MaintenanceReport, maintain_delete, maintain_insert
from repro.catalog.sample import credit_card_catalog
from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKeyConstraint,
    TableSchema,
    UniqueKey,
)
from repro.catalog.types import DataType
from repro.engine.database import Database
from repro.engine.persist import (
    RecoveryReport,
    load_database,
    save_database,
    verify_database,
)
from repro.engine.reference import ReferenceExecutor
from repro.engine.stats import TableStats, collect_stats, estimate_group_count
from repro.engine.table import Table, tables_equal
from repro.errors import (
    BindError,
    CatalogError,
    ExecutionError,
    ReproError,
    RewriteError,
    SqlSyntaxError,
    UnsupportedSqlError,
)
from repro.matching.navigator import match_graphs, root_matches
from repro.obs import (
    REASONS,
    Counter,
    Gauge,
    Histogram,
    MatchTrace,
    MetricsRegistry,
    TraceBuffer,
)
from repro.qgm.build import build_graph
from repro.qgm.display import render_graph
from repro.qgm.fingerprint import GraphFingerprint, fingerprint
from repro.qgm.unparse import to_sql
from repro.rewrite.cache import RewriteCache, RewriteStats
from repro.rewrite.index import SummaryIndex, SummarySignature, graph_signature
from repro.rewrite.planner import CostPlanner
from repro.rewrite.rewriter import RewriteResult, rewrite_query
from repro.sql.parser import parse, parse_expression

__version__ = "1.0.0"

__all__ = [
    "Advisor",
    "AdvisorResult",
    "BindError",
    "Catalog",
    "CatalogError",
    "Column",
    "CostPlanner",
    "Counter",
    "DataType",
    "Database",
    "ExecutionError",
    "ForeignKeyConstraint",
    "Gauge",
    "GraphFingerprint",
    "Histogram",
    "MaintenanceReport",
    "MatchTrace",
    "MetricsRegistry",
    "REASONS",
    "RecoveryReport",
    "ReproError",
    "ReferenceExecutor",
    "RewriteCache",
    "RewriteError",
    "RewriteResult",
    "RewriteStats",
    "SummaryIndex",
    "SummarySignature",
    "TableStats",
    "SqlSyntaxError",
    "SummaryTable",
    "Table",
    "TableSchema",
    "TraceBuffer",
    "UniqueKey",
    "UnsupportedSqlError",
    "build_graph",
    "collect_stats",
    "credit_card_catalog",
    "estimate_group_count",
    "fingerprint",
    "graph_signature",
    "load_database",
    "maintain_delete",
    "maintain_insert",
    "match_graphs",
    "parse",
    "parse_expression",
    "render_graph",
    "save_database",
    "rewrite_query",
    "root_matches",
    "tables_equal",
    "to_sql",
    "verify_database",
    "__version__",
]
