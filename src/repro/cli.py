"""Interactive SQL shell with transparent summary-table rewriting.

Run ``python -m repro`` for an empty database, or
``python -m repro --demo`` to start with the paper's credit-card schema
pre-loaded with synthetic data and AST1 materialized.

Statements end with ``;``. Besides the SQL subset (see README), the
shell understands:

* ``\\d`` — list tables and summary tables
* ``\\timing`` — toggle per-query timing
* ``\\noast`` — toggle summary-table rewriting off/on
* ``\\stats`` — matching fast-path counters (index pruning, decision
  cache hits/misses, navigations run); ``\\stats reset`` zeroes them
* ``\\refresh`` — per-summary refresh mode and staleness;
  ``\\refresh drain`` applies every staged delta and waits;
  ``\\refresh NAME ...`` recomputes the named summaries now
* ``\\trace on|off`` — toggle match tracing for subsequent queries;
  ``\\trace last`` replays the most recent trace (verdicts + timings)
* ``\\metrics`` — the unified metrics registry (rewrite, scheduler,
  executor, phase timers); ``\\metrics json`` / ``\\metrics prom`` dump
  machine-readable forms, ``\\metrics reset`` zeroes everything
* ``\\slowlog`` — recent queries over the slow-query threshold
  (``SET SLOW QUERY <ms> | OFF`` adjusts it)
* ``\\governor`` — query-governor status: session limits (``SET QUERY
  TIMEOUT <ms> | OFF``, ``SET QUERY MAXROWS <n> | OFF``, ``SET QUERY
  MAXMEM <bytes> | OFF``), admission control, circuit-breaker state,
  and the last governor event
* ``\\connect HOST:PORT`` — switch to remote mode: subsequent SQL,
  ``\\metrics``, and ``\\governor`` go to a ``repro serve`` server over
  the wire protocol (docs/SERVER.md); ``\\disconnect`` switches back
* ``\\q`` — quit

``repro serve [--demo] [--host H] [--port P] ...`` runs the query
server instead of the shell; see ``repro serve --help``.

``SET EXECUTOR PARALLEL <n> | OFF`` turns on morsel-driven parallel
execution with ``n`` worker threads (docs/EXECUTOR.md); EXPLAIN ANALYZE
shows the batch/parallelism counters of the run.

``EXPLAIN SELECT ...`` prints the QGM graph, the match, and the
rewritten SQL; ``EXPLAIN ANALYZE SELECT ...`` also executes the query
and reports phase timings plus the per-AST match verdict table.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import IO

from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import ReproError


class Shell:
    """The REPL engine, separated from stdin/stdout for testability."""

    def __init__(self, database: Database | None = None, out: IO[str] | None = None):
        self.database = database or Database()
        self.out = out or sys.stdout
        self.timing = False
        self.use_summary_tables = True
        #: a live ReproClient when \connect-ed to a server, else None
        self.remote = None
        #: statements that failed (drives the non-interactive exit code)
        self.errors = 0

    # ------------------------------------------------------------------
    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    def handle_line(self, line: str) -> bool:
        """Process one complete input (a backslash command or a
        ';'-terminated statement). Returns False to quit."""
        stripped = line.strip()
        if not stripped:
            return True
        if stripped.startswith("\\"):
            return self._handle_command(stripped)
        self._handle_sql(stripped.rstrip(";"))
        return True

    def _handle_command(self, command: str) -> bool:
        parts = command.split()
        name = parts[0]
        if name == "\\q":
            return False
        if name == "\\d":
            self._describe()
            return True
        if name == "\\timing":
            self.timing = not self.timing
            self.write(f"timing is {'on' if self.timing else 'off'}")
            return True
        if name == "\\noast":
            self.use_summary_tables = not self.use_summary_tables
            state = "disabled" if not self.use_summary_tables else "enabled"
            self.write(f"summary-table rewriting {state}")
            return True
        if name == "\\stats":
            return self._handle_stats(parts)
        if name == "\\refresh":
            return self._handle_refresh(parts)
        if name == "\\trace":
            return self._handle_trace(parts)
        if name == "\\metrics":
            return self._handle_metrics(parts)
        if name == "\\slowlog":
            return self._handle_slowlog(parts)
        if name == "\\governor":
            return self._handle_governor(parts)
        if name == "\\status":
            return self._handle_status(parts)
        if name == "\\connect":
            return self._handle_connect(parts)
        if name == "\\disconnect":
            return self._handle_disconnect()
        if name == "\\save":
            return self._handle_save(parts)
        if name == "\\open":
            return self._handle_open(parts)
        self.write(
            f"unknown command {name} "
            "(try \\d, \\timing, \\noast, \\stats, \\refresh, \\trace, "
            "\\metrics, \\slowlog, \\governor, \\status, "
            "\\connect HOST:PORT, \\disconnect, \\save DIR, \\open DIR, \\q)"
        )
        return True

    def _handle_stats(self, parts: list[str]) -> bool:
        if len(parts) == 2 and parts[1] == "reset":
            self.database.reset_rewrite_stats()
            self.write("rewrite stats reset")
            return True
        if len(parts) != 1:
            self.write("usage: \\stats [reset]")
            return True
        stats = self.database.rewrite_stats()
        width = max(len(name) for name in stats)
        self.write("matching fast path:")
        for name, value in stats.items():
            self.write(f"  {name.replace('_', ' '):<{width}} {value}")
        return True

    def _handle_refresh(self, parts: list[str]) -> bool:
        if len(parts) >= 2 and parts[1] == "drain":
            self.database.drain_refresh()
            self.write("refresh queue drained; all summary tables fresh")
            return True
        if len(parts) >= 2:
            try:
                self.database.refresh_summary_tables(parts[1:])
            except ReproError as error:
                self.write(f"error: {error}")
                return True
            self.write(f"refreshed: {', '.join(parts[1:])}")
            return True
        status = self.database.refresh_status()
        if not status:
            self.write("(no summary tables)")
            return True
        self.write(
            f"session refresh age: {self.database.refresh_age.describe()}"
        )
        for entry in status:
            line = (
                f"{entry['name']}: {entry['mode']}, "
                f"{entry['pending_deltas']} pending delta batch(es), "
                f"last refresh at lsn {entry['last_refresh_lsn']}"
            )
            if entry.get("quarantined"):
                line += (
                    f" QUARANTINED ({entry['quarantine_reason']}; "
                    "REFRESH SUMMARY TABLE re-admits)"
                )
            if "last_fallback" in entry:
                line += f" [last fallback: {entry['last_fallback']}]"
            self.write(line)
        scheduler = self.database.refresh_scheduler
        self.write(
            f"scheduler: {scheduler.refreshes_applied} refresh(es) applied, "
            f"{scheduler.batches_applied} delta batch(es) merged, "
            f"{scheduler.fallback_recomputes} fallback recompute(s), "
            f"{scheduler.quarantines} quarantine(s), "
            f"{scheduler.queued} queued"
        )
        return True

    def _handle_trace(self, parts: list[str]) -> bool:
        if len(parts) == 2 and parts[1] in ("on", "off"):
            self.database.set_tracing(parts[1] == "on")
            self.write(f"match tracing is {parts[1]}")
            return True
        if len(parts) == 2 and parts[1] == "last":
            trace = self.database.last_trace
            if trace is None:
                self.write("(no traces recorded; try \\trace on first)")
                return True
            self.write(trace.render(verbose=True))
            return True
        self.write("usage: \\trace on|off|last")
        return True

    def _handle_metrics(self, parts: list[str]) -> bool:
        if self.remote is not None:
            return self._handle_remote_metrics(parts)
        metrics = self.database.metrics
        if len(parts) == 2 and parts[1] == "reset":
            metrics.reset()
            self.write("metrics reset")
            return True
        if len(parts) == 2 and parts[1] == "json":
            self.write(metrics.to_json())
            return True
        if len(parts) == 2 and parts[1] in ("prom", "prometheus"):
            self.write(metrics.to_prometheus().rstrip("\n"))
            return True
        if len(parts) != 1:
            self.write("usage: \\metrics [json|prom|reset]")
            return True
        dump = metrics.to_dict()
        self._render_metrics(dump)
        return True

    def _handle_remote_metrics(self, parts: list[str]) -> bool:
        if len(parts) == 2 and parts[1] == "json":
            import json

            self.write(json.dumps(self.remote.metrics(), indent=2, sort_keys=True))
            return True
        if len(parts) != 1:
            self.write("usage (remote): \\metrics [json]")
            return True
        try:
            dump = self.remote.metrics()
        except ReproError as error:
            self.write(f"error: {error}")
            return True
        self._render_metrics(dump)
        return True

    def _render_metrics(self, dump: dict) -> None:
        if not dump:
            self.write("(no metrics recorded)")
            return
        width = max(len(name) for name in dump)
        for name in sorted(dump):
            entry = dump[name]
            if entry["type"] == "histogram":
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                value = f"count={count} mean={mean:.3f}"
                # quantiles (absent from dumps made by older servers)
                p50, p95, p99 = (
                    entry.get("p50"), entry.get("p95"), entry.get("p99")
                )
                if None not in (p50, p95, p99):
                    value += f" p50={p50:.3f} p95={p95:.3f} p99={p99:.3f}"
            else:
                value = f"{entry['value']:g}"
            self.write(f"  {name:<{width}} {value}")

    def _handle_slowlog(self, parts: list[str]) -> bool:
        if len(parts) != 1:
            self.write("usage: \\slowlog")
            return True
        threshold = self.database.slow_query_ms
        if threshold is None:
            self.write("slow-query log is off (SET SLOW QUERY <ms> enables it)")
        else:
            self.write(f"slow-query threshold: {threshold:g} ms")
        if not self.database.slow_queries:
            self.write("(no slow queries recorded)")
            return True
        for entry in self.database.slow_queries:
            sql = " ".join(entry["sql"].split())
            if len(sql) > 60:
                sql = sql[:57] + "..."
            line = f"  {entry['ms']:>10.3f} ms  {sql}"
            if "trace_id" in entry:
                line += f"  [trace {entry['trace_id'][:8]}]"
            self.write(line)
        return True

    def _handle_governor(self, parts: list[str]) -> bool:
        if len(parts) != 1:
            self.write("usage: \\governor")
            return True
        if self.remote is not None:
            try:
                lines = self.remote.governor()
            except ReproError as error:
                self.write(f"error: {error}")
                return True
            self.write("query governor (remote):")
            for line in lines:
                self.write(f"  {line}")
            return True
        self.write("query governor:")
        for line in self.database.governor.describe_lines():
            self.write(f"  {line}")
        event = self.database.last_governor_event
        if event is not None:
            self.write(f"  last event: {event}")
        return True

    def _handle_status(self, parts: list[str]) -> bool:
        if len(parts) != 1:
            self.write("usage: \\status")
            return True
        if self.remote is not None:
            try:
                status = self.remote.status()
            except ReproError as error:
                self.write(f"error: {error}")
                return True
            self._render_status(status, remote=True)
            return True
        self._render_status(self._local_status(), remote=False)
        return True

    def _local_status(self) -> dict:
        """The in-process subset of the server's ``status`` op: no wire,
        no WAL, no result cache — governor, refresh, tracing, and live
        histogram quantiles still apply."""
        from repro.obs import spans as _spans
        from repro.obs.metrics import Histogram
        from repro.resources.broker import BROKER

        db = self.database
        scheduler = db.refresh_scheduler
        latency = {}
        for name in db.metrics.names():
            metric = db.metrics.get(name)
            if isinstance(metric, Histogram):
                described = metric.describe()
                if described["count"]:
                    latency[name] = {
                        "count": described["count"],
                        "p50": described["p50"],
                        "p95": described["p95"],
                        "p99": described["p99"],
                    }
        tracer = _spans.TRACER
        tracing: dict = {"enabled": tracer is not None}
        if tracer is not None:
            tracing.update(
                sample_rate=tracer.sample_rate,
                spans=len(tracer.buffer),
                dropped=tracer.buffer.dropped,
            )
        return {
            "role": "local",
            "governor": {
                "admission": db.governor.admission.snapshot(),
                "breaker": db.governor.breaker.snapshot(),
            },
            "refresh": {
                "queued": scheduler.queued,
                "pending_retries": scheduler.pending_retries,
                "quarantined": sorted(
                    s.name for s in db.quarantined_summary_tables()
                ),
            },
            "memory": BROKER.snapshot(),
            "latency_ms": latency,
            "tracing": tracing,
        }

    def _render_status(self, status: dict, remote: bool) -> None:
        where = "remote" if remote else "local"
        line = f"status ({where}): role={status.get('role', '?')}"
        if "address" in status:
            line += f" address={status['address']}"
        if "uptime_s" in status:
            line += f" uptime={status['uptime_s']:.1f}s"
        self.write(line)
        if "connections" in status:
            self.write(
                f"  requests: {status.get('requests', 0)} "
                f"({status.get('errors', 0)} errors), "
                f"{status['connections']} connection(s) open"
            )
        replication = status.get("replication")
        if replication:
            line = (
                f"  replication: lag {replication.get('lag', 0)} record(s)"
                f" / {replication.get('lag_seconds', 0.0):g}s, "
                f"applied lsn {replication.get('applied_lsn', 0)}"
            )
            if "subscribers" in replication:
                line += f", {replication['subscribers']} subscriber(s)"
            self.write(line)
        wal = status.get("wal")
        if wal:
            line = (
                f"  wal: {wal.get('depth_since_checkpoint', 0)} record(s) "
                f"since checkpoint (durable lsn {wal.get('durable_lsn', 0)}, "
                f"checkpoint lsn {wal.get('checkpoint_lsn', 0)}, "
                f"{wal.get('checkpoints', 0)} checkpoint(s), "
                f"sync={wal.get('sync', '?')})"
            )
            if wal.get("disk_full"):
                line += " DISK FULL — mutations refused until space returns"
            self.write(line)
        cache = status.get("cache")
        if cache:
            rate = cache.get("hit_rate")
            rate_text = f"{rate:.1%}" if rate is not None else "n/a"
            line = (
                f"  cache: {cache.get('entries', 0)} entries, "
                f"hit rate {rate_text} "
                f"({cache.get('hits', 0)} hits / "
                f"{cache.get('stale_hits', 0)} stale / "
                f"{cache.get('misses', 0)} misses)"
            )
            if "bytes" in cache:
                limit = cache.get("max_bytes")
                line += f", {cache['bytes']} byte(s)"
                if limit is not None:
                    line += f" of {limit}"
            self.write(line)
        memory = status.get("memory")
        if memory:
            limit = memory.get("limit")
            limit_text = f"{limit} byte(s)" if limit is not None else "off"
            self.write(
                f"  memory: limit {limit_text}, "
                f"{memory.get('reserved_bytes', 0)} reserved "
                f"(peak {memory.get('peak_bytes', 0)}), "
                f"{memory.get('denials', 0)} denial(s), "
                f"{memory.get('sheds', 0)} shed(s) freeing "
                f"{memory.get('shed_bytes', 0)} byte(s)"
            )
        governor = status.get("governor")
        if governor:
            admission = governor.get("admission", {})
            breaker = governor.get("breaker", {})
            self.write(
                f"  governor: {admission.get('running', 0)} running, "
                f"{admission.get('waiting', 0)} queued; breaker "
                f"{breaker.get('open', 0)} open / "
                f"{breaker.get('half_open_due', 0)} half-open "
                f"({breaker.get('tracked', 0)} tracked)"
            )
        refresh = status.get("refresh")
        if refresh:
            line = (
                f"  refresh: {refresh.get('queued', 0)} queued, "
                f"{refresh.get('pending_retries', 0)} retry(ies) pending"
            )
            quarantined = refresh.get("quarantined") or []
            if quarantined:
                line += f", quarantined: {', '.join(quarantined)}"
            self.write(line)
        tracing = status.get("tracing")
        if tracing:
            if tracing.get("enabled"):
                self.write(
                    f"  tracing: on (sample rate "
                    f"{tracing.get('sample_rate', 1.0):g}, "
                    f"{tracing.get('spans', 0)} span(s) buffered)"
                )
            else:
                self.write(
                    "  tracing: off (SET TRACE SAMPLE <rate> enables it)"
                )
        latency = status.get("latency_ms")
        if latency:
            self.write("  latency (ms):")
            width = max(len(name) for name in latency)
            for name in sorted(latency):
                entry = latency[name]
                p50 = entry.get("p50")
                p95 = entry.get("p95")
                p99 = entry.get("p99")
                self.write(
                    f"    {name:<{width}} count={entry.get('count', 0)}"
                    f" p50={p50:.3f} p95={p95:.3f} p99={p99:.3f}"
                    if None not in (p50, p95, p99)
                    else f"    {name:<{width}} count={entry.get('count', 0)}"
                )

    def _handle_connect(self, parts: list[str]) -> bool:
        if len(parts) != 2:
            self.write("usage: \\connect HOST:PORT (or just PORT)")
            return True
        from repro.server.client import ReproClient

        target = parts[1]
        host, _, port_text = target.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            self.write(f"error: bad port in {target!r}")
            self.errors += 1
            return True
        try:
            client = ReproClient(host, port)
            client.ping()
        except (OSError, ReproError) as error:
            self.write(f"error: cannot connect to {host}:{port}: {error}")
            self.errors += 1
            return True
        if self.remote is not None:
            self.remote.close()
        self.remote = client
        self.write(
            f"connected to {host}:{port} — SQL, \\metrics and \\governor "
            "now go to the server (\\disconnect to return)"
        )
        return True

    def _handle_disconnect(self) -> bool:
        if self.remote is None:
            self.write("(not connected)")
            return True
        self.remote.close()
        self.remote = None
        self.write("disconnected; back to the in-process database")
        return True

    def _handle_save(self, parts: list[str]) -> bool:
        if len(parts) != 2:
            self.write("usage: \\save DIRECTORY")
            return True
        from repro.engine.persist import save_database

        try:
            target = save_database(self.database, parts[1])
        except ReproError as error:
            self.write(f"error: {error}")
            return True
        self.write(f"saved to {target}")
        return True

    def _handle_open(self, parts: list[str]) -> bool:
        if len(parts) != 2:
            self.write("usage: \\open DIRECTORY")
            return True
        from repro.engine.persist import load_database, verify_database

        try:
            self.database = load_database(parts[1])
        except ReproError as error:
            self.write(f"error: {error}")
            return True
        self.write(f"opened {parts[1]}")
        # Startup recovery pass: repair or quarantine anything the crash
        # left inconsistent, and tell the user what happened.
        report = verify_database(self.database)
        if not report.clean:
            self.write(report.describe())
        return True

    def _describe(self) -> None:
        summaries = set(self.database.summary_tables)
        base = [
            schema
            for key, schema in sorted(self.database.catalog.tables.items())
            if key not in summaries
        ]
        if not base and not summaries:
            self.write("(no tables)")
            return
        for schema in base:
            rows = len(self.database.table(schema.name))
            self.write(f"table {schema.name} ({rows} rows): "
                       + ", ".join(schema.column_names))
        for key in sorted(summaries):
            summary = self.database.summary_tables[key]
            self.write(
                f"summary table {summary.name} ({summary.row_count} rows)"
            )

    def _handle_sql(self, sql: str) -> None:
        start = time.perf_counter()
        cache_label = None
        try:
            if self.remote is not None:
                reply = self.remote.query(
                    sql, use_summary_tables=self.use_summary_tables
                )
                result = reply.value
                cache_label = reply.cache
            else:
                # local statements mint their own trace root (the remote
                # path gets one from ReproClient.query)
                from repro.obs import spans as _spans

                tracer = _spans.TRACER
                root = (
                    tracer.start_trace("shell.statement", sql=sql[:200])
                    if tracer is not None
                    else _spans.NOOP
                )
                with root:
                    result = self.database.run_sql(
                        sql, use_summary_tables=self.use_summary_tables
                    )
        except ReproError as error:
            self.write(f"error: {error}")
            self.errors += 1
            return
        elapsed = time.perf_counter() - start
        if isinstance(result, Table):
            self.write(result.pretty(limit=40))
            suffix = f", cache {cache_label}" if cache_label else ""
            self.write(f"({len(result)} rows{suffix})")
        else:
            self.write(str(result))
        if self.timing:
            self.write(f"time: {elapsed * 1e3:.1f} ms")

    # ------------------------------------------------------------------
    def run(self, stream: IO[str], interactive: bool = True) -> None:
        buffer: list[str] = []
        if interactive:
            self.write("repro SQL shell — \\d tables, \\q quit, ; ends a statement")
        while True:
            if interactive:
                prompt = "repro> " if not buffer else "   ... "
                self.out.write(prompt)
                self.out.flush()
            line = stream.readline()
            if not line:
                break
            stripped = line.strip()
            if not buffer and stripped.startswith("\\"):
                if not self.handle_line(stripped):
                    break
                continue
            buffer.append(line)
            if stripped.endswith(";"):
                statement = "".join(buffer)
                buffer = []
                if not self.handle_line(statement):
                    break


def demo_database() -> Database:
    """The paper's schema with synthetic data and AST1 pre-built."""
    from repro.catalog.sample import credit_card_catalog
    from repro.workloads.datagen import bench_config, populate_credit_db

    database = Database(credit_card_catalog())
    populate_credit_db(database, bench_config(0.25))
    database.create_summary_table(
        "AST1",
        "select faid, flid, year(date) as year, count(*) as cnt "
        "from Trans group by faid, flid, year(date)",
    )
    return database


def serve_main(argv: list[str]) -> int:
    """``repro serve``: run the query server instead of the shell."""
    from repro.server.server import QueryServer

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Multi-client query server (docs/SERVER.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument(
        "--demo",
        action="store_true",
        help="preload the paper's credit-card schema, data, and AST1",
    )
    parser.add_argument(
        "--open",
        dest="open_dir",
        metavar="DIR",
        help="serve a database saved with \\save DIR",
    )
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help="admission control: queries allowed to run at once "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--queue",
        type=int,
        default=None,
        metavar="N",
        help="admission control: bounded wait-queue depth",
    )
    parser.add_argument(
        "--queue-timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="admission control: max queue wait before QueryRejected",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="N",
        help="semantic result cache entries (LRU)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="semantic result cache byte budget (estimated; entries are "
        "evicted byte-weighted LRU once exceeded)",
    )
    parser.add_argument(
        "--mem-limit",
        type=int,
        default=None,
        metavar="BYTES",
        help="process-wide query working-memory budget: queries spill "
        "or shed once reservations reach this many bytes (default: "
        "unbounded; per-query: SET QUERY MAXMEM)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the semantic result cache",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=32,
        metavar="N",
        help="execution thread-pool size (keep above --max-concurrent "
        "so overload reaches admission control)",
    )
    parser.add_argument(
        "--wal",
        metavar="DIR",
        help="journal every mutation to DIR before acknowledging it; an "
        "existing journal is recovered (checkpoint + replay) at startup",
    )
    parser.add_argument(
        "--sync",
        choices=("fsync", "os"),
        default="fsync",
        help="journal durability: fsync survives OS crashes, os only "
        "process crashes (default: fsync)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=512,
        metavar="N",
        help="compact the journal into a snapshot every N records",
    )
    parser.add_argument(
        "--standby-of",
        metavar="HOST:PORT",
        help="run as a read-only warm standby of the given primary "
        "(bootstraps over the wire, tails its journal; --wal makes the "
        "standby itself durable and promotable across restarts)",
    )
    parser.add_argument(
        "--repl-ack",
        type=int,
        default=0,
        metavar="N",
        help="semi-sync: wait for N standby acks before acknowledging "
        "a mutation (0 = asynchronous replication)",
    )
    parser.add_argument(
        "--events-log",
        metavar="PATH",
        help="append ops lifecycle events (start/drain, promote, "
        "quarantine, checkpoint, breaker) to PATH as JSONL (bounded)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="enable request tracing at head-sampling RATE in (0, 1] "
        "(default: off; runtime: SET TRACE SAMPLE <rate>|OFF)",
    )
    args = parser.parse_args(argv)

    from repro.obs import events as _ob_events
    from repro.obs import spans as _ob_spans

    if args.events_log:
        _ob_events.configure(args.events_log)
    if args.trace_sample is not None:
        if not 0.0 < args.trace_sample <= 1.0:
            parser.error("--trace-sample must be in (0, 1]")
        _ob_spans.set_sample_rate(args.trace_sample)

    # Crash-matrix chaos runs arm fault points inside this process via
    # the environment — the only channel that reaches a subprocess that
    # will be SIGKILLed (see repro.testing.faults.arm_from_env).
    from repro.testing import faults as _faults

    armed = _faults.arm_from_env()
    if armed:
        print(f"fault injection armed: {', '.join(armed)}", file=sys.stderr)

    if args.mem_limit is not None:
        if args.mem_limit < 1:
            parser.error("--mem-limit must be a positive byte count")
        from repro.resources.broker import BROKER

        BROKER.set_limit(args.mem_limit)

    import signal
    import threading

    shutdown = threading.Event()

    def _graceful(signum, frame):  # noqa: ARG001
        shutdown.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _graceful)

    if args.standby_of:
        from repro.replication.standby import StandbyServer

        standby = StandbyServer(
            args.standby_of,
            host=args.host,
            port=args.port,
            wal_dir=args.wal,
            sync=args.sync,
            checkpoint_every=args.checkpoint_every,
            cache_enabled=not args.no_cache,
            cache_size=args.cache_size,
            max_workers=args.workers,
        )
        host, port = standby.start()
        if standby.recovery is not None:
            print(standby.recovery.describe(), file=sys.stderr)
        print(f"repro standby listening on {host}:{port} "
              f"(replicating {args.standby_of}; Ctrl-C to stop)",
              flush=True)
        shutdown.wait()
        standby.stop()
        print("standby stopped (journal flushed)", flush=True)
        return 0

    wal = None
    if args.wal:
        from repro.replication.wal import WriteAheadLog

        wal = WriteAheadLog(
            args.wal, sync=args.sync, checkpoint_every=args.checkpoint_every
        )
    recovery = None
    if wal is not None and wal.exists():
        # The journal is the authoritative state: recovery wins over
        # --demo/--open (those only seed a FRESH journal directory).
        recovery = wal.recover()
        database = recovery.database
        print(recovery.describe(), file=sys.stderr)
    elif args.open_dir:
        from repro.engine.persist import load_database, verify_database

        database = load_database(args.open_dir)
        report = verify_database(database)
        if not report.clean:
            print(report.describe(), file=sys.stderr)
    elif args.demo:
        database = demo_database()
    else:
        database = Database()
    if wal is not None and not wal.exists():
        wal.begin(database)
    if args.max_concurrent is not None or args.queue is not None:
        database.governor.admission.configure(
            args.max_concurrent,
            max_queue=args.queue,
            queue_timeout_ms=args.queue_timeout_ms,
        )
    server = QueryServer(
        database,
        host=args.host,
        port=args.port,
        cache_enabled=not args.no_cache,
        cache_size=args.cache_size,
        cache_max_bytes=args.cache_bytes,
        max_workers=args.workers,
        wal=wal,
        repl_ack=args.repl_ack,
    )
    if recovery is not None:
        # the rebuilt token window: a client retrying a pre-crash
        # mutation must still dedup after the restart
        server.dedup.seed(recovery.tokens)
    host, port = server.start_in_thread()
    print(f"repro server listening on {host}:{port} (Ctrl-C to stop)",
          flush=True)
    shutdown.wait()
    # Graceful drain: stop accepting, finish in-flight handlers, then
    # flush and close the journal so every applied write is durable.
    server.stop()
    if wal is not None:
        wal.close()
    print("server stopped (journal flushed)", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="SQL shell with automatic summary tables"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="preload the paper's credit-card schema, data, and AST1",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="start connected to a repro serve server",
    )
    parser.add_argument(
        "script",
        nargs="?",
        help="SQL script to run instead of the interactive shell",
    )
    args = parser.parse_args(argv)
    database = demo_database() if args.demo else Database()
    shell = Shell(database)
    if args.connect:
        shell.handle_line(f"\\connect {args.connect}")
        if shell.remote is None:
            return 2
    try:
        if args.script:
            with open(args.script) as handle:
                shell.run(handle, interactive=False)
            # Non-interactive runs report failure through the exit code
            # so scripts and CI can gate on it.
            return 1 if shell.errors else 0
        interactive = sys.stdin.isatty()
        shell.run(sys.stdin, interactive=interactive)
        return 1 if shell.errors and not interactive else 0
    finally:
        if shell.remote is not None:
            shell.remote.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
