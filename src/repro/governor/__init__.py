"""Query governor: deadlines, cooperative cancellation, admission
control, and graceful degradation to base tables.

The package splits into:

* :mod:`repro.governor.budget` — the cooperative primitives
  (:class:`Budget`, :class:`Deadline`, :class:`CancellationToken`, and
  the per-query :class:`QueryBudget` that the five pipeline phases
  tick);
* :mod:`repro.governor.scope` — the thread-local slot instrumentation
  sites read (:func:`current` / :func:`activate`);
* :mod:`repro.governor.admission` — the bounded concurrent-query gate;
* :mod:`repro.governor.breaker` — the per-fingerprint circuit breaker
  over the match phase;
* :mod:`repro.governor.governor` — the :class:`QueryGovernor` facade a
  :class:`~repro.engine.database.Database` owns.

See ``docs/ROBUSTNESS.md`` ("Query governor & load shedding") for the
budget semantics and the degradation ladder.
"""

from repro.governor.admission import AdmissionController
from repro.governor.breaker import CircuitBreaker
from repro.governor.budget import (
    Budget,
    CancellationToken,
    Deadline,
    QueryBudget,
)
from repro.governor.governor import QueryGovernor
from repro.governor.scope import activate, current

__all__ = [
    "AdmissionController",
    "Budget",
    "CancellationToken",
    "CircuitBreaker",
    "Deadline",
    "QueryBudget",
    "QueryGovernor",
    "activate",
    "current",
]
