"""Admission control: a bounded concurrent-query gate with a wait queue.

The paper's engine inherits DB2's workload manager; this reproduction's
:class:`~repro.engine.database.Database` is plain Python that any number
of threads may call into. Without a gate, N concurrent expensive queries
each get 1/N of the process and *all* miss their deadlines — classic
congestion collapse. The controller bounds the damage the way servers
do: at most ``max_concurrent`` queries run, up to ``max_queue`` more
wait (bounded, so memory is too), and everything beyond that is shed
immediately with a typed :class:`~repro.errors.QueryRejected` the caller
can retry on.

Disabled (``max_concurrent is None``) the gate costs one attribute read
per query — the default, since a single-threaded shell needs no gate.
"""

from __future__ import annotations

import threading
import time

from repro.errors import QueryRejected
from repro.resources.broker import BROKER
from repro.testing import faults


class AdmissionController:
    """Semaphore-with-bounded-queue gate over query execution.

    ``admit()`` is used as a context manager around each query. The
    running/queued gauges and the admitted/rejected counters are
    injected by :class:`~repro.governor.governor.QueryGovernor` so they
    land in the database's :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        max_concurrent: int | None = None,
        max_queue: int = 4,
        queue_timeout_ms: float | None = 1000.0,
        metrics: dict | None = None,
    ):
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout_ms = queue_timeout_ms
        self.running = 0
        self.waiting = 0
        self._metrics = metrics or {}

    @property
    def enabled(self) -> bool:
        return self.max_concurrent is not None

    # ------------------------------------------------------------------
    def configure(
        self,
        max_concurrent: int | None,
        max_queue: int | None = None,
        queue_timeout_ms: float | None = None,
    ) -> None:
        """Reconfigure limits. Already-running queries keep their slots;
        the new limits apply to subsequent admissions."""
        with self._lock:
            self.max_concurrent = max_concurrent
            if max_queue is not None:
                self.max_queue = max_queue
            if queue_timeout_ms is not None:
                self.queue_timeout_ms = queue_timeout_ms
            # A raised limit may free logical slots for waiters.
            self._slot_freed.notify_all()

    # ------------------------------------------------------------------
    def admit(self) -> "_Admission":
        """Acquire a run slot (waiting in the bounded queue if needed)
        or raise :class:`QueryRejected`. Returns a context manager whose
        exit releases the slot."""
        faults.fire("governor.admit")
        if BROKER.admission_blocked():
            # Coordinated shedding: the process-wide memory broker is at
            # its limit, so even a free slot must not add more demand.
            self._count("rejected")
            raise QueryRejected(
                "memory broker at its limit; query shed before admission",
                details=self._load_details(),
            )
        if self.max_concurrent is None:
            return _Admission(self, held=False)
        with self._lock:
            if self.running < self.max_concurrent:
                self.running += 1
                self._gauge("running", self.running)
                self._count("admitted")
                return _Admission(self, held=True)
            if self.waiting >= self.max_queue:
                self._count("rejected")
                raise QueryRejected(
                    f"admission queue full ({self.running} running, "
                    f"{self.waiting} waiting; limits: "
                    f"{self.max_concurrent} concurrent, "
                    f"{self.max_queue} queued)",
                    details=self._load_details(),
                )
            self.waiting += 1
            self._gauge("waiting", self.waiting)
            try:
                budget = (
                    None
                    if self.queue_timeout_ms is None
                    else self.queue_timeout_ms / 1e3
                )
                while (
                    self.max_concurrent is not None
                    and self.running >= self.max_concurrent
                ):
                    # Recompute the remaining wait each iteration:
                    # Condition.wait can wake spuriously.
                    started = time.monotonic()
                    if not self._slot_freed.wait(timeout=budget):
                        self._count("rejected")
                        raise QueryRejected(
                            f"timed out after {self.queue_timeout_ms:g} ms "
                            "waiting for an admission slot",
                            details=self._load_details(),
                        )
                    if budget is not None:
                        budget -= time.monotonic() - started
                        if budget <= 0 and (
                            self.max_concurrent is not None
                            and self.running >= self.max_concurrent
                        ):
                            self._count("rejected")
                            raise QueryRejected(
                                f"timed out after {self.queue_timeout_ms:g} "
                                "ms waiting for an admission slot",
                                details=self._load_details(),
                            )
            finally:
                self.waiting -= 1
                self._gauge("waiting", self.waiting)
            if self.max_concurrent is None:
                # Disabled while we waited; run ungated.
                self._count("admitted")
                return _Admission(self, held=False)
            self.running += 1
            self._gauge("running", self.running)
            self._count("admitted")
            return _Admission(self, held=True)

    def _release(self) -> None:
        with self._lock:
            self.running -= 1
            self._gauge("running", self.running)
            self._slot_freed.notify()

    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        counter = self._metrics.get(name)
        if counter is not None:
            counter.inc()

    def _gauge(self, name: str, value: float) -> None:
        gauge = self._metrics.get("gauge_" + name)
        if gauge is not None:
            gauge.set(value)

    def _load_details(self) -> dict:
        """The structured load snapshot a ``QueryRejected`` carries so
        clients can back off intelligently. Lock-free on purpose — two
        of the raise sites already hold ``self._lock``, and slightly
        racy gauge reads are fine in an error payload."""
        return {
            "running": self.running,
            "waiting": self.waiting,
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "queue_timeout_ms": self.queue_timeout_ms,
            "reserved_bytes": BROKER.reserved(),
            "mem_limit": BROKER.limit,
        }

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "queue_timeout_ms": self.queue_timeout_ms,
                "running": self.running,
                "waiting": self.waiting,
                "reserved_bytes": BROKER.reserved(),
                "mem_limit": BROKER.limit,
            }


class _Admission:
    """Context manager holding (or not holding) one run slot."""

    __slots__ = ("_controller", "_held")

    def __init__(self, controller: AdmissionController, held: bool):
        self._controller = controller
        self._held = held

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._held:
            self._held = False
            self._controller._release()
