"""Per-fingerprint circuit breaker over the match phase.

A query shape that times out during matching once will usually time out
again: the navigator's search space is a function of the graph's
structure, not its literals. Retrying the doomed search on every arrival
burns the whole timeout budget before degrading — the worst of both
worlds. The breaker remembers, per structural fingerprint (the same
:func:`repro.matching.fingerprint.graph_fingerprint` key the decision
cache uses), how many *consecutive* match-phase timeouts a shape has
suffered; after ``threshold`` of them the circuit opens and the shape
skips matching entirely (straight to base tables, recorded as a
``circuit-open`` trace verdict) until ``cooldown_s`` elapses. The first
arrival after the cool-down is the half-open probe: it attempts the
match again, and a success closes the circuit while another timeout
re-opens it for a fresh cool-down.

States per fingerprint: **closed** (no entry / failures < threshold,
match runs), **open** (failures ≥ threshold and inside cool-down, match
skipped), **half-open** (cool-down elapsed, one probe runs).
"""

from __future__ import annotations

import threading
import time

from repro.obs import events as _events


class CircuitBreaker:
    """Tracks consecutive match timeouts per query fingerprint.

    ``clock`` is injectable for tests. The ``tripped`` counter (if
    provided via ``metrics``) increments once per closed→open
    transition, not per skipped query — skips are counted by the
    caller's ``governor_breaker_skips``.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        clock=time.monotonic,
        metrics: dict | None = None,
    ):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        #: fingerprint -> [consecutive_failures, opened_at | None]
        self._entries: dict = {}
        self._metrics = metrics or {}

    @property
    def active(self) -> bool:
        """Fast emptiness check so the happy path skips the lock."""
        return bool(self._entries)

    # ------------------------------------------------------------------
    def should_skip(self, fingerprint) -> bool:
        """True while the circuit for this shape is open (and not yet
        due for a half-open probe)."""
        if not self._entries:
            return False
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or entry[1] is None:
                return False
            if self._clock() - entry[1] >= self.cooldown_s:
                # Half-open: let this one probe through. Clearing
                # opened_at (but keeping the failure count) means a
                # concurrent second arrival also runs — acceptable: the
                # probe is best-effort, not a strict singleton.
                entry[1] = None
                _events.emit(
                    "breaker.half_open", fingerprint=str(fingerprint),
                    failures=entry[0],
                )
                return False
            return True

    def record_timeout(self, fingerprint) -> None:
        """A match phase for this shape hit its deadline/budget."""
        if fingerprint is None:
            return
        with self._lock:
            entry = self._entries.setdefault(fingerprint, [0, None])
            entry[0] += 1
            if entry[0] >= self.threshold and entry[1] is None:
                entry[1] = self._clock()
                counter = self._metrics.get("tripped")
                if counter is not None:
                    counter.inc()
                _events.emit(
                    "breaker.open", fingerprint=str(fingerprint),
                    failures=entry[0], cooldown_s=self.cooldown_s,
                )

    def record_success(self, fingerprint) -> None:
        """A match phase for this shape completed: close the circuit."""
        if fingerprint is None or not self._entries:
            return
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
        if entry is not None and entry[0] >= self.threshold:
            # only shapes that actually opened get a close event; a
            # sub-threshold success is just the counter resetting
            _events.emit(
                "breaker.close", fingerprint=str(fingerprint),
            )

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """State summary for ``\\governor`` and tests."""
        now = self._clock()
        with self._lock:
            open_count = 0
            half_open = 0
            for failures, opened_at in self._entries.values():
                if opened_at is None:
                    continue
                if now - opened_at >= self.cooldown_s:
                    half_open += 1
                else:
                    open_count += 1
            return {
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "tracked": len(self._entries),
                "open": open_count,
                "half_open_due": half_open,
            }
