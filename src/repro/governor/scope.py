"""Thread-local governor scope, mirroring :data:`repro.obs.trace.ACTIVE`.

The budget has to be visible from deep inside the parser, the navigator,
and the executor without threading a parameter through every call — the
pipeline predates the governor and its internal signatures are shared
with tests and benchmarks. A thread-local slot keeps the disarmed cost
to one attribute read per *entry point* (parser construction,
``Executor.run``, ``match_graphs``), after which inner loops test a
plain local against ``None``.

Each worker thread gets its own slot, so a scheduler refresh running
concurrently with a user query never sees the query's budget (and vice
versa) — the scheduler installs its own token via :func:`activate` when
it wants its apply/recompute work to be interruptible.
"""

from __future__ import annotations

import contextlib
import threading
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.governor.budget import QueryBudget

_STATE = threading.local()


def current() -> "QueryBudget | None":
    """The budget governing this thread's in-flight query, or None."""
    return getattr(_STATE, "budget", None)


@contextlib.contextmanager
def activate(budget: "QueryBudget | None") -> Iterator["QueryBudget | None"]:
    """Install ``budget`` as this thread's scope for the duration.

    ``activate(None)`` is a no-op passthrough, so callers can write one
    ``with activate(maybe_budget):`` without branching. Scopes nest:
    the previous budget is restored on exit (a refresh triggered from
    inside a governed query keeps the query's budget afterwards).
    """
    if budget is None:
        yield None
        return
    previous = getattr(_STATE, "budget", None)
    _STATE.budget = budget
    try:
        yield budget
    finally:
        _STATE.budget = previous
