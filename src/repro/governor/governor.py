"""The :class:`QueryGovernor` facade wired into every ``Database``.

One object owns the session's limit configuration (``SET QUERY TIMEOUT``
/ ``SET QUERY MAXROWS`` / the programmatic match budget), the admission
gate, and the circuit breaker, and mints a fresh
:class:`~repro.governor.budget.QueryBudget` per query. All of its
observable state lands in the database's
:class:`~repro.obs.metrics.MetricsRegistry` under ``governor.*`` names
so ``\\metrics`` and the Prometheus exposition pick it up for free.

Everything defaults to *off*: a freshly constructed governor reports
``enabled == False`` and :meth:`open_scope` returns ``None``, which the
database treats as "skip all governor plumbing" — that is the ≤3%
overhead contract the benchmark pins.
"""

from __future__ import annotations

from repro.governor.admission import AdmissionController
from repro.governor.breaker import CircuitBreaker
from repro.governor.budget import CancellationToken, Deadline, QueryBudget
from repro.resources.broker import BROKER

if False:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: sentinel for "no per-query override; use the governor's session value"
#: (None is a meaningful override — it means "limit off for this query")
UNSET = object()


class QueryGovernor:
    """Session-level governor configuration and per-query scope factory."""

    def __init__(self, metrics: "MetricsRegistry | None" = None):
        self.timeout_ms: float | None = None
        self.max_rows: int | None = None
        self.max_mem: int | None = None
        self.match_budget: int | None = None
        self._metrics = metrics
        self._budget_counters = {}
        admission_metrics = {}
        breaker_metrics = {}
        if metrics is not None:
            self._budget_counters = {
                "timeouts": metrics.counter(
                    "governor.timeouts",
                    "Queries killed by SET QUERY TIMEOUT during execute",
                ),
                "cancellations": metrics.counter(
                    "governor.cancellations",
                    "Queries stopped by a cancellation token",
                ),
                "maxrows_exceeded": metrics.counter(
                    "governor.maxrows_exceeded",
                    "Queries stopped by SET QUERY MAXROWS",
                ),
            }
            self.degradations = metrics.counter(
                "governor.degradations",
                "Match phases abandoned for base-table fallback "
                "(budget-exhausted verdicts)",
            )
            self.breaker_skips = metrics.counter(
                "governor.breaker_skips",
                "Match phases skipped because the circuit was open",
            )
            admission_metrics = {
                "admitted": metrics.counter(
                    "governor.admitted", "Queries admitted to run"
                ),
                "rejected": metrics.counter(
                    "governor.rejected",
                    "Queries shed by admission control (QueryRejected)",
                ),
                "gauge_running": metrics.gauge(
                    "governor.running", "Queries currently executing"
                ),
                "gauge_waiting": metrics.gauge(
                    "governor.waiting", "Queries waiting for an admission slot"
                ),
            }
            breaker_metrics = {
                "tripped": metrics.counter(
                    "governor.breaker_tripped",
                    "Circuit-breaker closed-to-open transitions",
                ),
            }
        else:
            self.degradations = None
            self.breaker_skips = None
        self.admission = AdmissionController(metrics=admission_metrics)
        self.breaker = CircuitBreaker(metrics=breaker_metrics)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when any per-query limit is configured (admission control
        gates independently via ``admission.enabled``)."""
        return (
            self.timeout_ms is not None
            or self.max_rows is not None
            or self.max_mem is not None
            or self.match_budget is not None
        )

    def open_scope(
        self,
        token: CancellationToken | None = None,
        timeout_ms=UNSET,
        max_rows=UNSET,
        max_mem=UNSET,
    ) -> QueryBudget | None:
        """Mint the budget for one query, or None when fully disarmed.

        A caller-supplied ``token`` forces a scope even with no limits
        set, so programmatic cancellation works without a timeout.
        ``timeout_ms`` / ``max_rows`` are per-query overrides of the
        governor's session limits — the query server passes each
        connection's ``SET`` state here so one client's limits never
        leak into another's queries (``None`` means "off for this
        query"; leaving them :data:`UNSET` keeps the session values).
        """
        effective_timeout = (
            self.timeout_ms if timeout_ms is UNSET else timeout_ms
        )
        effective_rows = self.max_rows if max_rows is UNSET else max_rows
        effective_mem = self.max_mem if max_mem is UNSET else max_mem
        if (
            effective_timeout is None
            and effective_rows is None
            and self.match_budget is None
            and token is None
            and effective_mem is None
            and not BROKER.limited
        ):
            return None
        deadline = (
            Deadline(effective_timeout)
            if effective_timeout is not None
            else None
        )
        reservation = (
            BROKER.reserve(limit=effective_mem)
            if effective_mem is not None or BROKER.limited
            else None
        )
        return QueryBudget(
            deadline=deadline,
            token=token,
            max_rows=effective_rows,
            match_budget=self.match_budget,
            counters=self._budget_counters,
            reservation=reservation,
        )

    def note_degradation(self) -> None:
        if self.degradations is not None:
            self.degradations.inc()

    def note_breaker_skip(self) -> None:
        if self.breaker_skips is not None:
            self.breaker_skips.inc()

    # ------------------------------------------------------------------
    def describe_lines(self) -> list[str]:
        """Rendered by the CLI's ``\\governor`` command."""

        def onoff(value, unit=""):
            return f"{value:g}{unit}" if value is not None else "off"

        admission = self.admission.snapshot()
        breaker = self.breaker.snapshot()
        lines = [
            f"query timeout   {onoff(self.timeout_ms, ' ms')}",
            f"query maxrows   {onoff(self.max_rows)}",
            f"query maxmem    {onoff(self.max_mem, ' bytes')}",
            f"match budget    {onoff(self.match_budget, ' pairings')}",
        ]
        if BROKER.limited:
            snap = BROKER.snapshot()
            lines.append(
                f"memory broker   {snap['limit']} bytes process-wide "
                f"({snap['reserved_bytes']} reserved, "
                f"{snap['denials']} denial(s), {snap['sheds']} shed(s))"
            )
        if admission["enabled"]:
            lines.append(
                f"admission       {admission['max_concurrent']} concurrent, "
                f"{admission['max_queue']} queued, "
                f"{admission['queue_timeout_ms']:g} ms queue wait "
                f"({admission['running']} running, "
                f"{admission['waiting']} waiting)"
            )
        else:
            lines.append("admission       off (unbounded concurrency)")
        lines.append(
            f"circuit breaker {breaker['threshold']} consecutive timeouts "
            f"open for {breaker['cooldown_s']:g} s "
            f"({breaker['tracked']} shape(s) tracked, "
            f"{breaker['open']} open)"
        )
        return lines
