"""The governor's cooperative primitives: Budget, Deadline, token, scope.

The paper's rewrite engine runs inside DB2's compiler, where a runaway
match search or a pathological plan is bounded by the server's workload
manager. This reproduction has no host server, so the bound has to be
cooperative: every phase of query processing (parse / bind / match /
compensate / execute) periodically *ticks* the active
:class:`QueryBudget`, which checks three independent limits:

* a :class:`CancellationToken` — an externally triggered kill switch
  (scheduler shutdown, ``REFRESH`` preemption, an impatient caller);
* a :class:`Deadline` — the wall-clock budget from ``SET QUERY
  TIMEOUT``;
* a :class:`Budget` — a work-unit allowance (match pairings, and the
  ``SET QUERY MAXROWS`` high-water mark on materialized rows).

The *degradation ladder* lives in the phase rules: the token cancels in
any phase, but the deadline only ever raises in the match phase (as
:class:`~repro.errors.MatchBudgetExceeded`, which the rewrite sandbox
converts into base-table execution — matching is optional work) and the
execute phase (as :class:`~repro.errors.QueryTimeout` — execution is
not). Parse and bind are bounded by the input text, so expiring there
just means the match phase starts already exhausted and degrades
immediately. A degradation *disarms* the deadline for the rest of the
query: having spent the budget searching for a better plan, killing the
base plan too would punish the caller twice.

Zero cost when disarmed: :class:`repro.engine.database.Database` only
creates a scope when some limit is configured, every instrumentation
site reads the thread-local slot once (see :mod:`repro.governor.scope`)
and guards on ``is not None`` — mirroring :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import time

from repro.errors import (
    BudgetExhausted,
    MatchBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
)

#: phases a tick may be charged to, in pipeline order
PHASES = ("parse", "bind", "match", "compensate", "execute")

#: accumulated ticks between deadline/token checkpoints in the batched
#: phases (parse/bind/execute); match pairings checkpoint on every tick
#: because a single pairing is already a heavyweight unit of work
DEFAULT_CHECK_EVERY = 256


class CancellationToken:
    """A thread-safe one-shot kill switch, checked cooperatively.

    ``cancel()`` may be called from any thread; the query observes it at
    its next budget checkpoint and raises
    :class:`~repro.errors.QueryCancelled`.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason: str | None = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, reason: str = "cancelled") -> None:
        # reason before flag: a checker that sees the flag must see why
        self.reason = reason
        self._cancelled = True

    def check(self) -> None:
        if self._cancelled:
            raise QueryCancelled(self.reason or "cancelled")


class Deadline:
    """A wall-clock budget (monotonic), disarmable after degradation."""

    __slots__ = ("timeout_ms", "expires_at", "armed", "_clock")

    def __init__(self, timeout_ms: float, clock=time.monotonic):
        self.timeout_ms = timeout_ms
        self._clock = clock
        self.expires_at = clock() + timeout_ms / 1e3
        self.armed = True

    @property
    def expired(self) -> bool:
        return self.armed and self._clock() >= self.expires_at

    def remaining_ms(self) -> float:
        return max(0.0, (self.expires_at - self._clock()) * 1e3)

    def disarm(self) -> None:
        """Stop enforcing (the degradation ladder's second rung)."""
        self.armed = False


class Budget:
    """A work-unit allowance: ``charge`` until ``limit`` is exceeded."""

    __slots__ = ("limit", "used", "what")

    def __init__(self, limit: int | None, what: str = "work units"):
        self.limit = limit
        self.used = 0
        self.what = what

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.used > self.limit

    def charge(self, amount: int = 1) -> None:
        self.used += amount
        if self.limit is not None and self.used > self.limit:
            raise BudgetExhausted(
                f"budget of {self.limit} {self.what} exhausted "
                f"({self.used} used)"
            )


class QueryBudget:
    """One query's governor scope: the Budget/Deadline/token trio plus
    per-phase tick accounting (rendered by ``EXPLAIN ANALYZE``).

    ``max_rows`` is the ``SET QUERY MAXROWS`` limit — a *high-water* cap
    on the rows the executor may materialize in any one intermediate or
    result table, so a runaway join is caught while it explodes, not
    after. ``match_budget`` bounds navigator box-pairings.
    ``counters`` is an optional dict of
    :class:`repro.obs.metrics.Counter` objects (``timeouts``,
    ``cancellations``, ``maxrows_exceeded``) bumped at the raise sites.
    """

    __slots__ = (
        "deadline", "token", "max_rows", "match_pairings", "check_every",
        "phase_ticks", "degraded", "degraded_reason", "fingerprint",
        "reservation", "_since_check", "_counters",
    )

    def __init__(
        self,
        deadline: Deadline | None = None,
        token: CancellationToken | None = None,
        max_rows: int | None = None,
        match_budget: int | None = None,
        check_every: int = DEFAULT_CHECK_EVERY,
        counters: dict | None = None,
        reservation=None,
    ):
        self.deadline = deadline
        self.token = token or CancellationToken()
        self.max_rows = max_rows
        #: the query's MemoryReservation (``SET QUERY MAXMEM`` /
        #: ``--mem-limit``), or None when memory is unbudgeted; the
        #: executor's spill-capable operators charge against it
        self.reservation = reservation
        self.match_pairings = Budget(match_budget, "match pairings")
        self.check_every = check_every
        self.phase_ticks: dict[str, int] = {}
        self.degraded = False
        self.degraded_reason: str | None = None
        #: the query graph's structural fingerprint, stashed by the
        #: rewrite fast path *before* any in-place rewriting so the
        #: circuit breaker can key on the pristine shape
        self.fingerprint = None
        self._since_check = 0
        self._counters = counters or {}

    # -- cooperative check sites ---------------------------------------
    def tick(self, amount: int = 1, phase: str = "execute") -> None:
        """Charge ``amount`` work units to ``phase``; every
        ``check_every`` accumulated units runs a checkpoint."""
        self.phase_ticks[phase] = self.phase_ticks.get(phase, 0) + amount
        self._since_check += amount
        if self._since_check >= self.check_every:
            self._since_check = 0
            self.checkpoint(phase)

    def tick_match(self, amount: int = 1) -> None:
        """One navigator box-pairing: charged, budgeted, and
        checkpointed immediately (pairings are coarse work units)."""
        self.phase_ticks["match"] = self.phase_ticks.get("match", 0) + amount
        self.token.check()
        self.match_pairings.used += amount
        if self.match_pairings.exhausted:
            raise MatchBudgetExceeded(
                f"match budget of {self.match_pairings.limit} pairings "
                f"exhausted ({self.match_pairings.used} attempted)"
            )
        self._check_match_deadline()

    def enter_match(self) -> None:
        """Called as the match phase begins: a deadline that already
        expired (during parse/bind) degrades immediately rather than
        letting the navigator start work it cannot afford."""
        self.token.check()
        self._check_match_deadline()

    def checkpoint(self, phase: str = "execute") -> None:
        """The full limit check, phase-aware (the degradation ladder)."""
        token = self.token
        if token.cancelled:
            self._count("cancellations")
            token.check()
        deadline = self.deadline
        if deadline is None or not deadline.armed:
            return
        if phase == "match":
            self._check_match_deadline()
        elif phase == "execute" and deadline.expired:
            self._count("timeouts")
            raise QueryTimeout(
                f"query exceeded SET QUERY TIMEOUT "
                f"{deadline.timeout_ms:g} ms (expired during execute)"
            )
        # parse/bind: bounded by the statement text; never killed here.

    def check_rows(self, produced: int, what: str = "rows") -> None:
        """The MAXROWS high-water check on one materialized table."""
        if self.max_rows is not None and produced > self.max_rows:
            self._count("maxrows_exceeded")
            raise BudgetExhausted(
                f"SET QUERY MAXROWS {self.max_rows} exceeded "
                f"({produced} {what} materialized)"
            )

    def _check_match_deadline(self) -> None:
        deadline = self.deadline
        if deadline is not None and deadline.expired:
            raise MatchBudgetExceeded(
                f"SET QUERY TIMEOUT {deadline.timeout_ms:g} ms expired "
                "during the match phase"
            )

    # -- degradation ---------------------------------------------------
    def mark_degraded(self, reason: str) -> None:
        """Record that matching was abandoned and disarm the deadline so
        the base-table plan runs to completion (never punish the query
        twice for the optimizer's spending)."""
        self.degraded = True
        self.degraded_reason = reason
        if self.deadline is not None:
            self.deadline.disarm()

    # -- presentation --------------------------------------------------
    def _count(self, name: str) -> None:
        counter = self._counters.get(name)
        if counter is not None:
            counter.inc()

    def describe_lines(self) -> list[str]:
        """Rendered for the ``EXPLAIN ANALYZE`` governor section."""
        lines = []
        if self.deadline is not None:
            state = (
                "disarmed after degradation"
                if not self.deadline.armed
                else f"{self.deadline.remaining_ms():.3f} ms remaining"
            )
            lines.append(
                f"  timeout     {self.deadline.timeout_ms:g} ms ({state})"
            )
        else:
            lines.append("  timeout     off")
        lines.append(
            "  maxrows     "
            + (str(self.max_rows) if self.max_rows is not None else "off")
        )
        if self.reservation is not None:
            lines.extend(
                "  " + line for line in self.reservation.describe_lines()
            )
        if self.match_pairings.limit is not None:
            lines.append(
                f"  match budget {self.match_pairings.limit} pairings "
                f"({self.match_pairings.used} used)"
            )
        ticks = ", ".join(
            f"{phase}={self.phase_ticks[phase]}"
            for phase in PHASES
            if phase in self.phase_ticks
        )
        lines.append(f"  ticks       {ticks or '(none)'}")
        if self.degraded:
            lines.append(
                f"  verdict     budget-exhausted ({self.degraded_reason}); "
                "rewriting abandoned, ran on base tables"
            )
        return lines
