"""Automatic Summary Table management: definitions, maintenance, advisor."""

from repro.asts.definition import SummaryTable

__all__ = ["SummaryTable"]
