"""Automatic Summary Table (AST) definitions.

An AST is a materialized view: an SQL query with aggregation whose result
is stored as a table and used *transparently* during optimization. This
module holds the definition object; materialization and registration live
in :class:`repro.engine.database.Database`, incremental maintenance in
:mod:`repro.asts.maintenance`, and selection in :mod:`repro.asts.advisor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import TableSchema
from repro.engine.table import Table
from repro.qgm.boxes import QueryGraph
from repro.refresh.policy import RefreshState


@dataclass
class SummaryTable:
    """A materialized summary table.

    ``graph`` is the defining query's QGM graph (the subsumer side of
    matching); ``table`` holds the materialized rows; ``schema`` exposes
    the AST as an ordinary table so rewritten queries can scan it.
    ``refresh`` records the refresh mode (immediate | deferred) and, for
    deferred summaries, how far behind the delta log the rows are — the
    rewriter only offers the summary to queries whose freshness
    tolerance admits that staleness.
    """

    name: str
    sql: str
    graph: QueryGraph
    schema: TableSchema
    table: Table
    enabled: bool = True
    #: populated at materialization time; used by the cost model
    stats: dict[str, float] = field(default_factory=dict)
    #: refresh mode plus staleness record (see repro.refresh.policy)
    refresh: RefreshState = field(default_factory=RefreshState)

    @property
    def row_count(self) -> int:
        return len(self.table)

    def base_tables(self) -> set[str]:
        """Base tables the AST summarizes (lower-cased names)."""
        return self.graph.base_tables()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SummaryTable({self.name}, {self.row_count} rows)"
