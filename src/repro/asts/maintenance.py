"""Incremental maintenance of summary tables — related problem (c).

The paper points to Mumick et al. [10] for keeping ASTs consistent when
base tables change. We implement the standard summary-delta method:

* compute the AST's defining query over the *delta* rows (joining full
  dimension tables),
* merge the delta groups into the materialized table: COUNT and SUM
  combine additively, MIN/MAX combine by comparison on inserts,
* on deletes, COUNT/SUM subtract and a group vanishes when its row count
  reaches zero (a COUNT(*) output must be present to detect this; MIN and
  MAX are not self-maintainable under deletes).

When a summary is not self-maintainable for the given change (AVG or
DISTINCT aggregates, HAVING predicates, the changed table appearing more
than once, ...), we fall back to full recomputation and say so in the
report — silently degrading would hide exactly the cost [10] is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.asts.definition import SummaryTable
from repro.engine.executor import Executor
from repro.engine.table import Row, Table
from repro.errors import MaintenanceError
from repro.expr.nodes import AggCall, ColumnRef
from repro.qgm.boxes import BaseTableBox, GroupByBox, SelectBox


@dataclass
class MaintenanceReport:
    """What happened to each summary table after a base-table change."""

    incremental: list[str] = field(default_factory=list)
    recomputed: dict[str, str] = field(default_factory=dict)  # name -> reason
    unaffected: list[str] = field(default_factory=list)
    #: affected deferred summaries whose refresh was staged, not applied
    deferred: list[str] = field(default_factory=list)

    def was_incremental(self, name: str) -> bool:
        return name in self.incremental


def maintain_insert(
    database,
    table_name: str,
    rows: Iterable[Row],
    summaries: Iterable[SummaryTable] | None = None,
) -> MaintenanceReport:
    """Load ``rows`` into ``table_name`` and bring summary tables up to
    date, incrementally where possible.

    ``summaries`` restricts maintenance to a subset (the deferred-refresh
    path maintains only REFRESH IMMEDIATE summaries inline and stages the
    rest in the delta log); ``None`` maintains every summary table.
    """
    rows = [tuple(row) for row in rows]
    targets = _targets(database, summaries)
    report = MaintenanceReport()
    delta = _delta_results(database, table_name, rows, report, False, targets)
    database.load(table_name, rows)
    _apply(database, report, delta, +1, targets)
    return report


def maintain_delete(
    database,
    table_name: str,
    rows: Iterable[Row],
    summaries: Iterable[SummaryTable] | None = None,
) -> MaintenanceReport:
    """Remove exact ``rows`` from ``table_name`` and maintain summaries
    (``summaries`` restricts the maintained subset as in
    :func:`maintain_insert`)."""
    rows = [tuple(row) for row in rows]
    targets = _targets(database, summaries)
    report = MaintenanceReport()
    delta = _delta_results(database, table_name, rows, report, True, targets)
    table = database.table(table_name)
    for row in rows:
        try:
            table.rows.remove(row)
        except ValueError:
            raise MaintenanceError(
                f"row {row!r} not present in {table_name!r}"
            ) from None
    _apply(database, report, delta, -1, targets)
    return report


def apply_pending(database, summary: SummaryTable, batches) -> str | None:
    """Merge staged delta-log batches into one deferred summary table.

    The batching trick that makes deferred refresh cheap: because the
    changed table appears exactly once in a self-maintainable view, a
    batch's summary-delta query never touches the changed table's stored
    contents — so *all* staged insert rows collapse into one delta
    evaluation and all staged delete rows into another, regardless of how
    many INSERT/DELETE statements produced them. Inserts merge first so a
    delete can never hit a group a staged insert was about to create
    (COUNT/SUM merging is commutative, and deletes against MIN/MAX
    already force recomputation via :func:`_analyze`).

    Returns ``None`` when the merge was applied, else the reason the
    summary is not self-maintainable for this pending set — the caller
    (the refresh scheduler) falls back to full recomputation. Requires
    every *other* base table of the summary to be unchanged since the
    summary's last refresh, which holds exactly when the pending batches
    name a single table: any change to a dependency is staged for this
    summary too.
    """
    tables = {batch.table for batch in batches}
    if not tables:
        return None
    if len(tables) > 1:
        return "pending deltas touch more than one base table"
    (table_name,) = tables
    deleting = any(batch.sign < 0 for batch in batches)
    shape = _analyze(summary, table_name, deleting)
    if shape is None:
        return None  # log over-approximated: the summary is unaffected
    if isinstance(shape, str):
        return shape
    schema = database.catalog.table(table_name)
    for sign in (+1, -1):
        rows = [row for batch in batches if batch.sign == sign for row in batch.rows]
        if not rows:
            continue
        store = dict(database.tables)
        store[schema.name.lower()] = Table(schema.column_names, rows)
        delta = Executor(store).run(summary.graph)
        _merge(summary, shape, delta, sign)
    summary.stats["rows"] = float(len(summary.table))
    return None


def _targets(database, summaries) -> list[SummaryTable]:
    if summaries is None:
        return list(database.summary_tables.values())
    return list(summaries)


# ----------------------------------------------------------------------
def _delta_results(
    database,
    table_name: str,
    rows: list[Row],
    report: MaintenanceReport,
    deleting: bool,
    summaries: list[SummaryTable],
) -> dict[str, tuple["_SummaryShape", Table]]:
    """Per summary: its shape plus the defining query evaluated over the
    delta (computed *before* the base table is modified, so joins against
    dimension tables see a consistent state)."""
    delta_store = dict(database.tables)
    schema = database.catalog.table(table_name)
    delta_store[schema.name.lower()] = Table(schema.column_names, rows)

    results: dict[str, tuple[_SummaryShape, Table]] = {}
    for summary in summaries:
        shape = _analyze(summary, table_name, deleting)
        if shape is None:
            report.unaffected.append(summary.name)
            continue
        if isinstance(shape, str):
            report.recomputed[summary.name] = shape
            continue
        delta = Executor(delta_store).run(summary.graph)
        results[summary.name.lower()] = (shape, delta)
    return results


def _apply(
    database,
    report: MaintenanceReport,
    delta: dict[str, tuple["_SummaryShape", Table]],
    sign: int,
    summaries: list[SummaryTable],
) -> None:
    for summary in summaries:
        if summary.name in report.unaffected:
            continue
        if summary.name in report.recomputed:
            data = database.execute_graph(summary.graph)
            summary.table.rows[:] = data.rows
            continue
        shape, rows = delta[summary.name.lower()]
        _merge(summary, shape, rows, sign)
        report.incremental.append(summary.name)
        summary.stats["rows"] = float(len(summary.table))


@dataclass
class _SummaryShape:
    """Column classification of a maintainable summary."""

    key_indexes: list[int]
    agg_columns: list[tuple[int, str]]  # (column index, func)
    count_index: int | None  # a COUNT(*)-like column, for group deletion


def _analyze(summary: SummaryTable, table_name: str, deleting: bool):
    """The summary's shape if self-maintainable, else a reason string."""
    occurrences = sum(
        1
        for box in summary.graph.boxes()
        if isinstance(box, BaseTableBox)
        and box.table_name.lower() == table_name.lower()
    )
    if occurrences == 0:
        return None  # unaffected: nothing to do
    if occurrences > 1:
        return "changed table appears more than once (non-linear view)"

    root = summary.graph.root
    if not isinstance(root, SelectBox) or root.predicates or root.distinct:
        return "root box filters rows (HAVING/DISTINCT) — not self-maintainable"
    quantifiers = root.quantifiers()
    if len(quantifiers) != 1 or not isinstance(quantifiers[0].box, GroupByBox):
        return "view is not a single aggregation block"
    groupby: GroupByBox = quantifiers[0].box

    key_indexes: list[int] = []
    agg_columns: list[tuple[int, str]] = []
    count_index: int | None = None
    for index, qcl in enumerate(root.outputs):
        if not isinstance(qcl.expr, ColumnRef):
            return f"output {qcl.name!r} is not a simple projection"
        source = groupby.output(qcl.expr.name).expr
        if isinstance(source, AggCall):
            if source.distinct:
                return f"{qcl.name!r} uses DISTINCT aggregation"
            if source.func == "avg":
                return f"{qcl.name!r} is AVG (store SUM and COUNT instead)"
            if source.func in ("min", "max") and deleting:
                return f"{qcl.name!r} is {source.func.upper()} — not maintainable under deletes"
            if source.func == "count":
                nullable_arg = source.arg is not None
                if count_index is None and not nullable_arg:
                    count_index = index
            agg_columns.append((index, source.func))
        else:
            key_indexes.append(index)
    grouping_names = {
        qcl.expr.name
        for qcl in root.outputs
        if isinstance(qcl.expr, ColumnRef)
        and not isinstance(groupby.output(qcl.expr.name).expr, AggCall)
    }
    if set(groupby.grouping_items) - grouping_names:
        return "a grouping column is projected away — groups are ambiguous"
    if deleting and count_index is None:
        return "no COUNT(*) column to detect emptied groups"
    return _SummaryShape(key_indexes, agg_columns, count_index)


def _merge(summary: SummaryTable, shape: _SummaryShape, delta: Table, sign: int) -> None:
    table = summary.table
    index: dict[tuple, int] = {}
    for position, row in enumerate(table.rows):
        index[tuple(row[i] for i in shape.key_indexes)] = position

    doomed: list[int] = []
    for delta_row in delta.rows:
        key = tuple(delta_row[i] for i in shape.key_indexes)
        position = index.get(key)
        if position is None:
            if sign < 0:
                raise MaintenanceError(
                    f"delete delta for {summary.name} hits unknown group {key!r}"
                )
            table.rows.append(delta_row)
            index[key] = len(table.rows) - 1
            continue
        merged = list(table.rows[position])
        for column, func in shape.agg_columns:
            merged[column] = _combine(func, merged[column], delta_row[column], sign)
        table.rows[position] = tuple(merged)
        if (
            sign < 0
            and shape.count_index is not None
            and merged[shape.count_index] == 0
        ):
            doomed.append(position)
    for position in sorted(doomed, reverse=True):
        del table.rows[position]


def _combine(func: str, old, new, sign: int):
    if func == "count":
        return (old or 0) + sign * (new or 0)
    if func == "sum":
        if new is None:
            return old
        if old is None:
            return sign * new if sign > 0 else None
        return old + sign * new
    if func == "min":
        if new is None:
            return old
        return new if old is None or new < old else old
    if func == "max":
        if new is None:
            return old
        return new if old is None or new > old else old
    raise MaintenanceError(f"cannot combine aggregate {func!r}")
