"""AST selection under a space budget — related problem (a).

The paper cites Harinarayan/Rajaraman/Ullman ("Implementing Data Cubes
Efficiently") for choosing which summary tables to create. We implement
that algorithm: candidate views are the cuboids of a fact table's
dimension-attribute lattice, the cost of answering a cuboid query is the
size of the smallest materialized view that subsumes it (the raw fact
table is always available), and views are picked greedily by total
benefit until the row budget is exhausted.

The selected views are ordinary SQL texts; feeding them to
``Database.create_summary_table`` plugs the advisor's output straight
into the matcher.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CandidateView:
    """One cuboid of the lattice."""

    attributes: frozenset[str]
    rows: int
    sql: str

    def answers(self, other: "CandidateView") -> bool:
        """Can this view answer queries grouped as ``other``?"""
        return other.attributes <= self.attributes

    def label(self) -> str:
        return "(" + ", ".join(sorted(self.attributes)) + ")" if self.attributes else "()"


@dataclass
class AdvisorResult:
    selected: list[CandidateView]
    steps: list[tuple[CandidateView, float]] = field(default_factory=list)
    total_rows: int = 0

    def describe(self) -> str:
        lines = [
            f"pick {view.label():<40} rows={view.rows:<8} benefit={benefit:.0f}"
            for view, benefit in self.steps
        ]
        lines.append(f"total materialized rows: {self.total_rows}")
        return "\n".join(lines)


class Advisor:
    """Greedy HRU-style lattice advisor.

    ``attributes`` maps a column alias to its grouping expression over the
    fact table (e.g. ``{"year": "year(date)", "flid": "flid"}``);
    ``measures`` are the aggregate select-items every candidate carries
    (default ``COUNT(*)``, which rules (a)-(c) can re-derive the most
    from).
    """

    def __init__(
        self,
        database,
        fact_table: str,
        attributes: dict[str, str],
        measures: list[str] | None = None,
        estimate: str = "exact",
    ):
        if estimate not in ("exact", "sample"):
            raise ValueError("estimate must be 'exact' or 'sample'")
        self._database = database
        self._fact = fact_table
        self._attributes = dict(attributes)
        self._measures = list(measures or ["count(*) as cnt"])
        self._estimate = estimate
        self._candidates: list[CandidateView] | None = None
        self._projection = None  # lazy: one row per fact row, one column
        self._projection_stats = None  # per grouping attribute

    # ------------------------------------------------------------------
    def candidates(self) -> list[CandidateView]:
        """All cuboids with measured (exact) sizes, largest first."""
        if self._candidates is not None:
            return self._candidates
        names = sorted(self._attributes)
        found: list[CandidateView] = []
        for size in range(len(names), -1, -1):
            for subset in itertools.combinations(names, size):
                view = self._build_candidate(frozenset(subset))
                found.append(view)
        self._candidates = found
        return found

    def _build_candidate(self, attributes: frozenset[str]) -> CandidateView:
        select_parts = [
            f"{self._attributes[name]} as {name}" for name in sorted(attributes)
        ]
        select_parts.extend(self._measures)
        sql = f"select {', '.join(select_parts)} from {self._fact}"
        if attributes:
            keys = ", ".join(self._attributes[name] for name in sorted(attributes))
            sql += f" group by {keys}"
        else:
            sql += " group by grouping sets (())"
        if self._estimate == "sample":
            rows = self._estimate_rows(attributes)
        else:
            rows = self._measure_rows(sql)
        return CandidateView(attributes, rows, sql)

    def _measure_rows(self, sql: str) -> int:
        probe = f"select count(*) as n from ({sql}) as probe"
        result = self._database.execute(probe, use_summary_tables=False)
        return int(result.rows[0][0])

    def _estimate_rows(self, attributes: frozenset[str]) -> int:
        """Sampling estimate of a cuboid's cardinality: one projection
        scan up front, then a 2k-row sample per lattice node instead of a
        full GROUP BY (see :mod:`repro.engine.stats`)."""
        from repro.engine.stats import collect_stats, estimate_group_count

        if self._projection is None:
            select_parts = [
                f"{expr} as {name}" for name, expr in sorted(self._attributes.items())
            ]
            self._projection = self._database.execute(
                f"select {', '.join(select_parts)} from {self._fact}",
                use_summary_tables=False,
            )
            self._projection_stats = collect_stats(self._projection)
        return estimate_group_count(
            self._projection,
            sorted(attributes),
            stats=self._projection_stats,
        )

    # ------------------------------------------------------------------
    def select(
        self, budget_rows: int, max_views: int | None = None
    ) -> AdvisorResult:
        """Greedy benefit-per-HRU selection under a total row budget."""
        lattice = self.candidates()
        fact_rows = len(self._database.table(self._fact))
        # cost[w] = rows of the cheapest materialized view answering w;
        # initially only the raw fact table is available.
        cost = {view.attributes: fact_rows for view in lattice}
        result = AdvisorResult(selected=[])
        remaining = [view for view in lattice if view.rows <= budget_rows]
        while remaining and (max_views is None or len(result.selected) < max_views):
            best: CandidateView | None = None
            best_benefit = 0.0
            for view in remaining:
                if result.total_rows + view.rows > budget_rows:
                    continue
                benefit = sum(
                    max(0, cost[w.attributes] - view.rows)
                    for w in lattice
                    if view.answers(w)
                )
                if benefit > best_benefit:
                    best = view
                    best_benefit = benefit
            if best is None:
                break
            result.selected.append(best)
            result.steps.append((best, best_benefit))
            result.total_rows += best.rows
            remaining.remove(best)
            for w in lattice:
                if best.answers(w) and best.rows < cost[w.attributes]:
                    cost[w.attributes] = best.rows
        return result

    def create_selected(
        self, result: AdvisorResult, prefix: str = "ADV"
    ) -> list[str]:
        """Materialize the chosen views as summary tables; returns names."""
        names = []
        for index, view in enumerate(result.selected, start=1):
            name = f"{prefix}{index}"
            self._database.create_summary_table(name, view.sql)
            names.append(name)
        return names
