"""The write-ahead journal: acknowledged writes survive a SIGKILL.

Every mutation the query server acknowledges — INSERT, DELETE, DDL,
REFRESH — is appended here *before* the reply is sent. A record is one
line, the same ``crc32hex SP json`` framing persistence format v2 uses
(:mod:`repro.engine.persist`), carrying a monotonic LSN, the statement
kind and SQL text, and (for client retries) the idempotency token plus
the status string the original execution produced.

**Group commit.** Appending is two steps: :meth:`WriteAheadLog.stage`
assigns the LSN and buffers the framed line (called under the server's
mutation lock, so journal order always equals apply order), and
:meth:`WriteAheadLog.commit` waits until the record is durable. The
first committer becomes the *leader*: it writes every buffered line in
one ``write`` + one ``fsync`` while later committers wait on the
condition variable — N concurrent writers pay ~1 fsync, not N.
``sync="fsync"`` (the default) survives OS crashes; ``sync="os"`` skips
the fsync — the bytes are in the kernel, so a SIGKILL'd *process* loses
nothing, but a machine crash may.

**Checkpoint-compaction.** The journal does not grow forever: every
``checkpoint_every`` records the server snapshots the whole database
with :func:`repro.engine.persist.save_database` into a fresh
``checkpoint-<lsn>/`` directory, commits the checkpoint by atomically
renaming ``wal.meta.json`` (which also carries the dedup-token window),
rotates to a new journal segment, and deletes everything the snapshot
covers. A crash mid-checkpoint is harmless — the meta rename is the
commit point, and an orphaned half-written checkpoint directory is
swept on the next recovery.

**Recovery** (:meth:`WriteAheadLog.recover`) loads the checkpoint
snapshot (through ``load_database`` + the ``verify_database``
quarantine pass), replays the journal tail through ``Database.run_sql``
— the regrouping/compensation rules guarantee replayed deltas
reconverge summaries bit-identically — truncates a torn trailing
record, and rebuilds the token window from the checkpoint plus the
replayed tail.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError, WalError, WalGapError
from repro.obs import events as _events
from repro.obs import spans as _spans
from repro.testing import faults

#: journal segment file name pattern; the number is the lowest LSN the
#: segment may contain
_SEGMENT_PATTERN = "journal-%012d.jsonl"
_SEGMENT_PREFIX = "journal-"
_META_NAME = "wal.meta.json"
_CHECKPOINT_PREFIX = "checkpoint-"

META_VERSION = 1

#: statement kinds the journal records (everything else — SELECT,
#: session SETs, EXPLAIN — is not a durable mutation)
KINDS = ("insert", "delete", "ddl", "refresh")


def mutation_kind(statement) -> str | None:
    """The journal ``kind`` for a parsed statement, or ``None`` when the
    statement is not a journaled mutation."""
    from repro.sql.statements import (
        CreateSummaryTable,
        CreateTable,
        DeleteValues,
        DropSummaryTable,
        InsertValues,
        RefreshSummaryTables,
    )

    if isinstance(statement, InsertValues):
        return "insert"
    if isinstance(statement, DeleteValues):
        return "delete"
    if isinstance(statement, (CreateTable, CreateSummaryTable, DropSummaryTable)):
        return "ddl"
    if isinstance(statement, RefreshSummaryTables):
        return "refresh"
    return None


@dataclass(frozen=True)
class WalRecord:
    """One journaled mutation."""

    lsn: int
    kind: str  # "insert" | "delete" | "ddl" | "refresh"
    sql: str
    #: client idempotency token (None for tokenless mutations)
    token: str | None = None
    #: the status string the original execution returned — replayed to
    #: the client when a retry dedups against this record
    status: str = ""

    def payload(self) -> str:
        entry: dict = {"lsn": self.lsn, "kind": self.kind, "sql": self.sql}
        if self.token is not None:
            entry["token"] = self.token
        if self.status:
            entry["status"] = self.status
        return json.dumps(entry, separators=(",", ":"))

    @classmethod
    def from_payload(cls, payload: str) -> "WalRecord":
        entry = json.loads(payload)
        return cls(
            lsn=entry["lsn"],
            kind=entry["kind"],
            sql=entry["sql"],
            token=entry.get("token"),
            status=entry.get("status", ""),
        )


def _frame(payload: str) -> str:
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


def _unframe(line: str) -> str | None:
    """The payload of one framed line, or None when the frame is bad."""
    if len(line) < 10 or line[8] != " ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    return payload


class DedupWindow:
    """A bounded token → status map: the server's exactly-once memory.

    A mutation carrying an idempotency token records its status here
    after it commits; a retry of the same token replays that status
    instead of applying the mutation again. The window is an LRU over
    insertion order — old tokens age out, which is safe because clients
    retry within seconds, not days. Thread-safe.
    """

    def __init__(self, max_tokens: int = 4096):
        self._max = max(1, max_tokens)
        self._tokens: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, token: str) -> str | None:
        with self._lock:
            return self._tokens.get(token)

    def put(self, token: str, status: str) -> None:
        with self._lock:
            self._tokens[token] = status
            self._tokens.move_to_end(token)
            while len(self._tokens) > self._max:
                self._tokens.popitem(last=False)

    def discard(self, token: str) -> None:
        with self._lock:
            self._tokens.pop(token, None)

    def seed(self, tokens: dict[str, str]) -> None:
        for token, status in tokens.items():
            self.put(token, status)

    def snapshot(self) -> dict[str, str]:
        with self._lock:
            return dict(self._tokens)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tokens)


@dataclass
class WalRecovery:
    """What :meth:`WriteAheadLog.recover` found and rebuilt."""

    #: the recovered database (checkpoint snapshot + replayed tail)
    database: object = None
    #: the ``verify_database`` report for the checkpoint snapshot
    #: (None when recovery started from an empty journal, no checkpoint)
    report: object = None
    #: journal records replayed on top of the checkpoint
    replayed: int = 0
    #: the LSN the checkpoint snapshot covers
    checkpoint_lsn: int = 0
    #: recovery anomalies (torn tails truncated, orphan checkpoints)
    anomalies: list[str] = field(default_factory=list)
    #: the rebuilt idempotency-token window
    tokens: dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"journal recovered: checkpoint lsn {self.checkpoint_lsn}, "
            f"{self.replayed} record(s) replayed"
        ]
        for anomaly in self.anomalies:
            lines.append(f"  anomaly: {anomaly}")
        if self.report is not None and not self.report.clean:
            lines.append(self.report.describe())
        return "\n".join(lines)


class WriteAheadLog:
    """A durable, group-committed journal in one directory.

    Construct, then either :meth:`recover` (existing directory) or
    :meth:`begin` (fresh directory, baseline checkpoint of the starting
    database) before the first append.
    """

    def __init__(
        self,
        directory: str | Path,
        sync: str = "fsync",
        checkpoint_every: int = 512,
    ):
        if sync not in ("fsync", "os"):
            raise ValueError(f"sync must be 'fsync' or 'os', got {sync!r}")
        self.directory = Path(directory)
        self.sync = sync
        self.checkpoint_every = max(1, checkpoint_every)
        self._cond = threading.Condition()
        self._next_lsn = 1
        self._durable_lsn = 0
        self._checkpoint_lsn = 0
        self._pending: list[tuple[int, str]] = []
        self._flushing = False
        #: per-record flush failures: lsn → error (consumed by commit)
        self._failed: dict[int, BaseException] = {}
        self._file = None
        self._segment: Path | None = None
        self._broken: str | None = None
        self._closed = False
        self._ready = False
        #: called with a list[WalRecord] after each durable flush — the
        #: replication feed's ship signal (never called under the lock)
        self.on_durable = None
        #: durable batches awaiting on_durable delivery, in LSN order;
        #: delivery is serialized by _notify_lock so two leaders that
        #: finish back-to-back cannot ship their batches out of order
        #: (a subscriber seeing the later batch first would skip the
        #: earlier one as reconnect overlap and lose records)
        self._notify_queue: list[list[WalRecord]] = []
        self._notify_lock = threading.Lock()
        #: records kept in memory since open, for cheap backlog reads
        self._recent: list[WalRecord] = []
        self._recent_cap = 4096
        self.checkpoints = 0

    # ------------------------------------------------------------------
    # properties
    @property
    def last_lsn(self) -> int:
        """The newest LSN assigned (staged, not necessarily durable)."""
        with self._cond:
            return self._next_lsn - 1

    @property
    def durable_lsn(self) -> int:
        with self._cond:
            return self._durable_lsn

    @property
    def checkpoint_lsn(self) -> int:
        with self._cond:
            return self._checkpoint_lsn

    def exists(self) -> bool:
        """Does the directory already hold a journal to recover?"""
        if (self.directory / _META_NAME).exists():
            return True
        return any(self.directory.glob(_SEGMENT_PREFIX + "*"))

    # ------------------------------------------------------------------
    # lifecycle: begin / recover / close
    def begin(
        self,
        database,
        tokens: dict[str, str] | None = None,
        base_lsn: int = 0,
    ) -> None:
        """Initialize a fresh journal directory around ``database``.

        Writes a baseline checkpoint first, so a database that existed
        before journaling began (``--demo``, ``--open``, a standby's
        bootstrap snapshot) is recoverable from the journal directory
        alone. ``base_lsn`` seeds the LSN sequence — a standby passes
        the primary LSN its snapshot covers, so shipped records keep
        their primary LSNs.
        """
        if self.exists():
            raise WalError(
                f"{self.directory} already contains a journal; recover() it"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._next_lsn = base_lsn + 1
        self._durable_lsn = base_lsn
        self._write_checkpoint(database, tokens or {}, base_lsn)
        self._open_segment(base_lsn + 1)
        self._ready = True

    def recover(self, verify: bool = True) -> WalRecovery:
        """Rebuild the database from the checkpoint plus the journal
        tail; leaves the log open for appends at the next LSN."""
        from repro.engine.database import Database
        from repro.engine.persist import load_database, verify_database

        if not self.directory.exists():
            raise WalError(f"{self.directory} does not exist")
        recovery = WalRecovery()
        meta = self._read_meta()
        if meta is not None:
            self._checkpoint_lsn = meta["checkpoint_lsn"]
            recovery.checkpoint_lsn = self._checkpoint_lsn
            recovery.tokens = dict(meta.get("tokens", {}))
            checkpoint_dir = self.directory / meta["checkpoint_dir"]
            if not checkpoint_dir.exists():
                raise WalError(
                    f"{_META_NAME} references missing snapshot "
                    f"{checkpoint_dir.name!r}"
                )
            database = load_database(checkpoint_dir)
            if verify:
                recovery.report = verify_database(database)
        else:
            # No checkpoint: the journal began on an empty database.
            database = Database()
        recovery.database = database
        replay_from = self._checkpoint_lsn
        last_seen = self._checkpoint_lsn
        for record in self._scan_segments(recovery.anomalies):
            if record.lsn <= replay_from:
                continue
            if record.lsn <= last_seen:
                raise WalError(
                    f"journal LSNs out of order: {record.lsn} after {last_seen}"
                )
            last_seen = record.lsn
            try:
                database.run_sql(record.sql)
            except ReproError as error:
                raise WalError(
                    f"journal replay failed at lsn {record.lsn} "
                    f"({record.kind}): {error}"
                ) from error
            if record.token is not None:
                recovery.tokens[record.token] = record.status
            recovery.replayed += 1
        self._sweep_orphans(recovery.anomalies)
        self._next_lsn = last_seen + 1
        self._durable_lsn = last_seen
        active = self._latest_segment()
        if active is not None:
            self._segment = active
            self._file = active.open("a", encoding="utf-8")
        else:
            self._open_segment(self._checkpoint_lsn + 1)
        self._ready = True
        return recovery

    def close(self) -> None:
        """Flush everything staged and close the journal file."""
        with self._cond:
            if self._closed:
                return
        try:
            self.flush()
        finally:
            with self._cond:
                self._closed = True
                if self._file is not None:
                    try:
                        self._file.close()
                    except OSError:  # pragma: no cover
                        pass
                    self._file = None

    # ------------------------------------------------------------------
    # appending (group commit)
    def stage(
        self, kind: str, sql: str, token: str | None = None, status: str = ""
    ) -> int:
        """Assign the next LSN and buffer the record; the caller must
        :meth:`commit` it before acknowledging the mutation. Called
        under the server's mutation lock so journal order equals apply
        order."""
        stage_pc = time.perf_counter()
        with self._cond:
            self._check_writable()
            faults.fire("wal.append")
            lsn = self._next_lsn
            self._next_lsn += 1
            record = WalRecord(lsn, kind, sql, token, status)
            self._pending.append((lsn, _frame(record.payload()) + "\n"))
            self._stash_recent(record)
        _spans.record("wal.stage", stage_pc, lsn=lsn, kind=kind)
        return lsn

    def stage_record(self, record: WalRecord) -> int:
        """Stage an already-numbered record (a standby appending a
        shipped primary record keeps the primary's LSN)."""
        stage_pc = time.perf_counter()
        with self._cond:
            self._check_writable()
            faults.fire("wal.append")
            if record.lsn < self._next_lsn:
                raise WalError(
                    f"record lsn {record.lsn} is behind the journal "
                    f"({self._next_lsn - 1})"
                )
            self._next_lsn = record.lsn + 1
            self._pending.append(
                (record.lsn, _frame(record.payload()) + "\n")
            )
            self._stash_recent(record)
        _spans.record("wal.stage", stage_pc, lsn=record.lsn, kind=record.kind)
        return record.lsn

    def commit(self, lsn: int) -> None:
        """Block until ``lsn`` is durable (group commit: the first
        waiter becomes the leader and flushes everyone's buffered
        records in one write + fsync).

        The leader RELEASES the lock for the disk work, so concurrent
        mutations keep staging into the next batch while this one
        syncs — that pipelining is what amortizes the fsync: under an
        ingest storm the next leader finds every record that arrived
        during the previous sync already buffered. Only the leader
        touches the file while ``_flushing`` is set; ``checkpoint`` and
        ``close`` drain through this same protocol before rotating or
        closing the handle."""
        fsync_pc = time.perf_counter()
        try:
            with self._cond:
                while True:
                    # Failure must be checked before the durable
                    # watermark: a later batch can advance _durable_lsn
                    # past an lsn whose own batch failed, and returning
                    # then would acknowledge a record that was never
                    # written.
                    error = self._failed.pop(lsn, None)
                    if error is not None:
                        raise WalError(
                            f"journal write failed: {error}"
                        ) from error
                    if self._broken is not None:
                        raise WalError(self._broken)
                    if self._durable_lsn >= lsn:
                        break
                    if self._flushing or not self._pending:
                        self._cond.wait()
                        continue
                    self._lead_flush()
            _spans.record("wal.fsync", fsync_pc, lsn=lsn)
        finally:
            self._drain_notifications()

    def _lead_flush(self) -> BaseException | None:
        """Become the group-commit leader for the current pending batch.

        Called with the lock held, no flush in flight, and records
        pending; releases the lock for the disk work and reacquires it
        to publish the outcome. On success the durable records are
        queued for ordered ``on_durable`` delivery (see
        :meth:`_drain_notifications`); on failure the error is parked
        in ``_failed`` for each record's own committer and returned."""
        batch = self._pending
        self._pending = []
        self._flushing = True
        flush_error: BaseException | None = None
        self._cond.release()
        try:
            try:
                self._flush_batch(batch)
            except BaseException as error:  # noqa: BLE001
                flush_error = error
        finally:
            self._cond.acquire()
        self._flushing = False
        if flush_error is None:
            self._durable_lsn = max(self._durable_lsn, batch[-1][0])
            notify = [
                r
                for r in self._recent
                if batch[0][0] <= r.lsn <= batch[-1][0]
            ]
            if notify:
                self._notify_queue.append(notify)
        else:
            failed = {failed_lsn for failed_lsn, _ in batch}
            for failed_lsn in failed:
                self._failed[failed_lsn] = flush_error
            # the ring must only ever serve durable records
            self._recent = [
                r for r in self._recent if r.lsn not in failed
            ]
        self._cond.notify_all()
        return flush_error

    def _drain_notifications(self) -> None:
        """Deliver queued durable batches to ``on_durable`` in LSN
        order. Any thread may drain; ``_notify_lock`` serializes
        delivery so batches never reach subscribers out of order, and
        the queue (always popped from the front) preserves the
        leaders' completion order."""
        while True:
            with self._notify_lock:
                with self._cond:
                    if not self._notify_queue:
                        return
                    if self.on_durable is None:
                        self._notify_queue.clear()
                        return
                    batch = self._notify_queue.pop(0)
                    callback = self.on_durable
                callback(batch)

    def append(
        self, kind: str, sql: str, token: str | None = None, status: str = ""
    ) -> int:
        """stage + commit in one call (tests and simple callers)."""
        lsn = self.stage(kind, sql, token=token, status=status)
        self.commit(lsn)
        return lsn

    def flush(self) -> None:
        """Make everything currently staged durable; raises when records
        this call flushed could not be written.

        Drains the pending buffer directly instead of waiting on one
        specific LSN — ``commit(top)`` would hang forever on a record
        whose own committer already consumed its failure and rolled the
        mutation back (the LSN can then never become durable)."""
        try:
            while True:
                with self._cond:
                    if self._broken is not None:
                        raise WalError(self._broken)
                    if self._flushing:
                        self._cond.wait()
                        continue
                    if not self._pending:
                        break
                    error = self._lead_flush()
                    if error is not None:
                        raise WalError(
                            f"journal write failed: {error}"
                        ) from error
        finally:
            self._drain_notifications()

    def _flush_batch(self, batch: list[tuple[int, str]]) -> None:
        """Write one group-commit batch to disk. Called WITHOUT the
        lock by the flush leader (``_flushing`` guarantees exclusive
        file access), so stagers buffer the next batch concurrently."""
        if not batch:
            return
        handle = self._file
        if handle is None:
            raise WalError("journal is closed")
        position = handle.tell()
        try:
            self._fire_disk_full()
            handle.write("".join(line for _, line in batch))
            handle.flush()
            faults.fire("wal.fsync")
            if self.sync == "fsync":
                os.fsync(handle.fileno())
        except BaseException:
            # The file may hold a partial batch. Truncate back to the
            # pre-write position so the journal never carries records
            # whose commit failed; if even that fails, the journal is
            # unusable and every later append must refuse.
            try:
                handle.seek(position)
                handle.truncate(position)
            except OSError as truncate_error:  # pragma: no cover
                self._broken = (
                    "journal unwritable after failed flush "
                    f"({truncate_error}); mutations are disabled"
                )
            raise

    def _check_writable(self) -> None:
        if not self._ready:
            raise WalError("journal not initialized: call begin() or recover()")
        if self._closed:
            raise WalError("journal is closed")
        if self._broken is not None:
            raise WalError(self._broken)

    @staticmethod
    def _fire_disk_full() -> None:
        """The ``wal.disk_full`` injection point, translated to the
        error a genuinely full volume produces so every consumer —
        commit rollback, the server's degradation classifier — exercises
        the real ENOSPC path."""
        try:
            faults.fire("wal.disk_full")
        except faults.InjectedFault as error:
            raise OSError(errno.ENOSPC, "injected disk full") from error

    def probe_writable(self) -> None:
        """Check whether the journal volume can take bytes again: write,
        sync, and remove a tiny probe file. Raises ``OSError`` (ENOSPC)
        while the disk is still full — the server polls this on each
        refused mutation and lifts read-only mode once it succeeds.
        Fires ``wal.disk_full`` so chaos tests control the recovery
        point."""
        self._fire_disk_full()
        probe = self.directory / ".space-probe"
        with probe.open("w", encoding="utf-8") as handle:
            handle.write("probe\n")
            handle.flush()
            if self.sync == "fsync":
                os.fsync(handle.fileno())
        probe.unlink(missing_ok=True)

    def _stash_recent(self, record: WalRecord) -> None:
        self._recent.append(record)
        if len(self._recent) > self._recent_cap:
            del self._recent[: len(self._recent) - self._recent_cap]

    # ------------------------------------------------------------------
    # checkpoint-compaction
    def should_checkpoint(self) -> bool:
        with self._cond:
            return (
                self._next_lsn - 1 - self._checkpoint_lsn
                >= self.checkpoint_every
            )

    def checkpoint(self, database, tokens: dict[str, str] | None = None) -> int:
        """Snapshot ``database``, commit the checkpoint, rotate the
        journal segment, and drop everything the snapshot covers.

        The caller must hold the server's mutation lock (no mutation in
        flight), so the snapshot corresponds exactly to the journal
        prefix up to the returned LSN. Reads are unaffected.
        """
        self.flush()
        with self._cond:
            self._check_writable()
            lsn = self._next_lsn - 1
        self._fire_disk_full()
        self._write_checkpoint(database, tokens or {}, lsn)
        self._open_segment(lsn + 1)
        with self._cond:
            self._checkpoint_lsn = lsn
            self.checkpoints += 1
        self._cleanup(lsn)
        _events.emit("wal.checkpoint", lsn=lsn, checkpoints=self.checkpoints)
        return lsn

    def rebase(
        self,
        database,
        tokens: dict[str, str] | None = None,
        base_lsn: int = 0,
    ) -> None:
        """Re-anchor the journal at ``base_lsn`` around a database that
        did NOT come from this journal.

        A standby re-bootstrapping from a fresh primary snapshot (the
        primary compacted past the standby's position) jumps forward
        over records it never saw; its local journal must not keep the
        pre-gap tail, or a later local recovery would replay post-gap
        records on a base that is missing the gap. Writes a checkpoint
        of ``database`` at ``base_lsn``, rotates to a new segment, and
        drops everything older — including the in-memory ring."""
        self.flush()
        with self._cond:
            self._check_writable()
            if base_lsn < self._next_lsn - 1:
                raise WalError(
                    f"cannot rebase backwards: journal is at lsn "
                    f"{self._next_lsn - 1}, rebase target is {base_lsn} "
                    "(this replica has applied records the snapshot "
                    "source does not have)"
                )
            self._next_lsn = base_lsn + 1
            self._durable_lsn = base_lsn
            self._recent = []
        self._write_checkpoint(database, tokens or {}, base_lsn)
        self._open_segment(base_lsn + 1)
        with self._cond:
            self._checkpoint_lsn = base_lsn
            self.checkpoints += 1
        self._cleanup(base_lsn)

    def _write_checkpoint(
        self, database, tokens: dict[str, str], lsn: int
    ) -> None:
        from repro.engine.persist import save_database

        name = f"{_CHECKPOINT_PREFIX}{lsn:012d}"
        target = self.directory / name
        if target.exists():  # a crashed earlier attempt at this LSN
            shutil.rmtree(target)
        save_database(database, target)
        meta = {
            "version": META_VERSION,
            "checkpoint_lsn": lsn,
            "checkpoint_dir": name,
            "tokens": tokens,
        }
        self._atomic_write(
            self.directory / _META_NAME, json.dumps(meta, indent=2)
        )

    def _atomic_write(self, path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            if self.sync == "fsync":
                os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _cleanup(self, checkpoint_lsn: int) -> None:
        """Drop journal segments and checkpoint directories the new
        checkpoint supersedes (best effort — leftovers are swept on the
        next recovery)."""
        for segment in sorted(self.directory.glob(_SEGMENT_PREFIX + "*")):
            if segment == self._segment:
                continue
            if _segment_start(segment) <= checkpoint_lsn:
                try:
                    segment.unlink()
                except OSError:  # pragma: no cover
                    pass
        for snapshot in self.directory.glob(_CHECKPOINT_PREFIX + "*"):
            if _checkpoint_start(snapshot) < checkpoint_lsn:
                shutil.rmtree(snapshot, ignore_errors=True)

    def _sweep_orphans(self, anomalies: list[str]) -> None:
        """Remove checkpoint directories the meta never committed (a
        crash landed between the snapshot write and the meta rename)."""
        keep = None
        meta = self._read_meta()
        if meta is not None:
            keep = meta["checkpoint_dir"]
        for snapshot in self.directory.glob(_CHECKPOINT_PREFIX + "*"):
            if snapshot.name != keep:
                anomalies.append(
                    f"{snapshot.name}: uncommitted checkpoint swept"
                )
                shutil.rmtree(snapshot, ignore_errors=True)
        for stale in self.directory.glob("*.tmp"):
            stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # reading
    def covers(self, lsn: int) -> bool:
        """Can :meth:`records_after` serve a gap-free backlog from
        ``lsn``? True when every later record is still held — on disk
        past the checkpoint, or in the in-memory ring. False means
        checkpoint compaction deleted part of the backlog and a
        subscriber at ``lsn`` must bootstrap from a snapshot."""
        with self._cond:
            if lsn >= self._checkpoint_lsn:
                return True
            return bool(self._recent) and self._recent[0].lsn <= lsn + 1

    def records_after(self, lsn: int) -> list[WalRecord]:
        """Durable records with an LSN greater than ``lsn``, in order —
        the replication backlog a (re)connecting standby needs. Served
        from the in-memory ring when possible, from disk otherwise.

        Raises :class:`WalGapError` when ``lsn`` predates the
        checkpoint and the ring does not reach back to it: the on-disk
        journal only starts after the checkpoint (compaction deleted the
        older segments), so the backlog would silently skip the records
        in between — the standby's overlap filter cannot detect that,
        and it would diverge."""
        with self._cond:
            durable = self._durable_lsn
            recent = list(self._recent)
            checkpoint = self._checkpoint_lsn
        if recent and recent[0].lsn <= lsn + 1:
            return [r for r in recent if lsn < r.lsn <= durable]
        if lsn < checkpoint:
            raise WalGapError(
                f"journal backlog after lsn {lsn} is gone (checkpoint "
                f"compacted through lsn {checkpoint}); bootstrap from a "
                "fresh snapshot"
            )
        anomalies: list[str] = []
        return [
            record
            for record in self._scan_segments(anomalies, truncate=False)
            if lsn < record.lsn <= durable
        ]

    def _segments(self) -> list[Path]:
        return sorted(self.directory.glob(_SEGMENT_PREFIX + "*.jsonl"))

    def _latest_segment(self) -> Path | None:
        segments = self._segments()
        return segments[-1] if segments else None

    def _scan_segments(self, anomalies: list[str], truncate: bool = True):
        """Yield every journal record on disk in segment order.

        A bad frame at the very end of the *last* segment is a torn
        tail: with ``truncate`` (recovery) the file is physically
        truncated back to the last good record and the scan stops;
        without (backlog reads on a live journal) the scan just stops.
        A bad frame anywhere else is genuine corruption and fatal.
        """
        segments = self._segments()
        for index, segment in enumerate(segments):
            data = segment.read_bytes()
            offset = 0
            for number, raw in enumerate(data.split(b"\n"), start=1):
                if raw == b"":
                    offset += 1
                    continue
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError:
                    line = None
                payload = _unframe(line) if line is not None else None
                if payload is None:
                    tail_of_log = (
                        index == len(segments) - 1
                        and offset + len(raw) >= len(data.rstrip(b"\n"))
                    )
                    if tail_of_log:
                        if truncate:
                            anomalies.append(
                                f"{segment.name}: torn tail at line {number} "
                                "truncated (partial or corrupt trailing "
                                "record)"
                            )
                            _truncate_at(segment, offset)
                        return
                    raise WalError(
                        f"{segment.name}: checksum mismatch at line {number} "
                        "(corrupt record inside the journal)"
                    )
                try:
                    yield WalRecord.from_payload(payload)
                except (KeyError, ValueError) as error:
                    raise WalError(
                        f"{segment.name}: bad record at line {number}: {error}"
                    ) from error
                offset += len(raw) + 1

    def _open_segment(self, start_lsn: int) -> None:
        with self._cond:
            if self._file is not None:
                self._file.close()
            self._segment = self.directory / (_SEGMENT_PATTERN % start_lsn)
            self._file = self._segment.open("a", encoding="utf-8")

    def _read_meta(self) -> dict | None:
        path = self.directory / _META_NAME
        if not path.exists():
            return None
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise WalError(f"{_META_NAME} is unreadable: {error}") from error
        if meta.get("version") != META_VERSION:
            raise WalError(
                f"unsupported journal meta version {meta.get('version')!r}"
            )
        for key in ("checkpoint_lsn", "checkpoint_dir"):
            if key not in meta:
                raise WalError(f"{_META_NAME}: missing required key {key!r}")
        return meta


def _segment_start(path: Path) -> int:
    try:
        return int(path.stem[len(_SEGMENT_PREFIX):])
    except ValueError:
        return 0


def _checkpoint_start(path: Path) -> int:
    try:
        return int(path.name[len(_CHECKPOINT_PREFIX):])
    except ValueError:
        return -1


def _truncate_at(path: Path, byte_offset: int) -> None:
    with path.open("r+b") as handle:
        handle.truncate(byte_offset)
