"""The warm standby: a second query server tailing the primary's journal.

:class:`StandbyServer` wires three pieces together:

* **Bootstrap** — ask the primary for a consistent full-state snapshot
  (op ``repl.snapshot``: schemas, rows, summary definitions with their
  refresh state, the staged delta log, the dedup-token window) and
  rebuild a :class:`~repro.engine.database.Database` from it. With a
  local journal directory that already holds a journal, recovery
  replaces bootstrap — a restarted standby resumes from its own
  checkpoint and tail, and only fetches the records it missed.
* **Tail** — a background thread holds one ``repl.stream`` connection
  to the primary and applies shipped records in LSN order through
  :meth:`~repro.server.server.QueryServer.apply_replicated` (which
  journals them locally under the *primary's* LSNs, so the standby is
  itself durable and promotable). Heartbeats carry the primary's
  durable LSN, making replication lag observable while idle; each
  applied batch is acked back on the same connection for the primary's
  semi-sync mode. A dropped connection reconnects with capped backoff
  and resumes from the standby's applied LSN.
* **Serve** — the embedded :class:`~repro.server.server.QueryServer`
  runs ``read_only=True``: mutations are rejected with a redirect hint,
  reads are gated on replication lag through ``SET REFRESH AGE``
  (see ``QueryServer._execute_select``).

:meth:`promote` (or the ``repl.promote`` op) stops the tailer and flips
the server into a primary: it starts accepting mutations, journaling
them after the last applied primary LSN — the promoted database is
bit-identical to the primary's journal prefix it had applied.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.errors import ReplicationError, WalGapError
from repro.obs import events as _events
from repro.server import protocol
from repro.server.server import QueryServer


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected host:port, got {address!r}")
    return host, int(port)


class StandbyServer:
    """A warm-standby query server replicating one primary."""

    def __init__(
        self,
        primary: str | tuple[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
        wal_dir: str | None = None,
        sync: str = "fsync",
        checkpoint_every: int = 512,
        cache_enabled: bool = True,
        cache_size: int = 256,
        max_workers: int = 32,
        ack: bool = True,
        reconnect_backoff: float = 0.2,
        reconnect_cap: float = 2.0,
        connect_timeout: float = 10.0,
    ):
        if isinstance(primary, str):
            primary = parse_address(primary)
        self.primary = primary
        self.host = host
        self.port = port
        self.wal_dir = wal_dir
        self.sync = sync
        self.checkpoint_every = checkpoint_every
        self.cache_enabled = cache_enabled
        self.cache_size = cache_size
        self.max_workers = max_workers
        self.ack = ack
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_cap = reconnect_cap
        self.connect_timeout = connect_timeout
        self.server: QueryServer | None = None
        self.address: tuple[str, int] | None = None
        #: recovery description when a restart recovered a local journal
        self.recovery = None
        self._stop = threading.Event()
        self._promoted = threading.Event()
        self._tailer: threading.Thread | None = None
        #: the tailer's live stream socket — promote()/stop() close it
        #: to unblock a readline() parked in its socket timeout
        self._tail_sock: socket.socket | None = None

    # ------------------------------------------------------------------
    @property
    def lag(self) -> int:
        return self.server.replication_lag() if self.server else 0

    @property
    def applied_lsn(self) -> int:
        return self.server.applied_lsn if self.server else 0

    def start(self) -> tuple[str, int]:
        """Bootstrap (or recover), start serving read-only, start
        tailing; returns the standby's listen address."""
        from repro.replication.wal import WriteAheadLog

        wal = None
        tokens: dict[str, str] = {}
        if self.wal_dir is not None:
            wal = WriteAheadLog(
                self.wal_dir,
                sync=self.sync,
                checkpoint_every=self.checkpoint_every,
            )
        if wal is not None and wal.exists():
            recovery = wal.recover()
            self.recovery = recovery
            db, tokens = recovery.database, recovery.tokens
        else:
            state, lsn, tokens = self._fetch_snapshot()
            from repro.engine.persist import database_from_payload

            db = database_from_payload(state)
            if wal is not None:
                wal.begin(db, tokens=tokens, base_lsn=lsn)
        self.server = QueryServer(
            db,
            host=self.host,
            port=self.port,
            cache_enabled=self.cache_enabled,
            cache_size=self.cache_size,
            max_workers=self.max_workers,
            wal=wal,
            read_only=True,
            primary=f"{self.primary[0]}:{self.primary[1]}",
        )
        self.server.dedup.seed(tokens)
        self.server.applied_lsn = wal.durable_lsn if wal is not None else (
            self.server.applied_lsn
        )
        self.server.on_promote = self.promote
        self.address = self.server.start_in_thread()
        self._tailer = threading.Thread(
            target=self._tail_forever, name="repro-standby-tail", daemon=True
        )
        self._tailer.start()
        return self.address

    def stop(self) -> None:
        self._stop.set()
        self._close_tail_sock()
        if self._tailer is not None:
            self._tailer.join(timeout=10)
            self._tailer = None
        if self.server is not None:
            self.server.stop()

    def promote(self) -> dict:
        """Stop following the primary and start accepting mutations.

        The flag is set *and the stream socket is closed* before the
        join: the tailer may be parked in ``readline()`` for its whole
        socket timeout, and must not apply records it already read
        after the promotion decision — closing the socket fails its
        read immediately, and :meth:`_tail_once` re-checks the flag
        before every apply."""
        self._promoted.set()
        self._close_tail_sock()
        if (
            self._tailer is not None
            and self._tailer is not threading.current_thread()
        ):
            self._tailer.join(timeout=10)
            self._tailer = None
        assert self.server is not None
        return self.server.promote()

    def _close_tail_sock(self) -> None:
        sock = self._tail_sock
        if sock is None:
            return
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # bootstrap
    def _fetch_snapshot(self) -> tuple[dict, int, dict[str, str]]:
        with socket.create_connection(
            self.primary, timeout=self.connect_timeout
        ) as sock:
            reader = sock.makefile("rb")
            sock.sendall(protocol.encode_message({"op": "repl.snapshot"}))
            line = reader.readline()
            if not line:
                raise ReplicationError(
                    "primary closed the connection during snapshot"
                )
            response = protocol.decode_message(line)
        if not response.get("ok"):
            error = (response.get("error") or {}).get("message", "snapshot")
            raise ReplicationError(f"snapshot bootstrap failed: {error}")
        return (
            response["state"],
            int(response.get("lsn", 0)),
            dict(response.get("tokens", {})),
        )

    # ------------------------------------------------------------------
    # tailing
    def _tail_forever(self) -> None:
        failures = 0
        while not (self._stop.is_set() or self._promoted.is_set()):
            try:
                self._tail_once()
                failures = 0
            except WalGapError:
                # The primary compacted past our position (long outage,
                # or a primary restart emptied its backlog ring): the
                # stream cannot resume gap-free, so bootstrap again from
                # a fresh snapshot and resume tailing from there.
                _events.emit(
                    "standby.rebootstrap",
                    applied_lsn=(
                        self.server.applied_lsn if self.server else 0
                    ),
                )
                try:
                    self._rebootstrap()
                    failures = 0
                except Exception:  # noqa: BLE001 - retry with backoff
                    failures += 1
            except Exception as error:  # noqa: BLE001 - reconnect on any failure
                failures += 1
                _events.emit(
                    "standby.reconnect", failures=failures,
                    reason=f"{type(error).__name__}: {error}",
                )
            if self._stop.is_set() or self._promoted.is_set():
                return
            delay = min(
                self.reconnect_cap, self.reconnect_backoff * (2 ** failures)
            )
            self._stop.wait(delay)

    def _rebootstrap(self) -> None:
        """Fetch a fresh snapshot and swap it into the running server,
        re-anchoring the local journal at the snapshot's LSN (see
        :meth:`QueryServer.reset_database`)."""
        from repro.engine.persist import database_from_payload

        assert self.server is not None
        state, lsn, tokens = self._fetch_snapshot()
        db = database_from_payload(state)
        self.server.reset_database(db, lsn=lsn, tokens=tokens)

    def _tail_once(self) -> None:
        """One streaming session: subscribe after the applied LSN, apply
        records and note heartbeats until the connection drops."""
        assert self.server is not None
        server = self.server
        with socket.create_connection(
            self.primary, timeout=self.connect_timeout
        ) as sock:
            self._tail_sock = sock
            try:
                self._tail_stream(server, sock)
            finally:
                self._tail_sock = None

    def _tail_stream(self, server: QueryServer, sock: socket.socket) -> None:
        # The read timeout doubles as a liveness check: heartbeats
        # arrive every ~0.5 s, so several missed intervals mean the
        # primary (or the path to it) is gone.
        sock.settimeout(max(5.0, self.connect_timeout))
        reader = sock.makefile("rb")
        sock.sendall(protocol.encode_message({
            "op": "repl.stream", "after": server.applied_lsn,
        }))
        opened = protocol.decode_message(self._read_line(reader))
        if not opened.get("ok"):
            error = opened.get("error") or {}
            message = error.get("message", "stream")
            if error.get("type") == WalGapError.__name__:
                # typed refusal: the backlog we need is gone — the
                # caller falls back to a fresh snapshot bootstrap
                raise WalGapError(message)
            raise ReplicationError(f"stream rejected: {message}")
        while not (self._stop.is_set() or self._promoted.is_set()):
            message = protocol.decode_message(self._read_line(reader))
            if "durable_lsn" in message:
                server.note_primary_durable(int(message["durable_lsn"]))
            if message.get("repl") != "records":
                continue
            from repro.replication.wal import WalRecord

            applied = 0
            for entry in message["records"]:
                if self._stop.is_set() or self._promoted.is_set():
                    # promotion may have landed while this batch was in
                    # flight — applying the rest would race the new
                    # primary's own mutations for LSNs
                    return
                record = WalRecord(
                    lsn=int(entry["lsn"]),
                    kind=entry["kind"],
                    sql=entry["sql"],
                    token=entry.get("token"),
                    status=entry.get("status", ""),
                )
                if record.lsn <= server.applied_lsn:
                    continue  # overlap after a reconnect
                server.apply_replicated(record, trace_id=entry.get("trace"))
                applied += 1
            if applied and self.ack:
                sock.sendall(protocol.encode_message({
                    "op": "repl.ack", "lsn": server.applied_lsn,
                }))

    @staticmethod
    def _read_line(reader) -> bytes:
        line = reader.readline()
        if not line:
            raise ReplicationError("stream connection closed")
        return line


def wait_for_catchup(
    standby: StandbyServer, lsn: int, timeout: float = 30.0
) -> None:
    """Block until the standby has applied ``lsn`` (tests and controlled
    promotion); raises :class:`ReplicationError` on timeout."""
    deadline = time.monotonic() + timeout
    while standby.applied_lsn < lsn:
        if time.monotonic() >= deadline:
            raise ReplicationError(
                f"standby stuck at lsn {standby.applied_lsn}, "
                f"waiting for {lsn}"
            )
        time.sleep(0.01)
