"""Durability and replication for the query server.

Three pieces turn the in-memory engine into a crash-safe, replicated
service (docs/ROBUSTNESS.md, "Durability & failover"):

* :class:`repro.replication.wal.WriteAheadLog` — every acknowledged
  mutation is journaled (LSN + CRC32 framing, group-commit batching)
  before the reply leaves the server, with periodic
  checkpoint-compaction into ``save_database`` snapshots and startup
  replay recovery through ``verify_database``.
* :class:`repro.replication.standby.StandbyServer` — a warm standby
  that bootstraps from a wire snapshot, tails the primary's journal
  over the line-delimited JSON protocol, serves read-only queries at a
  reported replication lag, and can be promoted on primary death.
* :class:`repro.replication.wal.DedupWindow` — the idempotency-token
  window that makes client retries exactly-once: a retried mutation
  whose ACK was lost replays the original status instead of applying
  twice. Tokens ride in journal records and checkpoints, so the window
  survives crashes and follows the log to the standby.
"""

from repro.replication.wal import (  # noqa: F401
    DedupWindow,
    WalRecord,
    WalRecovery,
    WriteAheadLog,
    mutation_kind,
)

#: standby names are re-exported lazily: standby.py needs QueryServer,
#: and the query server itself imports this package for the journal —
#: resolving on first attribute access breaks the cycle
_STANDBY_EXPORTS = ("StandbyServer", "parse_address", "wait_for_catchup")


def __getattr__(name: str):
    if name in _STANDBY_EXPORTS:
        from repro.replication import standby

        return getattr(standby, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
