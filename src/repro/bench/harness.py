"""Experiment harness shared by the benchmark suite.

Each paper figure becomes an :class:`Experiment`: a database setup, a
summary-table definition, and a query. The harness verifies the rewrite
(the right pattern fired, the results are identical) and measures both
plans so the benchmark can report the original-vs-rewritten comparison
that EXPERIMENTS.md records.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.engine.table import Table, tables_equal
from repro.errors import ReproError
from repro.qgm.boxes import QueryGraph


def bench_scale() -> float:
    """Benchmark data scale factor (REPRO_SCALE env var, default 1.0)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@dataclass
class ExperimentRun:
    """Measured outcome of one original-vs-rewritten comparison."""

    name: str
    original_seconds: float
    rewritten_seconds: float
    original_rows: int
    rewritten_rows: int
    summary_rows: int
    base_rows: int
    explanation: str

    @property
    def speedup(self) -> float:
        if self.rewritten_seconds == 0:
            return float("inf")
        return self.original_seconds / self.rewritten_seconds

    def report_row(self) -> str:
        return (
            f"{self.name:<14} base={self.base_rows:<8} ast={self.summary_rows:<7} "
            f"orig={self.original_seconds * 1e3:8.1f}ms "
            f"rewr={self.rewritten_seconds * 1e3:8.1f}ms "
            f"speedup={self.speedup:6.1f}x"
        )


@dataclass
class Experiment:
    """One figure's experiment: DB + AST(s) + query."""

    name: str
    database: Database
    query: str
    expected_pattern: str | None = None
    rewritten_graph: QueryGraph | None = None
    explanation: str = ""
    _original: Table | None = field(default=None, repr=False)

    def prepare(self) -> "Experiment":
        """Run the matcher once and verify correctness of the rewrite."""
        result = self.database.rewrite(self.query)
        if result is None:
            raise ReproError(f"{self.name}: expected a rewrite, got none")
        if self.expected_pattern is not None:
            patterns = {entry.match.pattern for entry in result.applied}
            if self.expected_pattern not in patterns:
                raise ReproError(
                    f"{self.name}: expected pattern {self.expected_pattern}, "
                    f"got {patterns}"
                )
        self.rewritten_graph = result.graph
        self.explanation = result.explain()
        original = self.run_original()
        rewritten = self.run_rewritten()
        if not tables_equal(original, rewritten):
            raise ReproError(
                f"{self.name}: rewritten plan returns different rows"
            )
        return self

    def run_original(self) -> Table:
        return self.database.execute(self.query, use_summary_tables=False)

    def run_rewritten(self) -> Table:
        if self.rewritten_graph is None:
            raise ReproError(f"{self.name}: prepare() has not run")
        return self.database.execute_graph(self.rewritten_graph)

    def measure(self, repeat: int = 3) -> ExperimentRun:
        """Best-of-N wall-clock comparison of the two plans."""
        original = min(self._time(self.run_original) for _ in range(repeat))
        rewritten = min(self._time(self.run_rewritten) for _ in range(repeat))
        summary_rows = sum(
            summary.row_count for summary in self.database.summary_tables.values()
        )
        base_rows = len(self.database.table("Trans")) if self.database.catalog.has_table("Trans") else 0
        return ExperimentRun(
            name=self.name,
            original_seconds=original,
            rewritten_seconds=rewritten,
            original_rows=len(self.run_original()),
            rewritten_rows=len(self.run_rewritten()),
            summary_rows=summary_rows,
            base_rows=base_rows,
            explanation=self.explanation,
        )

    @staticmethod
    def _time(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
