"""The paper's worked examples as executable experiments.

Every figure of the evaluation-by-example (Figures 2, 5-8, 10, 11, 13,
14, plus the Table 1 negative case) is encoded here once and reused by
the test suite, the benchmark suite, and EXPERIMENTS.md generation.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, bench_scale
from repro.catalog.sample import credit_card_catalog
from repro.engine.database import Database
from repro.workloads.datagen import GeneratorConfig, bench_config, populate_credit_db

# ---------------------------------------------------------------------------
# AST definitions (subsumers), straight from the figures
# ---------------------------------------------------------------------------
AST1 = """
select faid, flid, year(date) as year, count(*) as cnt
from Trans
group by faid, flid, year(date)
"""

AST2 = """
select tid, faid, fpgid, status, country, price, qty, disc, qty * price as value
from Trans, Loc, Acct
where lid = flid and faid = aid and disc > 0.1
"""

AST4 = """
select year(date) as year, month(date) as month, sum(qty * price) as value
from Trans
group by year(date), month(date)
"""

AST6 = AST4  # Figure 7 reuses the monthly-value summary

AST7 = """
select flid, year(date) as year, count(*) as cnt
from Trans
group by flid, year(date)
"""

AST8 = """
select year, tcnt, count(*) as mcnt
from (select year(date) as year, month(date) as month, count(*) as tcnt
      from Trans
      group by year(date), month(date))
group by year, tcnt
"""

AST10 = """
select flid, year(date) as year, count(*) as cnt,
       (select count(*) from Trans) as totcnt
from Trans
group by flid, year(date)
"""

#: Table 1's modified AST10: the HAVING clause loses groups the query needs.
AST10_WITH_HAVING = """
select flid, year(date) as year, count(*) as cnt
from Trans
group by flid, year(date)
having count(*) > 2
"""

AST11 = """
select flid, faid, year(date) as year, month(date) as month, count(*) as cnt
from Trans
group by grouping sets ((flid, faid, year(date)), (flid, year(date)),
                        (flid, year(date), month(date)))
"""

AST12 = """
select flid, faid, year(date) as year, month(date) as month, count(*) as cnt
from Trans
group by grouping sets ((flid, faid, year(date)), (flid, year(date)),
                        (flid, year(date), month(date)), (year(date)))
"""

# ---------------------------------------------------------------------------
# Queries (subsumees)
# ---------------------------------------------------------------------------
Q1 = """
select faid, state, year(date) as year, count(*) as cnt
from Trans, Loc
where flid = lid and country = 'USA'
group by faid, state, year(date)
having count(*) > 100
"""

Q2 = """
select aid, status, qty * price * (1 - disc) as amt
from Trans, PGroup, Acct
where pgid = fpgid and faid = aid and price > 100 and disc > 0.1
      and pgname = 'TV'
"""

Q4 = """
select year(date) as year, sum(qty * price) as value
from Trans
group by year(date)
"""

Q6 = """
select year(date) % 100 as yr, sum(qty * price) as value
from Trans
where month(date) >= 6
group by year(date) % 100
"""

Q7 = """
select lid, year(date) as year, count(*) as cnt
from Trans, Loc
where flid = lid and country = 'USA'
group by lid, year(date)
"""

Q8 = """
select tcnt, count(*) as ycnt
from (select year(date) as year, count(*) as tcnt
      from Trans
      group by year(date))
group by tcnt
"""

Q10 = """
select flid, count(*) / (select count(*) from Trans) as cntpct
from Trans, Loc
where flid = lid and country = 'USA'
group by flid
having count(*) > 2
"""

Q11_1 = """
select flid, year(date) as year, count(*) as cnt
from Trans
where year(date) > 1990
group by flid, year(date)
"""

Q11_2 = """
select flid, year(date) as year, count(*) as cnt
from Trans
where month(date) >= 6
group by flid, year(date)
"""

Q11_3 = """
select flid, year(date) as year, month(date) as month,
       count(distinct faid) as custcnt
from Trans
group by flid, year(date), month(date)
"""

Q12_1 = """
select flid, year(date) as year, count(*) as cnt
from Trans
where year(date) > 1990
group by grouping sets ((flid, year(date)), (year(date)))
"""

Q12_2 = """
select flid, year(date) as year, count(*) as cnt
from Trans
where year(date) > 1990
group by grouping sets ((flid), (year(date)))
"""

#: figure id -> (AST name, AST sql, query sql, expected pattern)
FIGURES: dict[str, tuple[str, str, str, str | None]] = {
    "fig02_q1": ("AST1", AST1, Q1, "4.2.4"),
    "fig05_q2": ("AST2", AST2, Q2, "4.1.1"),
    "fig06_q4": ("AST4", AST4, Q4, None),
    "fig07_q6": ("AST6", AST6, Q6, None),
    "fig08_q7": ("AST7", AST7, Q7, None),
    "fig10_q8": ("AST8", AST8, Q8, None),
    "fig11_q10": ("AST10", AST10, Q10, "4.2.4"),
    "fig13_q11_1": ("AST11", AST11, Q11_1, None),
    "fig13_q11_2": ("AST11", AST11, Q11_2, None),
    "fig14_q12_1": ("AST12", AST12, Q12_1, None),
    "fig14_q12_2": ("AST12", AST12, Q12_2, None),
}

#: figure id -> (AST name, AST sql, query sql) that must NOT match
NEGATIVE_FIGURES: dict[str, tuple[str, str, str]] = {
    "tbl1_having": ("AST10H", AST10_WITH_HAVING, Q10),
    "fig13_q11_3": ("AST11", AST11, Q11_3),
}


def make_database(config: GeneratorConfig | None = None) -> Database:
    database = Database(credit_card_catalog())
    populate_credit_db(database, config)
    return database


def make_experiment(
    figure: str, config: GeneratorConfig | None = None
) -> Experiment:
    """Build and verify the experiment for one figure id."""
    ast_name, ast_sql, query, pattern = FIGURES[figure]
    database = make_database(config)
    database.create_summary_table(ast_name, ast_sql)
    experiment = Experiment(
        name=figure,
        database=database,
        query=query,
        expected_pattern=pattern,
    )
    return experiment.prepare()


def make_bench_experiment(figure: str) -> Experiment:
    return make_experiment(figure, bench_config(bench_scale()))
