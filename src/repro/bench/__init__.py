"""Benchmark harness: experiments for every paper figure."""

from repro.bench.figures import FIGURES, NEGATIVE_FIGURES, make_database, make_experiment
from repro.bench.harness import Experiment, ExperimentRun, bench_scale

__all__ = [
    "Experiment",
    "ExperimentRun",
    "FIGURES",
    "NEGATIVE_FIGURES",
    "bench_scale",
    "make_database",
    "make_experiment",
]
