"""Column-equivalence classes.

A SELECT box's equality join predicates induce equivalence classes over its
input columns: ``faid = aid`` makes the two interchangeable in any
expression over that box. The paper exploits this in Section 4.1.1's
example (``aid`` is derived from the AST's ``faid``).

:class:`EquivalenceClasses` is a small union-find keyed by
:class:`~repro.expr.nodes.ColumnRef`; the class representative is the
smallest member under the normalization sort key so that rewriting is
deterministic.
"""

from __future__ import annotations

from repro.expr.nodes import BinaryOp, ColumnRef, Expr
from repro.expr.normalize import normalize, sort_key


class EquivalenceClasses:
    """Union-find over column references with deterministic representatives."""

    def __init__(self) -> None:
        self._parent: dict[ColumnRef, ColumnRef] = {}

    def _find(self, ref: ColumnRef) -> ColumnRef:
        if ref not in self._parent:
            return ref
        root = ref
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression.
        while self._parent.get(ref, ref) != root:
            self._parent[ref], ref = root, self._parent[ref]
        return root

    def add_equality(self, left: ColumnRef, right: ColumnRef) -> None:
        """Record that ``left`` and ``right`` always hold equal values."""
        root_left = self._find(left)
        root_right = self._find(right)
        if root_left == root_right:
            return
        # Keep the smaller key as representative for determinism.
        if sort_key(root_right) < sort_key(root_left):
            root_left, root_right = root_right, root_left
        self._parent.setdefault(root_left, root_left)
        self._parent[root_right] = root_left

    def add_predicate(self, predicate: Expr) -> bool:
        """Absorb a column=column equality predicate; True if it was one."""
        if (
            isinstance(predicate, BinaryOp)
            and predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            and isinstance(predicate.right, ColumnRef)
        ):
            self.add_equality(predicate.left, predicate.right)
            return True
        return False

    def representative(self, ref: ColumnRef) -> ColumnRef:
        """The canonical member of ``ref``'s class (``ref`` if singleton)."""
        return self._find(ref)

    def same_class(self, left: ColumnRef, right: ColumnRef) -> bool:
        return self._find(left) == self._find(right)

    def members(self, ref: ColumnRef) -> set[ColumnRef]:
        """Every known column equivalent to ``ref`` (including itself)."""
        root = self._find(ref)
        found = {root}
        for candidate in list(self._parent):
            if self._find(candidate) == root:
                found.add(candidate)
        return found

    def rewrite(self, expr: Expr) -> Expr:
        """Replace every column in ``expr`` with its class representative."""

        def visit(node: Expr) -> Expr | None:
            if isinstance(node, ColumnRef):
                return self._find(node)
            return None

        return expr.transform(visit)

    def classes(self) -> list[set[ColumnRef]]:
        """All non-singleton classes, for display and testing."""
        by_root: dict[ColumnRef, set[ColumnRef]] = {}
        for ref in self._parent:
            by_root.setdefault(self._find(ref), set()).add(ref)
        return [members for members in by_root.values() if len(members) > 1]


def equivalent(left: Expr, right: Expr, classes: EquivalenceClasses | None = None) -> bool:
    """Semantic equivalence test used throughout the matcher.

    Both sides are rewritten to class representatives (when ``classes`` is
    given) and compared by normal form.
    """
    return canonical(left, classes) == canonical(right, classes)


def canonical(expr: Expr, classes: EquivalenceClasses | None = None) -> Expr:
    """Rewrite to representatives, normalize, and drop equalities made
    trivial by the classes.

    Folding ``a = a`` to TRUE is *not* part of plain normalization (it is
    UNKNOWN when ``a`` is NULL), but under an asserted equivalence class
    the premise equality already excludes NULLs, so within the matcher's
    implication reasoning the fold is sound.
    """
    if classes is not None:
        expr = classes.rewrite(expr)
        expr = normalize(expr)
        expr = normalize(expr.transform(_fold_trivial_equality))
        return expr
    return normalize(expr)


def _fold_trivial_equality(node: Expr) -> Expr | None:
    if isinstance(node, BinaryOp) and node.op == "=" and node.left == node.right:
        from repro.expr.nodes import TRUE

        return TRUE
    return None
