"""Immutable expression trees.

Expressions are frozen dataclasses so they are hashable and comparable by
structure — the matcher's expression-equivalence tests reduce to ``==`` on
normalized trees (see :mod:`repro.expr.normalize`).

Design notes:

* ``+``, ``*``, ``AND`` and ``OR`` are modelled as *n-ary* nodes
  (:class:`NaryOp`) and flattened during normalization, so associativity
  and commutativity never block a match. Subtraction, division, modulo and
  comparisons stay binary.
* A :class:`ColumnRef` is the QGM notion of a QNC: a reference to a column
  ``name`` produced by the child bound to quantifier ``qualifier``. In raw
  parse trees the qualifier is a table alias (or None before binding).
* :class:`AggCall` covers COUNT(*), COUNT/SUM/AVG/MIN/MAX and the DISTINCT
  variants. Aggregates appear only in GROUP-BY box outputs.
* Every node caches its structural hash on first use (see
  :func:`_cached_hash`): the matcher and the rewrite fast path hash the
  same subtrees over and over (normalization memos, fingerprints, set
  membership), and the dataclass-generated hash walks the whole tree on
  every call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

COMMUTATIVE_OPS = ("+", "*", "and", "or")
ARITHMETIC_BINARY_OPS = ("-", "/", "%")
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: comparison op -> its mirror when the two sides are swapped
MIRRORED_COMPARISON = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: comparison op -> its negation
NEGATED_COMPARISON = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max")


def _cached_hash(cls):
    """Class decorator: memoize the dataclass-generated ``__hash__``.

    Nodes are immutable, so the structural hash never changes; computing
    it once and stashing it on the instance turns repeated hashing of a
    deep tree from O(size) into O(1). The cache lives in the instance
    ``__dict__`` and is invisible to the generated ``__eq__``/``__repr__``
    (both look only at declared fields).
    """
    structural_hash = cls.__hash__

    def __hash__(self, _structural=structural_hash):
        try:
            return self._hash
        except AttributeError:
            value = _structural(self)
            object.__setattr__(self, "_hash", value)
            return value

    cls.__hash__ = __hash__
    return cls


class Expr:
    """Base class for all expression nodes. Subclasses are frozen
    dataclasses; instances are immutable and hashable."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        """The direct sub-expressions, in a stable order."""
        raise NotImplementedError

    def with_children(self, children: tuple["Expr", ...]) -> "Expr":
        """A copy of this node with ``children`` substituted in order."""
        raise NotImplementedError

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def column_refs(self) -> list["ColumnRef"]:
        """All :class:`ColumnRef` leaves in the tree (with duplicates)."""
        return [node for node in self.walk() if isinstance(node, ColumnRef)]

    def contains_aggregate(self) -> bool:
        """True if any node in the tree is an :class:`AggCall`."""
        return any(isinstance(node, AggCall) for node in self.walk())

    def transform(self, visit: Callable[["Expr"], "Expr | None"]) -> "Expr":
        """Rewrite the tree top-down.

        ``visit`` is called on each node; returning a non-None expression
        replaces the node (and the replacement is *not* re-visited),
        returning None recurses into the children.
        """
        replacement = visit(self)
        if replacement is not None:
            return replacement
        children = self.children()
        if not children:
            return self
        new_children = tuple(child.transform(visit) for child in children)
        if new_children == children:
            return self
        return self.with_children(new_children)

    def substitute(self, mapping: dict["Expr", "Expr"]) -> "Expr":
        """Replace every occurrence of each key of ``mapping`` (matched by
        structural equality, largest-subtree-first) with its value."""
        return self.transform(lambda node: mapping.get(node))


@_cached_hash
@dataclass(frozen=True)
class Literal(Expr):
    """A constant. ``value is None`` means SQL NULL."""

    value: Any

    def children(self) -> tuple[Expr, ...]:
        return ()

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return self

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


TRUE = Literal(True)
FALSE = Literal(False)
NULL = Literal(None)


@_cached_hash
@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to column ``name`` of the child bound to quantifier
    ``qualifier`` (a QNC in QGM terms)."""

    qualifier: str | None
    name: str

    def children(self) -> tuple[Expr, ...]:
        return ()

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return self

    def __repr__(self) -> str:
        if self.qualifier is None:
            return f"Col({self.name})"
        return f"Col({self.qualifier}.{self.name})"


@_cached_hash
@dataclass(frozen=True)
class FuncCall(Expr):
    """A scalar (non-aggregate) function call, e.g. ``year(date)``."""

    name: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return FuncCall(self.name, children)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


@_cached_hash
@dataclass(frozen=True)
class NaryOp(Expr):
    """A flattened commutative/associative operator: +, *, and, or."""

    op: str
    operands: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.op not in COMMUTATIVE_OPS:
            raise ValueError(f"NaryOp does not support operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return NaryOp(self.op, children)

    def __repr__(self) -> str:
        return f" {self.op} ".join(map(repr, self.operands)).join("()")


@_cached_hash
@dataclass(frozen=True)
class BinaryOp(Expr):
    """A non-commutative binary operator: - / % and the comparisons."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITHMETIC_BINARY_OPS + COMPARISON_OPS:
            raise ValueError(f"BinaryOp does not support operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return BinaryOp(self.op, children[0], children[1])

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@_cached_hash
@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary minus or logical NOT."""

    op: str  # '-' or 'not'
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("-", "not"):
            raise ValueError(f"UnaryOp does not support operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return UnaryOp(self.op, children[0])

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


@_cached_hash
@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS NULL`` or, when ``negated``, ``expr IS NOT NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return IsNull(children[0], self.negated)

    def __repr__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand!r} {suffix})"


@_cached_hash
@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (item, ...)`` over literal or scalar items."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,) + self.items

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return InList(children[0], tuple(children[1:]), self.negated)

    def __repr__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand!r} {keyword} {list(self.items)!r})"


@_cached_hash
@dataclass(frozen=True)
class CaseWhen(Expr):
    """Searched CASE: ``CASE WHEN c1 THEN v1 ... ELSE e END``.

    ``branches`` holds (condition, value) pairs flattened into one tuple so
    the node stays hashable; ``default`` may be NULL.
    """

    branches: tuple[Expr, ...]  # c1, v1, c2, v2, ...
    default: Expr = field(default_factory=lambda: NULL)

    def __post_init__(self) -> None:
        if not self.branches or len(self.branches) % 2 != 0:
            raise ValueError("CaseWhen needs (condition, value) pairs")

    def children(self) -> tuple[Expr, ...]:
        return self.branches + (self.default,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return CaseWhen(tuple(children[:-1]), children[-1])

    def pairs(self) -> list[tuple[Expr, Expr]]:
        return [
            (self.branches[i], self.branches[i + 1])
            for i in range(0, len(self.branches), 2)
        ]

    def __repr__(self) -> str:
        whens = " ".join(f"WHEN {c!r} THEN {v!r}" for c, v in self.pairs())
        return f"(CASE {whens} ELSE {self.default!r} END)"


@_cached_hash
@dataclass(frozen=True)
class AggCall(Expr):
    """An aggregate function application.

    ``arg is None`` encodes COUNT(*). ``distinct`` marks COUNT(DISTINCT x)
    and SUM(DISTINCT x).
    """

    func: str
    arg: Expr | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.func != "count" and self.arg is None:
            raise ValueError(f"{self.func}() requires an argument")

    def children(self) -> tuple[Expr, ...]:
        return () if self.arg is None else (self.arg,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        arg = children[0] if children else None
        return AggCall(self.func, arg, self.distinct)

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func.upper()}({inner})"


def conjunction(predicates: list[Expr]) -> Expr:
    """AND together a list of predicates (TRUE when empty)."""
    live = [p for p in predicates if p != TRUE]
    if not live:
        return TRUE
    if len(live) == 1:
        return live[0]
    return NaryOp("and", tuple(live))


def disjunction(predicates: list[Expr]) -> Expr:
    """OR together a list of predicates (FALSE when empty)."""
    live = [p for p in predicates if p != FALSE]
    if not live:
        return FALSE
    if len(live) == 1:
        return live[0]
    return NaryOp("or", tuple(live))


def split_conjuncts(predicate: Expr) -> list[Expr]:
    """Split a predicate into its top-level AND conjuncts."""
    if isinstance(predicate, NaryOp) and predicate.op == "and":
        conjuncts: list[Expr] = []
        for operand in predicate.operands:
            conjuncts.extend(split_conjuncts(operand))
        return conjuncts
    if predicate == TRUE:
        return []
    return [predicate]
