"""Expression normalization.

Two expressions are *syntactically equivalent* when their normal forms are
equal. Normalization performs:

* bottom-up constant folding (guarded: runtime errors such as division by
  zero leave the node unfolded),
* flattening of nested n-ary operators (``(a+b)+c`` → ``+(a,b,c)``),
* canonical sorting of commutative operands via a deterministic total
  order on trees,
* identity-element removal (``x+0``, ``x*1``, ``AND TRUE``, ``OR FALSE``),
* direction canonicalization of comparisons (the lesser side, per the
  total order, goes left: ``10 < x`` → ``x > 10``),
* NOT elimination: double negation, negated comparisons, negated IS NULL,
  and De Morgan over AND/OR.

The result is deterministic and idempotent (property-tested).

Normalization is memoized two ways (the matching fast path leans on
both): :func:`normalize` results are interned in an LRU keyed by the
(hash-consed) input node, so structurally equal inputs return the *same*
normal-form object; and every returned normal form is tagged as such, so
re-normalizing it — the common case inside ``matchfn``/``derivation``,
which normalize both sides before every equivalence check — returns
immediately without even a cache probe. Equality checks on normal forms
then short-circuit on the cached structural hash before any tree walk.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any

from repro.errors import ExecutionError
from repro.expr.evaluator import evaluate_constant, is_constant
from repro.expr.nodes import (
    FALSE,
    MIRRORED_COMPARISON,
    NEGATED_COMPARISON,
    TRUE,
    AggCall,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
)

SortKey = tuple


def sort_key(expr: Expr) -> SortKey:
    """A deterministic total order over expression trees."""
    try:
        return expr._sort_key
    except AttributeError:
        key = _sort_key(expr)
        object.__setattr__(expr, "_sort_key", key)
        return key


def _sort_key(expr: Expr) -> SortKey:
    if isinstance(expr, Literal):
        return (0, _value_key(expr.value))
    if isinstance(expr, ColumnRef):
        return (1, expr.qualifier or "", expr.name)
    if isinstance(expr, FuncCall):
        return (2, expr.name, tuple(sort_key(a) for a in expr.args))
    if isinstance(expr, AggCall):
        arg_key = () if expr.arg is None else sort_key(expr.arg)
        return (3, expr.func, expr.distinct, arg_key)
    if isinstance(expr, UnaryOp):
        return (4, expr.op, sort_key(expr.operand))
    if isinstance(expr, BinaryOp):
        return (5, expr.op, sort_key(expr.left), sort_key(expr.right))
    if isinstance(expr, NaryOp):
        return (6, expr.op, tuple(sort_key(o) for o in expr.operands))
    if isinstance(expr, IsNull):
        return (7, expr.negated, sort_key(expr.operand))
    if isinstance(expr, InList):
        return (
            8,
            expr.negated,
            sort_key(expr.operand),
            tuple(sort_key(i) for i in expr.items),
        )
    if isinstance(expr, CaseWhen):
        return (9, tuple(sort_key(b) for b in expr.branches), sort_key(expr.default))
    raise TypeError(f"no sort key for {expr!r}")


def _value_key(value: Any) -> SortKey:
    # Mixed-type literals must still sort deterministically.
    return (type(value).__name__, repr(value))


def normalize(expr: Expr) -> Expr:
    """The canonical form of ``expr`` (idempotent)."""
    if getattr(expr, "_is_normal", False):
        return expr
    result = _normalize_cached(expr)
    object.__setattr__(result, "_is_normal", True)
    return result


@lru_cache(maxsize=65536)
def _normalize_cached(expr: Expr) -> Expr:
    children = expr.children()
    if children:
        expr = expr.with_children(tuple(normalize(child) for child in children))
    if isinstance(expr, NaryOp):
        return _normalize_nary(expr)
    if isinstance(expr, BinaryOp):
        return _normalize_binary(expr)
    if isinstance(expr, UnaryOp):
        return _normalize_unary(expr)
    if isinstance(expr, (FuncCall, IsNull, InList)):
        return _fold(expr)
    if isinstance(expr, CaseWhen):
        return _fold(expr)
    return expr


def _fold(expr: Expr) -> Expr:
    """Replace a constant subtree by its value, if it evaluates cleanly."""
    if isinstance(expr, Literal) or not is_constant(expr):
        return expr
    try:
        return Literal(evaluate_constant(expr))
    except ExecutionError:
        return expr


def _normalize_nary(expr: NaryOp) -> Expr:
    flat: list[Expr] = []
    for operand in expr.operands:
        if isinstance(operand, NaryOp) and operand.op == expr.op:
            flat.extend(operand.operands)
        else:
            flat.append(operand)

    if expr.op == "and":
        return _normalize_logical(flat, identity=TRUE, absorber=FALSE, op="and")
    if expr.op == "or":
        return _normalize_logical(flat, identity=FALSE, absorber=TRUE, op="or")

    identity_value = 0 if expr.op == "+" else 1
    constants = [o for o in flat if isinstance(o, Literal)]
    others = [o for o in flat if not isinstance(o, Literal)]
    folded: Expr | None = None
    if constants:
        if any(c.value is None for c in constants):
            # NULL in arithmetic annihilates the whole expression.
            return Literal(None)
        total = constants[0].value
        for constant in constants[1:]:
            total = total + constant.value if expr.op == "+" else total * constant.value
        if total != identity_value or not others:
            folded = Literal(total)
    operands = sorted(others, key=sort_key)
    if folded is not None:
        operands.append(folded)
    if not operands:
        return Literal(identity_value)
    if len(operands) == 1:
        return operands[0]
    return NaryOp(expr.op, tuple(operands))


def _normalize_logical(
    operands: list[Expr], identity: Literal, absorber: Literal, op: str
) -> Expr:
    live: list[Expr] = []
    for operand in operands:
        if operand == identity:
            continue
        if operand == absorber:
            return absorber
        live.append(operand)
    unique: list[Expr] = []
    seen: set[Expr] = set()
    for operand in sorted(live, key=sort_key):
        if operand not in seen:
            seen.add(operand)
            unique.append(operand)
    if not unique:
        return identity
    if len(unique) == 1:
        return unique[0]
    return NaryOp(op, tuple(unique))


def _normalize_binary(expr: BinaryOp) -> Expr:
    folded = _fold(expr)
    if isinstance(folded, Literal):
        return folded
    if expr.op in MIRRORED_COMPARISON and _should_swap(expr.left, expr.right):
        return BinaryOp(MIRRORED_COMPARISON[expr.op], expr.right, expr.left)
    return expr


def _should_swap(left: Expr, right: Expr) -> bool:
    """Canonical comparison direction: the non-literal side goes left
    (so ``10 < x`` becomes ``x > 10``); otherwise order by sort key."""
    left_literal = isinstance(left, Literal)
    right_literal = isinstance(right, Literal)
    if left_literal != right_literal:
        return left_literal
    return sort_key(right) < sort_key(left)


def _normalize_unary(expr: UnaryOp) -> Expr:
    inner = expr.operand
    if expr.op == "-":
        if isinstance(inner, Literal):
            return Literal(None if inner.value is None else -inner.value)
        if isinstance(inner, UnaryOp) and inner.op == "-":
            return inner.operand
        return expr
    # NOT elimination.
    if isinstance(inner, Literal):
        if inner.value is None:
            return Literal(None)
        return Literal(not inner.value)
    if isinstance(inner, UnaryOp) and inner.op == "not":
        return inner.operand
    if isinstance(inner, BinaryOp) and inner.op in NEGATED_COMPARISON:
        return normalize(BinaryOp(NEGATED_COMPARISON[inner.op], inner.left, inner.right))
    if isinstance(inner, IsNull):
        return IsNull(inner.operand, not inner.negated)
    if isinstance(inner, InList):
        return InList(inner.operand, inner.items, not inner.negated)
    if isinstance(inner, NaryOp) and inner.op in ("and", "or"):
        flipped = "or" if inner.op == "and" else "and"
        negated = tuple(normalize(UnaryOp("not", o)) for o in inner.operands)
        return normalize(NaryOp(flipped, negated))
    return expr


def normal_equal(left: Expr, right: Expr) -> bool:
    """Syntactic equivalence: equality of normal forms.

    Compares hash-first: normal forms are interned, so equal trees are
    usually the same object, and unequal trees almost always differ in
    their (cached) structural hash — the full tree comparison runs only
    on a hash collision.
    """
    left_normal = normalize(left)
    right_normal = normalize(right)
    if left_normal is right_normal:
        return True
    if hash(left_normal) != hash(right_normal):
        return False
    return left_normal == right_normal
