"""Vectorized expression compilation for the batch executor.

:func:`compile_vector` turns an :class:`~repro.expr.nodes.Expr` tree into
a closure evaluated once per **batch** instead of once per row: the tree
is walked a single time at compile, and the resulting function computes a
whole column of values for a *selection vector* of row indices.  The
per-row cost drops from a full interpreter dispatch per node to one list
comprehension per node.

Semantics are identical to :func:`repro.expr.evaluator.evaluate` —
including *where* evaluation happens, not just what it produces:

* SQL's 3-valued logic (NULL propagation, Kleene AND/OR) is preserved
  element-wise.
* Evaluation *sets* are preserved.  The row interpreter short-circuits:
  AND stops at the first False operand, ``x IN (...)`` never evaluates
  the item list for a NULL operand, CASE evaluates a THEN branch only
  for rows whose condition matched.  The compiled closures mirror this
  with shrinking selection vectors, so a guarded expression that would
  divide by zero on excluded rows raises in neither engine.

Compiled closures have the signature ``fn(resolve, sel) -> list`` where
``resolve(ColumnRef)`` returns the full column as a plain value list and
``sel`` is a ``range`` or list of row indices; the result is aligned
with ``sel``.  Compilation is memoized on the (hash-consed) expression
node.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError
from repro.expr.functions import lookup_function
from repro.expr.nodes import (
    AggCall,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
)

#: resolve(ColumnRef) -> the full column as a plain value list
ColumnResolver = Callable[[ColumnRef], list]
#: a compiled expression: (resolve, selection) -> values aligned with sel
VectorFn = Callable[[ColumnResolver, Sequence[int]], list]

_COMPARISONS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: memoized compilations; expressions are hash-consed (PR 1), so this is
#: effectively keyed by structure.  Bounded crudely — compilation is
#: cheap, the cache only needs to cover a working set of hot queries.
_CACHE: dict[Expr, VectorFn] = {}
_CACHE_LIMIT = 4096


def compile_vector(expr: Expr) -> VectorFn:
    """Compile ``expr`` into a batch evaluator (memoized)."""
    fn = _CACHE.get(expr)
    if fn is None:
        fn = _compile(expr)
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[expr] = fn
    return fn


def conjuncts(expr: Expr) -> list[Expr]:
    """Split a predicate into top-level AND operands.

    Filtering applies each conjunct as its own selection pass, which is
    exactly the row interpreter's short-circuit order: a row rejected by
    conjunct *k* never evaluates conjunct *k+1*.
    """
    if isinstance(expr, NaryOp) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(conjuncts(operand))
        return out
    return [expr]


def _gather(column: list, sel) -> list:
    """Column values at ``sel``; zero-copy when ``sel`` is the identity."""
    if type(sel) is range and len(sel) == len(column):
        return column
    return [column[i] for i in sel]


# ----------------------------------------------------------------------
# Node compilers
# ----------------------------------------------------------------------
def _compile(expr: Expr) -> VectorFn:
    if isinstance(expr, Literal):
        value = expr.value

        def run_literal(resolve, sel, _v=value):
            return [_v] * len(sel)

        return run_literal

    if isinstance(expr, ColumnRef):

        def run_column(resolve, sel, _ref=expr):
            return _gather(resolve(_ref), sel)

        return run_column

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr)
    if isinstance(expr, NaryOp):
        return _compile_nary(expr)
    if isinstance(expr, UnaryOp):
        return _compile_unary(expr)
    if isinstance(expr, IsNull):
        return _compile_is_null(expr)
    if isinstance(expr, InList):
        return _compile_in_list(expr)
    if isinstance(expr, CaseWhen):
        return _compile_case(expr)
    if isinstance(expr, FuncCall):
        return _compile_function(expr)
    if isinstance(expr, AggCall):
        raise ExecutionError(f"aggregate {expr!r} outside GROUP-BY context")
    raise ExecutionError(f"cannot evaluate expression node {expr!r}")


def _compile_binary(expr: BinaryOp) -> VectorFn:
    left = compile_vector(expr.left)
    right = compile_vector(expr.right)
    op = expr.op
    comparison = _COMPARISONS.get(op)
    if comparison is not None:
        # Constant-operand fast paths skip a zip and a None test per row.
        if isinstance(expr.right, Literal) and expr.right.value is not None:
            rv = expr.right.value

            def run_cmp_rconst(resolve, sel, _f=left, _op=comparison, _rv=rv):
                return [
                    None if a is None else _op(a, _rv)
                    for a in _f(resolve, sel)
                ]

            return run_cmp_rconst
        if isinstance(expr.left, Literal) and expr.left.value is not None:
            lv = expr.left.value

            def run_cmp_lconst(resolve, sel, _f=right, _op=comparison, _lv=lv):
                return [
                    None if b is None else _op(_lv, b)
                    for b in _f(resolve, sel)
                ]

            return run_cmp_lconst

        def run_cmp(resolve, sel, _l=left, _r=right, _op=comparison):
            return [
                None if a is None or b is None else _op(a, b)
                for a, b in zip(_l(resolve, sel), _r(resolve, sel))
            ]

        return run_cmp

    if op == "-":

        def run_sub(resolve, sel, _l=left, _r=right):
            return [
                None if a is None or b is None else a - b
                for a, b in zip(_l(resolve, sel), _r(resolve, sel))
            ]

        return run_sub

    if op == "/":

        def run_div(resolve, sel, _l=left, _r=right):
            out = []
            append = out.append
            for a, b in zip(_l(resolve, sel), _r(resolve, sel)):
                if a is None or b is None:
                    append(None)
                elif b == 0:
                    raise ExecutionError("division by zero")
                else:
                    append(a / b)
            return out

        return run_div

    if op == "%":

        def run_mod(resolve, sel, _l=left, _r=right):
            out = []
            append = out.append
            for a, b in zip(_l(resolve, sel), _r(resolve, sel)):
                if a is None or b is None:
                    append(None)
                elif b == 0:
                    raise ExecutionError("division by zero in %")
                else:
                    append(a % b)
            return out

        return run_mod

    raise ExecutionError(f"unknown binary operator {op!r}")


def _compile_nary(expr: NaryOp) -> VectorFn:
    fns = [compile_vector(operand) for operand in expr.operands]
    if expr.op == "and":
        return _compile_kleene(fns, short_on=False)
    if expr.op == "or":
        return _compile_kleene(fns, short_on=True)
    if expr.op == "+":

        def run_add(resolve, sel, _fns=fns):
            columns = [fn(resolve, sel) for fn in _fns]
            return [
                None if any(v is None for v in values) else sum(values)
                for values in zip(*columns)
            ]

        return run_add

    if expr.op == "*":

        def run_mul(resolve, sel, _fns=fns):
            columns = [fn(resolve, sel) for fn in _fns]
            out = []
            append = out.append
            for values in zip(*columns):
                if any(v is None for v in values):
                    append(None)
                    continue
                product: Any = 1
                for value in values:
                    product = product * value
                append(product)
            return out

        return run_mul

    raise ExecutionError(f"unknown n-ary operator {expr.op!r}")


def _compile_kleene(fns: list[VectorFn], short_on: bool) -> VectorFn:
    """Kleene AND (``short_on=False``) / OR (``short_on=True``) with the
    interpreter's evaluation set: a row whose result is already decided
    (False for AND, True for OR) drops out of the selection before the
    next operand runs."""
    undecided = not short_on  # AND starts at True, OR at False

    def run(resolve, sel):
        out: list = [undecided] * len(sel)
        positions = range(len(sel))
        indices = sel
        for fn in fns:
            if not len(indices):
                break
            values = fn(resolve, indices)
            still = []
            for pos, value in zip(positions, values):
                if value is short_on:
                    out[pos] = short_on
                else:
                    if value is None:
                        out[pos] = None
                    still.append(pos)
            if len(still) != len(values):
                positions = still
                indices = [sel[p] for p in still]
        return out

    return run


def _compile_unary(expr: UnaryOp) -> VectorFn:
    operand = compile_vector(expr.operand)
    if expr.op == "-":

        def run_neg(resolve, sel, _f=operand):
            return [None if v is None else -v for v in _f(resolve, sel)]

        return run_neg

    if expr.op == "not":

        def run_not(resolve, sel, _f=operand):
            return [None if v is None else not v for v in _f(resolve, sel)]

        return run_not

    raise ExecutionError(f"unknown unary operator {expr.op!r}")


def _compile_is_null(expr: IsNull) -> VectorFn:
    operand = compile_vector(expr.operand)
    if expr.negated:

        def run_not_null(resolve, sel, _f=operand):
            return [v is not None for v in _f(resolve, sel)]

        return run_not_null

    def run_is_null(resolve, sel, _f=operand):
        return [v is None for v in _f(resolve, sel)]

    return run_is_null


def _compile_in_list(expr: InList) -> VectorFn:
    operand = compile_vector(expr.operand)
    negated = expr.negated
    literals = [
        item.value for item in expr.items if isinstance(item, Literal)
    ]
    if len(literals) == len(expr.items):
        # All-literal item list: one membership probe per row.  A literal
        # NULL item can only turn a miss into UNKNOWN, never a hit.
        saw_null = any(value is None for value in literals)
        try:
            members: Any = frozenset(v for v in literals if v is not None)
        except TypeError:  # unhashable literal (never parsed today)
            members = [v for v in literals if v is not None]

        def run_in_literals(
            resolve, sel, _f=operand, _m=members, _null=saw_null, _neg=negated
        ):
            out = []
            append = out.append
            for value in _f(resolve, sel):
                if value is None:
                    append(None)
                elif value in _m:
                    append(not _neg)
                elif _null:
                    append(None)
                else:
                    append(_neg)
            return out

        return run_in_literals

    item_fns = [compile_vector(item) for item in expr.items]

    def run_in(resolve, sel, _f=operand, _items=item_fns, _neg=negated):
        values = _f(resolve, sel)
        # The interpreter never evaluates the item list for NULL
        # operands; restrict the item columns the same way.
        probe = [i for i, v in zip(sel, values) if v is not None]
        item_columns = [fn(resolve, probe) for fn in _items]
        out: list = []
        append = out.append
        probe_pos = 0
        for value in values:
            if value is None:
                append(None)
                continue
            found = False
            saw_null = False
            for column in item_columns:
                item_value = column[probe_pos]
                if item_value is None:
                    saw_null = True
                elif item_value == value:
                    found = True
                    break
            probe_pos += 1
            if found:
                append(not _neg)
            elif saw_null:
                append(None)
            else:
                append(_neg)
        return out

    return run_in


def _compile_case(expr: CaseWhen) -> VectorFn:
    pairs = [
        (compile_vector(condition), compile_vector(result))
        for condition, result in expr.pairs()
    ]
    default = compile_vector(expr.default)

    def run_case(resolve, sel):
        out: list = [None] * len(sel)
        active = list(range(len(sel)))
        for condition_fn, result_fn in pairs:
            if not active:
                break
            indices = [sel[p] for p in active]
            conditions = condition_fn(resolve, indices)
            matched = [p for p, c in zip(active, conditions) if c is True]
            if matched:
                results = result_fn(resolve, [sel[p] for p in matched])
                for p, value in zip(matched, results):
                    out[p] = value
            active = [p for p, c in zip(active, conditions) if c is not True]
        if active:
            defaults = default(resolve, [sel[p] for p in active])
            for p, value in zip(active, defaults):
                out[p] = value
        return out

    return run_case


def _compile_function(expr: FuncCall) -> VectorFn:
    function = lookup_function(expr.name)
    if function is None:
        raise ExecutionError(f"unknown function {expr.name!r}")
    arg_fns = [compile_vector(arg) for arg in expr.args]
    impl = function.impl
    if function.null_propagating and len(arg_fns) == 1:
        fn = arg_fns[0]

        def run_func1(resolve, sel, _f=fn, _impl=impl):
            return [None if v is None else _impl(v) for v in _f(resolve, sel)]

        return run_func1

    null_propagating = function.null_propagating

    def run_func(resolve, sel, _fns=arg_fns, _impl=impl, _np=null_propagating):
        columns = [fn(resolve, sel) for fn in _fns]
        out = []
        append = out.append
        for args in zip(*columns) if columns else ((),) * len(sel):
            if _np and any(v is None for v in args):
                append(None)
            else:
                append(_impl(*args))
        return out

    return run_func
