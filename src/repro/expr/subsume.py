"""Predicate subsumption.

Footnote 4 of the paper generalizes predicate matching: a subsumer
predicate ``p1`` may *subsume* a subsumee predicate ``p2``, meaning every
row eliminated by ``p1`` is also eliminated by ``p2`` — equivalently,
``p2 implies p1`` (e.g. ``x > 10`` subsumes ``x > 20``). When that holds,
the AST retains every row the query needs and the (stricter) query
predicate is re-applied in the compensation.

We decide implication for the practically useful fragment:

* identical predicates (after canonicalization),
* single-column/expression comparisons against constants (interval logic),
* equality implies any satisfied comparison (``x = 30`` implies ``x > 20``),
* IN-lists (implication = list containment; all members satisfy a range),
* a conjunction implies anything one of its conjuncts implies.

Everything else conservatively returns False — sound, never complete.
"""

from __future__ import annotations

from typing import Any

from repro.expr.equivalence import EquivalenceClasses, canonical
from repro.expr.nodes import (
    COMPARISON_OPS,
    BinaryOp,
    Expr,
    InList,
    Literal,
    NaryOp,
)


def implies(premise: Expr, conclusion: Expr, classes: EquivalenceClasses | None = None) -> bool:
    """True when every row satisfying ``premise`` satisfies ``conclusion``."""
    premise = canonical(premise, classes)
    conclusion = canonical(conclusion, classes)
    return _implies(premise, conclusion)


def subsumes(subsumer_pred: Expr, subsumee_pred: Expr, classes: EquivalenceClasses | None = None) -> bool:
    """Paper footnote 4: subsumer predicate keeps every row the (stricter)
    subsumee predicate keeps."""
    return implies(subsumee_pred, subsumer_pred, classes)


def _implies(premise: Expr, conclusion: Expr) -> bool:
    if premise == conclusion:
        return True
    if isinstance(premise, NaryOp) and premise.op == "and":
        if any(_implies(conjunct, conclusion) for conjunct in premise.operands):
            return True
    if isinstance(conclusion, NaryOp) and conclusion.op == "and":
        return all(_implies(premise, conjunct) for conjunct in conclusion.operands)
    if isinstance(conclusion, NaryOp) and conclusion.op == "or":
        if any(_implies(premise, disjunct) for disjunct in conclusion.operands):
            return True
    if isinstance(premise, NaryOp) and premise.op == "or":
        return all(_implies(disjunct, conclusion) for disjunct in premise.operands)

    premise_parts = _as_constant_test(premise)
    conclusion_parts = _as_constant_test(conclusion)
    if premise_parts is None or conclusion_parts is None:
        return False
    subject_p, op_p, values_p = premise_parts
    subject_c, op_c, values_c = conclusion_parts
    if subject_p != subject_c:
        return False
    return _constant_test_implies(op_p, values_p, op_c, values_c)


def _as_constant_test(
    predicate: Expr,
) -> tuple[Expr, str, tuple[Any, ...]] | None:
    """Decompose ``predicate`` into (subject, op, constants).

    Handles ``subject <cmp> literal`` (either direction) and
    ``subject IN (literals)``. Returns None for anything else.
    """
    if isinstance(predicate, BinaryOp) and predicate.op in COMPARISON_OPS:
        if isinstance(predicate.right, Literal):
            if predicate.right.value is None:
                return None
            return (predicate.left, predicate.op, (predicate.right.value,))
        return None
    if isinstance(predicate, InList) and not predicate.negated:
        values = []
        for item in predicate.items:
            if not isinstance(item, Literal) or item.value is None:
                return None
            values.append(item.value)
        return (predicate.operand, "in", tuple(values))
    return None


def _satisfies(value: Any, op: str, bounds: tuple[Any, ...]) -> bool:
    """Does a known constant ``value`` satisfy ``op bounds``?"""
    try:
        if op == "=":
            return value == bounds[0]
        if op == "<>":
            return value != bounds[0]
        if op == "<":
            return value < bounds[0]
        if op == "<=":
            return value <= bounds[0]
        if op == ">":
            return value > bounds[0]
        if op == ">=":
            return value >= bounds[0]
        if op == "in":
            return value in bounds
    except TypeError:
        return False
    return False


def _constant_test_implies(
    op_p: str, values_p: tuple[Any, ...], op_c: str, values_c: tuple[Any, ...]
) -> bool:
    """Implication between two constant tests on the same subject."""
    # Premises with finitely many satisfying values: check each one.
    if op_p == "=":
        return _satisfies(values_p[0], op_c, values_c)
    if op_p == "in":
        return all(_satisfies(value, op_c, values_c) for value in values_p)

    constant_p = values_p[0]
    if op_c == "<>":
        # A range implies x <> c only if c lies outside the range.
        return not _satisfies(values_c[0], op_p, values_p)
    if op_c not in ("<", "<=", ">", ">="):
        return False
    if op_p not in ("<", "<=", ">", ">="):
        return False
    # Same-direction interval containment, e.g. x > 20 implies x > 10.
    constant_c = values_c[0]
    try:
        if op_p in (">", ">=") and op_c in (">", ">="):
            if constant_p > constant_c:
                return True
            if constant_p == constant_c:
                return not (op_p == ">=" and op_c == ">")
            return False
        if op_p in ("<", "<=") and op_c in ("<", "<="):
            if constant_p < constant_c:
                return True
            if constant_p == constant_c:
                return not (op_p == "<=" and op_c == "<")
            return False
    except TypeError:
        return False
    return False
