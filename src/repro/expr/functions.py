"""Registry of built-in scalar functions.

The paper's time dimension is encoded in ``Trans.date`` and extracted via
built-in functions (``year``, ``month``, ``day``), so these must exist both
in the evaluator and in the matcher (which treats them as opaque,
deterministic functions — two calls match iff names and arguments match).

All functions are deterministic. All propagate NULL (NULL in any argument
produces NULL) except ``coalesce``, which is flagged accordingly so the
evaluator can special-case it.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExecutionError


@dataclass(frozen=True)
class ScalarFunction:
    """Metadata + implementation for one built-in scalar function."""

    name: str
    arity: tuple[int, int]  # (min_args, max_args); max -1 = variadic
    null_propagating: bool
    impl: Callable[..., Any]

    def check_arity(self, count: int) -> bool:
        low, high = self.arity
        if count < low:
            return False
        return high < 0 or count <= high


def _year(d: datetime.date) -> int:
    return d.year


def _month(d: datetime.date) -> int:
    return d.month


def _day(d: datetime.date) -> int:
    return d.day


def _quarter(d: datetime.date) -> int:
    return (d.month - 1) // 3 + 1


def _dayofweek(d: datetime.date) -> int:
    # 1 = Sunday ... 7 = Saturday, following DB2's DAYOFWEEK.
    return d.isoweekday() % 7 + 1


def _mod(a: Any, b: Any) -> Any:
    if b == 0:
        raise ExecutionError("division by zero in mod()")
    return a % b


def _round(x: Any, digits: Any = 0) -> Any:
    return round(x, int(digits))


def _coalesce(*args: Any) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _substr(value: str, start: Any, length: Any = None) -> str:
    # SQL semantics: 1-based start; negative/zero starts clamp to 1.
    begin = max(int(start), 1) - 1
    if length is None:
        return value[begin:]
    if length < 0:
        raise ExecutionError("substr() length must be non-negative")
    return value[begin : begin + int(length)]


def _concat(*parts: Any) -> str:
    return "".join(str(part) for part in parts)


def _trim(value: str) -> str:
    return value.strip()


_REGISTRY: dict[str, ScalarFunction] = {}


def _register(
    name: str,
    impl: Callable[..., Any],
    arity: tuple[int, int],
    null_propagating: bool = True,
) -> None:
    _REGISTRY[name] = ScalarFunction(name, arity, null_propagating, impl)


_register("year", _year, (1, 1))
_register("month", _month, (1, 1))
_register("day", _day, (1, 1))
_register("quarter", _quarter, (1, 1))
_register("dayofweek", _dayofweek, (1, 1))
_register("abs", abs, (1, 1))
_register("mod", _mod, (2, 2))
_register("upper", str.upper, (1, 1))
_register("lower", str.lower, (1, 1))
_register("length", len, (1, 1))
_register("round", _round, (1, 2))
_register("floor", math.floor, (1, 1))
_register("ceil", math.ceil, (1, 1))
_register("coalesce", _coalesce, (1, -1), null_propagating=False)
_register("substr", _substr, (2, 3))
_register("substring", _substr, (2, 3))
_register("concat", _concat, (1, -1))
_register("trim", _trim, (1, 1))


def lookup_function(name: str) -> ScalarFunction | None:
    """The registered function for ``name`` (case-insensitive), or None."""
    return _REGISTRY.get(name.lower())


def function_names() -> list[str]:
    """All registered function names, sorted."""
    return sorted(_REGISTRY)
