"""Expression trees, evaluation, normalization, equivalence, subsumption."""

from repro.expr.equivalence import EquivalenceClasses, canonical, equivalent
from repro.expr.evaluator import evaluate, evaluate_constant, is_constant
from repro.expr.nodes import (
    AGGREGATE_FUNCS,
    FALSE,
    NULL,
    TRUE,
    AggCall,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
    conjunction,
    disjunction,
    split_conjuncts,
)
from repro.expr.normalize import normal_equal, normalize, sort_key
from repro.expr.subsume import implies, subsumes

__all__ = [
    "AGGREGATE_FUNCS",
    "AggCall",
    "BinaryOp",
    "CaseWhen",
    "ColumnRef",
    "EquivalenceClasses",
    "Expr",
    "FALSE",
    "FuncCall",
    "InList",
    "IsNull",
    "Literal",
    "NULL",
    "NaryOp",
    "TRUE",
    "UnaryOp",
    "canonical",
    "conjunction",
    "disjunction",
    "equivalent",
    "evaluate",
    "evaluate_constant",
    "implies",
    "is_constant",
    "normal_equal",
    "normalize",
    "sort_key",
    "split_conjuncts",
    "subsumes",
]
