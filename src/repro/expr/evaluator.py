"""Scalar expression evaluation under SQL's 3-valued logic.

Predicates evaluate to True, False or None (UNKNOWN); WHERE and HAVING keep
a row only when the predicate is True. Arithmetic and comparisons propagate
NULL. AND/OR follow Kleene logic.

Aggregates are *not* evaluated here — :class:`repro.expr.nodes.AggCall`
nodes are computed by the GROUP-BY operator in the engine; encountering one
in scalar context is a programming error and raises.

This module is the *semantic reference*: one row at a time, one
interpreter dispatch per node. The batch executor instead compiles
expressions with :mod:`repro.expr.vector` into per-batch closures;
``tests/expr/test_vector.py`` holds the two element-for-element equal
(including where evaluation happens — guarded divisions raise in
neither). Change semantics here and the vector compiler must follow.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ExecutionError
from repro.expr.functions import lookup_function
from repro.expr.nodes import (
    AggCall,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
)

Resolver = Callable[[ColumnRef], Any]


def evaluate(expr: Expr, resolve: Resolver) -> Any:
    """Evaluate ``expr``; column values come from ``resolve``."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return resolve(expr)
    if isinstance(expr, FuncCall):
        return _evaluate_function(expr, resolve)
    if isinstance(expr, NaryOp):
        return _evaluate_nary(expr, resolve)
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, resolve)
    if isinstance(expr, UnaryOp):
        return _evaluate_unary(expr, resolve)
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, resolve)
        return value is not None if expr.negated else value is None
    if isinstance(expr, InList):
        return _evaluate_in_list(expr, resolve)
    if isinstance(expr, CaseWhen):
        for condition, result in expr.pairs():
            if evaluate(condition, resolve) is True:
                return evaluate(result, resolve)
        return evaluate(expr.default, resolve)
    if isinstance(expr, AggCall):
        raise ExecutionError(f"aggregate {expr!r} outside GROUP-BY context")
    raise ExecutionError(f"cannot evaluate expression node {expr!r}")


def _evaluate_function(expr: FuncCall, resolve: Resolver) -> Any:
    function = lookup_function(expr.name)
    if function is None:
        raise ExecutionError(f"unknown function {expr.name!r}")
    args = [evaluate(arg, resolve) for arg in expr.args]
    if function.null_propagating and any(value is None for value in args):
        return None
    return function.impl(*args)


def _evaluate_nary(expr: NaryOp, resolve: Resolver) -> Any:
    if expr.op == "and":
        saw_null = False
        for operand in expr.operands:
            value = evaluate(operand, resolve)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True
    if expr.op == "or":
        saw_null = False
        for operand in expr.operands:
            value = evaluate(operand, resolve)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False
    values = [evaluate(operand, resolve) for operand in expr.operands]
    if any(value is None for value in values):
        return None
    if expr.op == "+":
        return sum(values)
    if expr.op == "*":
        product: Any = 1
        for value in values:
            product = product * value
        return product
    raise ExecutionError(f"unknown n-ary operator {expr.op!r}")


def _evaluate_binary(expr: BinaryOp, resolve: Resolver) -> Any:
    left = evaluate(expr.left, resolve)
    right = evaluate(expr.right, resolve)
    if left is None or right is None:
        return None
    op = expr.op
    if op == "-":
        return left - right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("division by zero in %")
        return left % right
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown binary operator {op!r}")


def _evaluate_unary(expr: UnaryOp, resolve: Resolver) -> Any:
    value = evaluate(expr.operand, resolve)
    if expr.op == "-":
        return None if value is None else -value
    if expr.op == "not":
        if value is None:
            return None
        return not value
    raise ExecutionError(f"unknown unary operator {expr.op!r}")


def _evaluate_in_list(expr: InList, resolve: Resolver) -> Any:
    value = evaluate(expr.operand, resolve)
    if value is None:
        return None
    saw_null = False
    found = False
    for item in expr.items:
        item_value = evaluate(item, resolve)
        if item_value is None:
            saw_null = True
        elif item_value == value:
            found = True
            break
    if found:
        result: Any = True
    elif saw_null:
        result = None
    else:
        result = False
    if expr.negated and result is not None:
        return not result
    return result


def evaluate_constant(expr: Expr) -> Any:
    """Evaluate an expression that must not reference any column."""

    def no_columns(ref: ColumnRef) -> Any:
        raise ExecutionError(f"unexpected column reference {ref!r} in constant")

    return evaluate(expr, no_columns)


def is_constant(expr: Expr) -> bool:
    """True if the expression references no columns and no aggregates."""
    return not expr.column_refs() and not expr.contains_aggregate()
