"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type. The subtypes mirror the pipeline stages:
parsing, semantic analysis (binding SQL to a catalog), execution, and
matching/rewrite.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    callers can point at the exact spot in the query text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """A parsed query references unknown tables/columns or is ambiguous."""


class CatalogError(ReproError):
    """Invalid schema definition (duplicate tables, bad constraints, ...)."""


class ExecutionError(ReproError):
    """A runtime failure while evaluating a query graph."""


class TypeMismatchError(ExecutionError):
    """Row data did not match the declared column types."""


class UnsupportedSqlError(ReproError):
    """The SQL construct is valid but outside the supported subset.

    The paper explicitly excludes correlated and recursive queries; those
    raise this error rather than silently producing a wrong graph.
    """


class RewriteError(ReproError):
    """The rewrite engine could not apply a match to the query graph."""


class GovernorError(ReproError):
    """Base class for query-governor interventions (see
    :mod:`repro.governor`): deadlines, budgets, cancellation, and
    admission control all raise subtypes of this."""


class QueryRejected(GovernorError):
    """Admission control shed this query: the concurrent-query limit was
    reached and the wait queue was full (or the queue wait timed out),
    or the memory broker reported global pressure.

    Load shedding is deliberate back-pressure, not a fault — retrying
    later is the expected response. ``details`` carries the structured
    load snapshot (running/queued/reserved bytes and the configured
    limits) so clients can back off intelligently; it rides the wire in
    the error payload's ``details`` field.
    """

    def __init__(self, message: str, details: dict | None = None):
        super().__init__(message)
        self.details = details or {}


class QueryTimeout(GovernorError):
    """The query's ``SET QUERY TIMEOUT`` deadline expired while it was
    executing. (A deadline that expires during the *match* phase never
    raises this — matching is optional work, so the governor degrades to
    base-table execution instead; see :class:`MatchBudgetExceeded`.)"""


class QueryCancelled(GovernorError):
    """The query's cancellation token was triggered (scheduler shutdown,
    ``REFRESH`` preemption, or an explicit ``cancel()``)."""


class BudgetExhausted(GovernorError):
    """A governor work budget (``SET QUERY MAXROWS``, match-pairing
    budget) was exceeded."""


class MatchBudgetExceeded(BudgetExhausted):
    """The match phase ran out of budget (its deadline expired or its
    pairing budget was spent). The rewrite sandbox catches this and
    degrades the query to base-table execution — it only escapes to
    callers who invoke the matcher directly."""


class MemoryBudgetExceeded(BudgetExhausted):
    """A query's memory reservation (``SET QUERY MAXMEM`` or the
    process-wide ``--mem-limit`` broker) could not grant a charge. The
    executor's spill-capable operators catch this and degrade to
    spill-to-disk execution; it only escapes from sites with no spill
    recourse (and from the reservation API when called directly)."""


class QueryResourceError(GovernorError):
    """The query exhausted its memory budget *and* the spill path could
    not absorb the overflow (spill disk full or unwritable). This is the
    bottom rung of the resource degradation ladder: the query fails with
    a typed error instead of taking the process down with MemoryError or
    an unhandled ENOSPC."""


class MaintenanceError(ReproError):
    """A summary table could not be incrementally maintained."""


class ReplicationError(ReproError):
    """Base class for durability/replication failures (see
    :mod:`repro.replication`): journal write failures, standby
    restrictions, and replication-lag rejections derive from this."""


class WalError(ReplicationError):
    """The write-ahead journal could not accept or replay a record."""


class WalGapError(ReplicationError):
    """The journal no longer holds a contiguous backlog after the
    requested LSN (checkpoint compaction deleted it, and the in-memory
    ring does not reach back that far). Streaming from here would
    silently skip mutations — the subscriber must bootstrap from a
    fresh snapshot instead."""


class ReadOnlyError(ReplicationError):
    """A mutation reached a read-only (standby) server. Clients with
    failover enabled treat this as a redirect hint and retry against
    the other address; a promoted standby stops raising it."""


class ReplicaLagExceeded(ReplicationError):
    """A standby's replication lag exceeds the session's ``SET REFRESH
    AGE`` tolerance, so serving the read would silently violate the
    freshness the client asked for. Lower the tolerance requirement
    (``SET REFRESH AGE ANY | <n>``) or read from the primary."""
