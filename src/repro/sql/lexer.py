"""Hand-written SQL tokenizer.

Produces a flat list of :class:`Token` with 1-based line/column positions
for error reporting. Keywords are recognized case-insensitively;
identifiers preserve their original spelling but compare case-insensitively
downstream. String literals use single quotes with ``''`` escaping.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset(
    {
        "select", "distinct", "from", "where", "group", "by", "having",
        "order", "asc", "desc", "as", "and", "or", "not", "in", "is",
        "null", "true", "false", "between", "case", "when", "then",
        "else", "end", "join", "inner", "cross", "on", "rollup", "cube",
        "grouping", "sets", "date", "union", "all", "limit",
    }
)

PUNCTUATION = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "+",
               "-", "*", "/", "%", ".", ";")


@dataclass(frozen=True)
class Token:
    """One lexical token. ``kind`` is 'keyword', 'ident', 'number',
    'string', 'punct' or 'eof'; ``value`` is the cooked value."""

    kind: str
    value: Any
    text: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_punct(self, *symbols: str) -> bool:
        return self.kind == "punct" and self.value in symbols


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; always ends with a single 'eof' token."""
    return list(_scan(sql))


def _scan(sql: str) -> Iterator[Token]:
    position = 0
    line = 1
    line_start = 0
    length = len(sql)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        char = sql[position]
        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char.isspace():
            position += 1
            continue
        if sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline < 0 else newline
            continue
        start_column = column()
        if char.isdigit() or (char == "." and _peek_digit(sql, position + 1)):
            text, value, position = _scan_number(sql, position, line, start_column)
            yield Token("number", value, text, line, start_column)
            continue
        if char == "'":
            text, value, position = _scan_string(sql, position, line, start_column)
            yield Token("string", value, text, line, start_column)
            continue
        if char.isalpha() or char == "_":
            end = position + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            text = sql[position:end]
            lowered = text.lower()
            position = end
            if lowered in KEYWORDS:
                yield Token("keyword", lowered, text, line, start_column)
            else:
                yield Token("ident", text, text, line, start_column)
            continue
        matched = False
        for symbol in PUNCTUATION:
            if sql.startswith(symbol, position):
                value = "<>" if symbol == "!=" else symbol
                yield Token("punct", value, symbol, line, start_column)
                position += len(symbol)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {char!r}", line, start_column)
    yield Token("eof", None, "", line, position - line_start + 1)


def _peek_digit(sql: str, index: int) -> bool:
    return index < len(sql) and sql[index].isdigit()


def _scan_number(
    sql: str, position: int, line: int, column: int
) -> tuple[str, Any, int]:
    end = position
    length = len(sql)
    saw_dot = False
    saw_exp = False
    while end < length:
        char = sql[end]
        if char.isdigit():
            end += 1
        elif char == "." and not saw_dot and not saw_exp:
            saw_dot = True
            end += 1
        elif char in "eE" and not saw_exp and end + 1 < length and (
            sql[end + 1].isdigit() or sql[end + 1] in "+-"
        ):
            saw_exp = True
            end += 1
            if sql[end] in "+-":
                end += 1
        else:
            break
    text = sql[position:end]
    try:
        value: Any = float(text) if saw_dot or saw_exp else int(text)
    except ValueError:
        raise SqlSyntaxError(f"bad numeric literal {text!r}", line, column) from None
    return text, value, end


def _scan_string(
    sql: str, position: int, line: int, column: int
) -> tuple[str, str, int]:
    end = position + 1
    length = len(sql)
    pieces: list[str] = []
    while end < length:
        char = sql[end]
        if char == "'":
            if end + 1 < length and sql[end + 1] == "'":
                pieces.append("'")
                end += 2
                continue
            return sql[position : end + 1], "".join(pieces), end + 1
        if char == "\n":
            break
        pieces.append(char)
        end += 1
    raise SqlSyntaxError("unterminated string literal", line, column)


def parse_date_literal(text: str, line: int = 0, column: int = 0) -> datetime.date:
    """Parse the body of a ``DATE 'YYYY-MM-DD'`` literal."""
    try:
        return datetime.date.fromisoformat(text)
    except ValueError:
        raise SqlSyntaxError(f"bad date literal {text!r}", line, column) from None
