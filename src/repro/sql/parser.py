"""Recursive-descent parser for the supported SQL subset.

Grammar highlights (see README for the full list):

* SELECT [DISTINCT] list FROM items [WHERE] [GROUP BY] [HAVING] [ORDER BY]
* comma joins and explicit [INNER] JOIN ... ON (desugared to WHERE
  conjuncts), CROSS JOIN
* derived tables ``(SELECT ...) AS t`` and scalar subqueries in
  expressions
* aggregates COUNT(*) / COUNT|SUM|AVG|MIN|MAX([DISTINCT] e)
* supergroups: ROLLUP, CUBE, GROUPING SETS (with nested () grand total)
* BETWEEN (desugared), IN lists, IS [NOT] NULL, CASE WHEN,
  DATE 'YYYY-MM-DD' literals
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.governor import scope as governor_scope
from repro.expr.nodes import (
    AGGREGATE_FUNCS,
    AggCall,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
    conjunction,
)
from repro.sql.ast import (
    Cube,
    DerivedTableRef,
    FromItem,
    GroupingElement,
    GroupingSets,
    OrderItem,
    Rollup,
    SelectItem,
    SelectStatement,
    SimpleGrouping,
    SubqueryExpr,
    TableRef,
)
from repro.sql.lexer import Token, parse_date_literal, tokenize

_COMPARISON_PUNCT = ("=", "<>", "<", "<=", ">", ">=")


def parse(sql: str):
    """Parse one query (SELECT or UNION ALL chain; optional ';')."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_query()
    parser.accept_punct(";")
    parser.expect_eof()
    return statement


def parse_expression(sql: str) -> Expr:
    """Parse a standalone scalar expression (used in tests and tools)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0
        # Governor scope, read once at construction: when a budget is
        # active, every consumed token ticks the parse phase (token-only
        # checks — a deadline never kills a query mid-parse).
        self._budget = governor_scope.current()

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._index += 1
            if self._budget is not None:
                self._budget.tick(1, "parse")
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._current
        shown = token.text or "<end of input>"
        return SqlSyntaxError(f"{message} (found {shown!r})", token.line, token.column)

    def accept_keyword(self, *names: str) -> Token | None:
        if self._current.is_keyword(*names):
            return self._advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.accept_keyword(*names)
        if token is None:
            raise self._error(f"expected {' or '.join(names).upper()}")
        return token

    def accept_punct(self, *symbols: str) -> Token | None:
        if self._current.is_punct(*symbols):
            return self._advance()
        return None

    def expect_punct(self, *symbols: str) -> Token:
        token = self.accept_punct(*symbols)
        if token is None:
            raise self._error(f"expected {' or '.join(symbols)!r}")
        return token

    def accept_ident(self) -> Token | None:
        if self._current.kind == "ident":
            return self._advance()
        return None

    def expect_ident(self) -> Token:
        token = self.accept_ident()
        if token is None:
            raise self._error("expected identifier")
        return token

    def expect_eof(self) -> None:
        if self._current.kind != "eof":
            raise self._error("unexpected trailing input")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_query(self):
        """A SELECT or a UNION ALL chain of SELECTs."""
        from repro.sql.ast import UnionAll

        branches = [self.parse_select()]
        while self.accept_keyword("union"):
            self.expect_keyword("all")
            branches.append(self.parse_select())
        if len(branches) == 1:
            return branches[0]
        for branch in branches:
            if branch.order_by or branch.limit is not None:
                raise self._error(
                    "ORDER BY/LIMIT are not supported inside UNION ALL"
                )
        return UnionAll(tuple(branches))

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct") is not None
        items, select_star = self._parse_select_list()
        self.expect_keyword("from")
        from_items, join_predicates = self._parse_from_clause()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        if join_predicates:
            where_parts = join_predicates + ([where] if where is not None else [])
            where = conjunction(where_parts)
        group_by: tuple[GroupingElement, ...] = ()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = self._parse_group_by()
        having = None
        if self.accept_keyword("having"):
            having = self.parse_expr()
        order_by: tuple[OrderItem, ...] = ()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self._parse_order_by()
        limit = None
        if self.accept_keyword("limit"):
            token = self._current
            if token.kind != "number" or not isinstance(token.value, int):
                raise self._error("LIMIT expects an integer")
            self._advance()
            limit = token.value
        return SelectStatement(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
            order_by=order_by,
            select_star=select_star,
            limit=limit,
        )

    def _parse_select_list(self) -> tuple[list[SelectItem], bool]:
        if self.accept_punct("*"):
            return [], True
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return items, False

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident().value
        else:
            ident = self.accept_ident()
            if ident is not None:
                alias = ident.value
        return SelectItem(expr, alias)

    def _parse_from_clause(self) -> tuple[list[FromItem], list[Expr]]:
        items = [self._parse_from_item()]
        predicates: list[Expr] = []
        while True:
            if self.accept_punct(","):
                items.append(self._parse_from_item())
                continue
            if self.accept_keyword("cross"):
                self.expect_keyword("join")
                items.append(self._parse_from_item())
                continue
            if self._current.is_keyword("inner", "join"):
                self.accept_keyword("inner")
                self.expect_keyword("join")
                items.append(self._parse_from_item())
                self.expect_keyword("on")
                predicates.append(self.parse_expr())
                continue
            return items, predicates

    def _parse_from_item(self) -> FromItem:
        if self.accept_punct("("):
            query = self.parse_query()
            self.expect_punct(")")
            if self.accept_keyword("as"):
                alias = self.expect_ident().value
            else:
                ident = self.accept_ident()
                alias = ident.value if ident is not None else None
            return DerivedTableRef(query, alias)
        name = self.expect_ident().value
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident().value
        else:
            ident = self.accept_ident()
            if ident is not None:
                alias = ident.value
        return TableRef(name, alias)

    def _parse_group_by(self) -> tuple[GroupingElement, ...]:
        elements = [self._parse_grouping_element()]
        while self.accept_punct(","):
            elements.append(self._parse_grouping_element())
        return tuple(elements)

    def _parse_grouping_element(self) -> GroupingElement:
        if self.accept_keyword("rollup"):
            self.expect_punct("(")
            items = self._parse_expr_list()
            self.expect_punct(")")
            return Rollup(tuple(items))
        if self.accept_keyword("cube"):
            self.expect_punct("(")
            items = self._parse_expr_list()
            self.expect_punct(")")
            return Cube(tuple(items))
        if self._current.is_keyword("grouping"):
            self.expect_keyword("grouping")
            self.expect_keyword("sets")
            self.expect_punct("(")
            sets = [self._parse_grouping_set()]
            while self.accept_punct(","):
                sets.append(self._parse_grouping_set())
            self.expect_punct(")")
            return GroupingSets(tuple(sets))
        return SimpleGrouping(self.parse_expr())

    def _parse_grouping_set(self) -> tuple[Expr, ...]:
        if self.accept_punct("("):
            if self.accept_punct(")"):
                return ()
            items = self._parse_expr_list()
            self.expect_punct(")")
            return tuple(items)
        return (self.parse_expr(),)

    def _parse_order_by(self) -> tuple[OrderItem, ...]:
        keys = [self._parse_order_item()]
        while self.accept_punct(","):
            keys.append(self._parse_order_item())
        return tuple(keys)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return OrderItem(expr, ascending)

    def _parse_expr_list(self) -> list[Expr]:
        items = [self.parse_expr()]
        while self.accept_punct(","):
            items.append(self.parse_expr())
        return items

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        operands = [left]
        while self.accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return left
        return NaryOp("or", tuple(operands))

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        operands = [left]
        while self.accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return left
        return NaryOp("and", tuple(operands))

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        while True:
            punct = self.accept_punct(*_COMPARISON_PUNCT)
            if punct is not None:
                right = self._parse_additive()
                left = BinaryOp(punct.value, left, right)
                continue
            if self.accept_keyword("is"):
                negated = self.accept_keyword("not") is not None
                self.expect_keyword("null")
                left = IsNull(left, negated)
                continue
            if self._current.is_keyword("not") and self._peek_is_in_or_between():
                self.expect_keyword("not")
                if self.accept_keyword("in"):
                    left = self._parse_in_tail(left, negated=True)
                else:
                    self.expect_keyword("between")
                    left = UnaryOp("not", self._parse_between_tail(left))
                continue
            if self.accept_keyword("in"):
                left = self._parse_in_tail(left, negated=False)
                continue
            if self.accept_keyword("between"):
                left = self._parse_between_tail(left)
                continue
            return left

    def _peek_is_in_or_between(self) -> bool:
        nxt = self._tokens[self._index + 1]
        return nxt.is_keyword("in", "between")

    def _parse_in_tail(self, operand: Expr, negated: bool) -> Expr:
        self.expect_punct("(")
        items = self._parse_expr_list()
        self.expect_punct(")")
        return InList(operand, tuple(items), negated)

    def _parse_between_tail(self, operand: Expr) -> Expr:
        low = self._parse_additive()
        self.expect_keyword("and")
        high = self._parse_additive()
        return NaryOp(
            "and",
            (BinaryOp(">=", operand, low), BinaryOp("<=", operand, high)),
        )

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self.accept_punct("+"):
                right = self._parse_multiplicative()
                left = self._append_nary("+", left, right)
            elif self.accept_punct("-"):
                right = self._parse_multiplicative()
                left = BinaryOp("-", left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self.accept_punct("*"):
                right = self._parse_unary()
                left = self._append_nary("*", left, right)
            elif self.accept_punct("/"):
                right = self._parse_unary()
                left = BinaryOp("/", left, right)
            elif self.accept_punct("%"):
                right = self._parse_unary()
                left = BinaryOp("%", left, right)
            else:
                return left

    @staticmethod
    def _append_nary(op: str, left: Expr, right: Expr) -> Expr:
        if isinstance(left, NaryOp) and left.op == op:
            return NaryOp(op, left.operands + (right,))
        return NaryOp(op, (left, right))

    def _parse_unary(self) -> Expr:
        if self.accept_punct("-"):
            return UnaryOp("-", self._parse_unary())
        if self.accept_punct("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind == "number":
            self._advance()
            return Literal(token.value)
        if token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("date"):
            # DATE 'YYYY-MM-DD' literal; bare `date` is also a column name
            # in the paper's schema, so only treat it as a literal prefix
            # when a string follows.
            nxt = self._tokens[self._index + 1]
            if nxt.kind == "string":
                self._advance()
                literal = self._advance()
                return Literal(
                    parse_date_literal(literal.value, literal.line, literal.column)
                )
            self._advance()
            return self._parse_column_tail("date")
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_punct("("):
            self._advance()
            if self._current.is_keyword("select"):
                query = self.parse_select()
                self.expect_punct(")")
                return SubqueryExpr(query)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind == "ident":
            self._advance()
            return self._parse_identifier_tail(token)
        raise self._error("expected expression")

    def _parse_case(self) -> Expr:
        self.expect_keyword("case")
        branches: list[Expr] = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            value = self.parse_expr()
            branches.extend((condition, value))
        default: Expr = Literal(None)
        if self.accept_keyword("else"):
            default = self.parse_expr()
        self.expect_keyword("end")
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        return CaseWhen(tuple(branches), default)

    def _parse_identifier_tail(self, token: Token) -> Expr:
        name = token.value
        if self.accept_punct("("):
            return self._parse_call(name)
        return self._parse_column_tail(name)

    def _parse_column_tail(self, first: str) -> Expr:
        if self.accept_punct("."):
            column = self._expect_column_name()
            return ColumnRef(first, column)
        return ColumnRef(None, first)

    def _expect_column_name(self) -> str:
        # `date` is a keyword but also a valid column name (Trans.date).
        if self._current.is_keyword("date"):
            self._advance()
            return "date"
        return self.expect_ident().value

    def _parse_call(self, name: str) -> Expr:
        lowered = name.lower()
        if lowered in AGGREGATE_FUNCS:
            return self._parse_aggregate(lowered)
        args: list[Expr] = []
        if not self.accept_punct(")"):
            args = self._parse_expr_list()
            self.expect_punct(")")
        return FuncCall(lowered, tuple(args))

    def _parse_aggregate(self, func: str) -> Expr:
        if func == "count" and self.accept_punct("*"):
            self.expect_punct(")")
            return AggCall("count")
        distinct = self.accept_keyword("distinct") is not None
        arg = self.parse_expr()
        self.expect_punct(")")
        return AggCall(func, arg, distinct)
