"""SQL front end: lexer, parser, and parse-tree nodes."""

from repro.sql.ast import (
    Cube,
    DerivedTableRef,
    GroupingSets,
    OrderItem,
    Rollup,
    SelectItem,
    SelectStatement,
    SimpleGrouping,
    SubqueryExpr,
    TableRef,
)
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse, parse_expression

__all__ = [
    "Cube",
    "DerivedTableRef",
    "GroupingSets",
    "OrderItem",
    "Rollup",
    "SelectItem",
    "SelectStatement",
    "SimpleGrouping",
    "SubqueryExpr",
    "TableRef",
    "Token",
    "parse",
    "parse_expression",
    "tokenize",
]
