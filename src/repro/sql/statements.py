"""Statement-level SQL: DDL and DML around the SELECT core.

Supported statements (used by the CLI and by ``Database.run_sql``):

* ``CREATE TABLE name (col TYPE [NOT NULL], ..., PRIMARY KEY (...),
  UNIQUE (...), FOREIGN KEY (...) REFERENCES parent (...))``
* ``CREATE SUMMARY TABLE name [REFRESH IMMEDIATE | REFRESH DEFERRED]
  AS select-statement``
* ``DROP SUMMARY TABLE name``
* ``REFRESH SUMMARY TABLE [name [, name ...]]`` (no names ⇒ all)
* ``SET REFRESH AGE ANY | 0 | <n>`` — the session's freshness
  tolerance: how many staged delta batches a deferred summary may lag
  behind and still answer queries
* ``SET SLOW QUERY <ms> | OFF`` — the slow-query log threshold in
  milliseconds (OFF disables the log)
* ``SET QUERY TIMEOUT <ms> | OFF`` — the query governor's wall-clock
  deadline: a timeout during the match phase degrades the query to base
  tables, one during execution raises ``QueryTimeout``
* ``SET QUERY MAXROWS <n> | OFF`` — the governor's high-water cap on
  rows materialized in any one intermediate or result table
* ``SET QUERY MAXMEM <bytes> | OFF`` — the per-query memory budget;
  spill-capable operators degrade to disk when it is exhausted
* ``SET TRACE SAMPLE <rate> | OFF`` — head-sampling probability for
  request spans (process-global, like SLOW QUERY)
* ``INSERT INTO name VALUES (...), (...), ...``
* ``DELETE FROM name VALUES (...), ...``  (exact-row delete; feeds the
  incremental maintenance path)
* ``EXPLAIN [ANALYZE] select-statement`` — ANALYZE executes the query
  and reports phase timings plus the per-AST match verdict table
* plain SELECT statements
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.catalog.types import DataType
from repro.expr.evaluator import evaluate_constant
from repro.sql.ast import SelectStatement
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import _Parser

_TYPE_NAMES = {
    "int": DataType.INTEGER,
    "integer": DataType.INTEGER,
    "bigint": DataType.INTEGER,
    "float": DataType.FLOAT,
    "double": DataType.FLOAT,
    "real": DataType.FLOAT,
    "decimal": DataType.FLOAT,
    "varchar": DataType.STRING,
    "char": DataType.STRING,
    "text": DataType.STRING,
    "string": DataType.STRING,
    "date": DataType.DATE,
    "boolean": DataType.BOOLEAN,
}


@dataclass(frozen=True)
class ColumnDef:
    name: str
    dtype: DataType
    nullable: bool


@dataclass(frozen=True)
class KeyDef:
    columns: tuple[str, ...]
    is_primary: bool


@dataclass(frozen=True)
class ForeignKeyDef:
    columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    keys: tuple[KeyDef, ...] = ()
    foreign_keys: tuple[ForeignKeyDef, ...] = ()


@dataclass(frozen=True)
class CreateSummaryTable:
    name: str
    query: SelectStatement
    sql: str  # the defining text, for SummaryTable.sql
    refresh_mode: str = "immediate"  # "immediate" | "deferred"


@dataclass(frozen=True)
class DropSummaryTable:
    name: str


@dataclass(frozen=True)
class RefreshSummaryTables:
    names: tuple[str, ...]  # empty ⇒ refresh every summary table


@dataclass(frozen=True)
class SetRefreshAge:
    max_pending: int | None  # None ⇒ ANY


@dataclass(frozen=True)
class SetSlowQuery:
    threshold_ms: float | None  # None ⇒ OFF (slow-query log disabled)


@dataclass(frozen=True)
class SetQueryTimeout:
    timeout_ms: float | None  # None ⇒ OFF (no deadline)


@dataclass(frozen=True)
class SetQueryMaxRows:
    max_rows: int | None  # None ⇒ OFF (no materialized-row cap)


@dataclass(frozen=True)
class SetQueryMaxMem:
    max_mem: int | None  # None ⇒ OFF (no per-query memory budget)


@dataclass(frozen=True)
class SetExecutorParallel:
    workers: int | None  # None ⇒ OFF (serial morsel execution)


@dataclass(frozen=True)
class SetTraceSample:
    rate: float | None  # None ⇒ OFF (request tracing disabled)


@dataclass(frozen=True)
class InsertValues:
    table: str
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class DeleteValues:
    table: str
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class Explain:
    query: SelectStatement
    sql: str
    analyze: bool = False


Statement = (
    SelectStatement
    | CreateTable
    | CreateSummaryTable
    | DropSummaryTable
    | RefreshSummaryTables
    | SetRefreshAge
    | SetSlowQuery
    | SetQueryTimeout
    | SetQueryMaxRows
    | SetQueryMaxMem
    | SetExecutorParallel
    | SetTraceSample
    | InsertValues
    | DeleteValues
    | Explain
)


def parse_statement(sql: str) -> Statement:
    """Parse one statement of any supported kind."""
    parser = _StatementParser(tokenize(sql), sql)
    statement = parser.parse_statement()
    parser.accept_punct(";")
    parser.expect_eof()
    return statement


def split_statements(script: str) -> list[str]:
    """Split a script on top-level semicolons (string-literal aware)."""
    pieces: list[str] = []
    current: list[str] = []
    in_string = False
    index = 0
    while index < len(script):
        char = script[index]
        if in_string:
            current.append(char)
            if char == "'":
                if index + 1 < len(script) and script[index + 1] == "'":
                    current.append("'")
                    index += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == ";":
            text = "".join(current).strip()
            if text:
                pieces.append(text)
            current = []
        else:
            current.append(char)
        index += 1
    tail = "".join(current).strip()
    if tail:
        pieces.append(tail)
    return pieces


class _StatementParser(_Parser):
    def __init__(self, tokens: list[Token], sql: str):
        super().__init__(tokens)
        self._sql = sql

    def parse_statement(self) -> Statement:
        token = self._current
        if token.is_keyword("select"):
            return self.parse_query()
        word = self._ident_or_keyword_value()
        if word == "create":
            return self._parse_create()
        if word == "drop":
            return self._parse_drop()
        if word == "insert":
            return self._parse_insert()
        if word == "delete":
            return self._parse_delete()
        if word == "refresh":
            return self._parse_refresh()
        if word == "set":
            return self._parse_set()
        if word == "explain":
            self._advance()
            analyze = self._accept_word("analyze")
            remainder_start = self._current
            query = self.parse_query()
            return Explain(query, self._text_from(remainder_start), analyze)
        raise self._error(
            "expected SELECT, CREATE, DROP, REFRESH, SET, INSERT, DELETE "
            "or EXPLAIN"
        )

    # ------------------------------------------------------------------
    def _ident_or_keyword_value(self) -> str | None:
        token = self._current
        if token.kind in ("ident", "keyword"):
            return str(token.value).lower()
        return None

    def _expect_word(self, *words: str) -> str:
        value = self._ident_or_keyword_value()
        if value in words:
            self._advance()
            return value
        raise self._error(f"expected {' or '.join(w.upper() for w in words)}")

    def _accept_word(self, *words: str) -> bool:
        if self._ident_or_keyword_value() in words:
            self._advance()
            return True
        return False

    def _text_from(self, token: Token) -> str:
        # Reconstruct source text starting at a token (for summary SQL).
        lines = self._sql.splitlines()
        line_index = token.line - 1
        first = lines[line_index][token.column - 1:]
        rest = lines[line_index + 1:]
        return "\n".join([first, *rest]).rstrip().rstrip(";")

    # ------------------------------------------------------------------
    def _parse_create(self) -> Statement:
        self._expect_word("create")
        if self._accept_word("summary"):
            self._expect_word("table")
            name = self.expect_ident().value
            refresh_mode = "immediate"
            if self._accept_word("refresh"):
                refresh_mode = self._expect_word("immediate", "deferred")
            self.expect_keyword("as")
            start = self._current
            query = self.parse_query()
            return CreateSummaryTable(
                name, query, self._text_from(start), refresh_mode
            )
        self._expect_word("table")
        name = self.expect_ident().value
        self.expect_punct("(")
        columns: list[ColumnDef] = []
        keys: list[KeyDef] = []
        foreign_keys: list[ForeignKeyDef] = []
        while True:
            if self._accept_word("primary"):
                self._expect_word("key")
                keys.append(KeyDef(self._parse_name_list(), is_primary=True))
            elif self._accept_word("unique"):
                self._accept_word("key")
                keys.append(KeyDef(self._parse_name_list(), is_primary=False))
            elif self._accept_word("foreign"):
                self._expect_word("key")
                local = self._parse_name_list()
                self._expect_word("references")
                parent = self.expect_ident().value
                parent_columns = self._parse_name_list()
                foreign_keys.append(ForeignKeyDef(local, parent, parent_columns))
            else:
                columns.append(self._parse_column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return CreateTable(name, tuple(columns), tuple(keys), tuple(foreign_keys))

    def _parse_column_def(self) -> ColumnDef:
        name = self._column_name()
        type_word = self._ident_or_keyword_value()
        if type_word not in _TYPE_NAMES:
            raise self._error(f"unknown column type")
        self._advance()
        if self.accept_punct("("):  # precision args: VARCHAR(20), DECIMAL(10, 2)
            while not self.accept_punct(")"):
                if self._current.kind == "eof":
                    raise self._error("unterminated type arguments")
                self._advance()
        nullable = True
        if self.accept_keyword("not"):
            self.expect_keyword("null")
            nullable = False
        elif self.accept_keyword("null"):
            nullable = True
        return ColumnDef(name, _TYPE_NAMES[type_word], nullable)

    def _column_name(self) -> str:
        if self._current.is_keyword("date"):
            self._advance()
            return "date"
        return self.expect_ident().value

    def _parse_name_list(self) -> tuple[str, ...]:
        self.expect_punct("(")
        names = [self._column_name()]
        while self.accept_punct(","):
            names.append(self._column_name())
        self.expect_punct(")")
        return tuple(names)

    # ------------------------------------------------------------------
    def _parse_drop(self) -> DropSummaryTable:
        self._expect_word("drop")
        self._expect_word("summary")
        self._expect_word("table")
        return DropSummaryTable(self.expect_ident().value)

    def _parse_refresh(self) -> RefreshSummaryTables:
        self._expect_word("refresh")
        self._expect_word("summary")
        self._expect_word("table", "tables")
        names: list[str] = []
        if self._current.kind == "ident":
            names.append(self.expect_ident().value)
            while self.accept_punct(","):
                names.append(self.expect_ident().value)
        return RefreshSummaryTables(tuple(names))

    def _parse_set(
        self,
    ) -> (
        SetRefreshAge
        | SetSlowQuery
        | SetQueryTimeout
        | SetQueryMaxRows
        | SetQueryMaxMem
        | SetExecutorParallel
        | SetTraceSample
    ):
        self._expect_word("set")
        if self._accept_word("query"):
            return self._parse_set_query()
        if self._accept_word("trace"):
            # SET TRACE SAMPLE <rate>|OFF: head-sampling probability for
            # request spans (docs/OBSERVABILITY.md). Process-global, like
            # SET SLOW QUERY.
            self._expect_word("sample")
            if self._accept_word("off"):
                return SetTraceSample(None)
            value = self._parse_constant()
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not 0.0 < value <= 1.0
            ):
                raise self._error(
                    "TRACE SAMPLE must be OFF or a rate in (0, 1]"
                )
            return SetTraceSample(float(value))
        if self._accept_word("executor"):
            # SET EXECUTOR PARALLEL <n>|OFF: morsel-driven worker pool
            # for scans/joins/group-bys (docs/EXECUTOR.md).
            self._expect_word("parallel")
            if self._accept_word("off"):
                return SetExecutorParallel(None)
            value = self._parse_constant()
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise self._error(
                    "EXECUTOR PARALLEL must be OFF or a positive worker count"
                )
            return SetExecutorParallel(value)
        if self._accept_word("slow"):
            self._expect_word("query")
            if self._accept_word("off"):
                return SetSlowQuery(None)
            value = self._parse_constant()
            if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
                raise self._error(
                    "SLOW QUERY must be OFF or a non-negative number of "
                    "milliseconds"
                )
            return SetSlowQuery(float(value))
        self._expect_word("refresh")
        self._expect_word("age")
        if self._accept_word("any"):
            return SetRefreshAge(None)
        value = self._parse_constant()
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise self._error("REFRESH AGE must be ANY or a non-negative integer")
        return SetRefreshAge(value)

    def _parse_set_query(
        self,
    ) -> SetQueryTimeout | SetQueryMaxRows | SetQueryMaxMem:
        # SET QUERY TIMEOUT <ms>|OFF, SET QUERY MAXROWS <n>|OFF and
        # SET QUERY MAXMEM <bytes>|OFF: the governor's per-query limits
        # (docs/ROBUSTNESS.md).
        kind = self._expect_word("timeout", "maxrows", "maxmem")
        if kind == "timeout":
            if self._accept_word("off"):
                return SetQueryTimeout(None)
            value = self._parse_constant()
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or value <= 0
            ):
                raise self._error(
                    "QUERY TIMEOUT must be OFF or a positive number of "
                    "milliseconds"
                )
            return SetQueryTimeout(float(value))
        if kind == "maxmem":
            if self._accept_word("off"):
                return SetQueryMaxMem(None)
            value = self._parse_constant()
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise self._error(
                    "QUERY MAXMEM must be OFF or a positive byte count"
                )
            return SetQueryMaxMem(value)
        if self._accept_word("off"):
            return SetQueryMaxRows(None)
        value = self._parse_constant()
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise self._error("QUERY MAXROWS must be OFF or a positive integer")
        return SetQueryMaxRows(value)

    def _parse_insert(self) -> InsertValues:
        self._expect_word("insert")
        self._expect_word("into")
        table = self.expect_ident().value
        self._expect_word("values")
        return InsertValues(table, self._parse_rows())

    def _parse_delete(self) -> DeleteValues:
        self._expect_word("delete")
        self.expect_keyword("from")
        table = self.expect_ident().value
        self._expect_word("values")
        return DeleteValues(table, self._parse_rows())

    def _parse_rows(self) -> tuple[tuple[Any, ...], ...]:
        rows = [self._parse_row()]
        while self.accept_punct(","):
            rows.append(self._parse_row())
        return tuple(rows)

    def _parse_row(self) -> tuple[Any, ...]:
        self.expect_punct("(")
        values = [self._parse_constant()]
        while self.accept_punct(","):
            values.append(self._parse_constant())
        self.expect_punct(")")
        return tuple(values)

    def _parse_constant(self) -> Any:
        expr = self.parse_expr()
        try:
            return evaluate_constant(expr)
        except Exception:
            raise self._error("VALUES entries must be constants") from None
